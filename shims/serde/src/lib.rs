//! Minimal facade standing in for the `serde` registry crate (see
//! `shims/README.md`).
//!
//! Exposes the `Serialize`/`Deserialize` trait names and the matching derive
//! macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The traits carry no
//! methods and are blanket-implemented for every type; no serialization
//! actually happens until the real crate is swapped in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
