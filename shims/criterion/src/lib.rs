//! Minimal criterion-compatible benchmark harness (see `shims/README.md`).
//!
//! Implements the subset of the criterion 0.5 API used by the workspace's
//! bench targets: [`Criterion`] with builder-style configuration,
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Benchmarks really execute and report the mean
//! wall-clock time per iteration; there are no statistics, plots, or saved
//! baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between measurements.
///
/// The shim times every batch individually, so the variants only exist for
/// API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Bencher {
            iterations,
            total: Duration::ZERO,
        }
    }

    /// Runs `routine` for the configured number of iterations, timing each.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
        }
    }

    /// Runs `setup` untimed before each timed call to `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.total.as_nanos() as f64 / self.iterations as f64
    }
}

/// The benchmark driver: registers and immediately runs benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples;
        self
    }

    /// Sets the target measurement window (advisory in this shim).
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up window (advisory in this shim).
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Runs one benchmark function and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size as u64);
        f(&mut bencher);
        println!(
            "bench {:<48} {:>14.0} ns/iter ({} iters)",
            id,
            bencher.mean_ns(),
            bencher.iterations
        );
        self
    }

    /// Opens a named group; benchmark ids are prefixed with the group name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the closing summary (a no-op in this shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration expression, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
