//! No-op stand-ins for serde's derive macros (see `shims/README.md`).
//!
//! The workspace annotates many types with `#[derive(Serialize, Deserialize)]`
//! so they are ready for real serialization once the registry crate is
//! available; until then the derives expand to nothing, and the blanket trait
//! impls in the `serde` shim satisfy any bounds.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` shim's blanket impl covers the trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` shim's blanket impl covers the trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
