//! Minimal deterministic property-testing harness standing in for the
//! `proptest` registry crate (see `shims/README.md`).
//!
//! Implements the subset of the proptest 1.x API used by the workspace's
//! property tests: the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//! [`prop_assert_eq!`] macros, the [`Strategy`] trait with `prop_map` and
//! `boxed`, [`any`], [`Just`], integer-range strategies, tuple strategies,
//! and [`collection::vec`]. Values are generated from a fixed-seed
//! splitmix64 RNG, so every run of a test sees the same case sequence and
//! failures are reproducible. There is no shrinking: a failing case panics
//! with the ordinary `assert!` message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one numbered test case; the same case number always
    /// yields the same stream.
    pub fn for_case(case: u32) -> Self {
        let mut rng = TestRng {
            state: 0x5EED_C0DE_u64 ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // A few warm-up draws so nearby seeds decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runtime configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Type-erases the strategy so differently-typed strategies can mix, as
    /// in [`prop_oneof!`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full range of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $ty
            }
        })+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                // Widen before subtracting: for ranges spanning more than the
                // type's positive half, end - start overflows the signed type.
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                // Modular arithmetic keeps the result in [start, end) even
                // when the offset truncates.
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        })+
    };
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        })+
    };
}

impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// A strategy choosing uniformly among type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneOf")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> OneOf<T> {
    /// A strategy picking uniformly among `options` each generation.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

impl<T> std::fmt::Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AnyStrategy")
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            assert!(span > 0, "empty length range");
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// A strategy choosing uniformly among the listed strategies (which may have
/// different concrete types but must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

/// Asserts a condition inside a property; maps to [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; maps to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}
