//! Quickstart: write a program against the open `Program` trait, run it
//! through the `Experiment` front door on a modelled NUMA machine, and
//! inspect what the memory system and the collector did.
//!
//! ```text
//! cargo run --example quickstart --release
//! MGC_BACKEND=threaded cargo run --example quickstart --release   # real OS threads
//! ```

use manticore_gc::heap::i64_to_word;
use manticore_gc::numa::{AllocPolicy, Topology};
use manticore_gc::runtime::{
    Backend, Checksum, Executor, Experiment, Program, TaskResult, TaskSpec,
};

/// A fork/join program: every child builds a little list in its nursery,
/// sums it, and returns the sum; the continuation adds everything up.
struct ListSums {
    children: i64,
    cells_per_child: i64,
}

impl Program for ListSums {
    fn name(&self) -> &str {
        "quickstart-list-sums"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        let (children, cells) = (self.children, self.cells_per_child);
        machine.spawn_root(TaskSpec::new("quickstart", move |ctx| {
            let children: Vec<_> = (0..children)
                .map(|seed| {
                    (
                        TaskSpec::new("build-and-sum", move |ctx| {
                            let mut list = None;
                            for i in 0..cells {
                                let cell = ctx.alloc_raw(&[i64_to_word(seed + i)]);
                                list = Some(ctx.alloc_vector(&[Some(cell), list]));
                            }
                            // Walk the list back.
                            let mut sum = 0i64;
                            let mut cursor = list;
                            while let Some(cell) = cursor {
                                let value = ctx.read_ptr(cell, 0).expect("list cells hold a value");
                                sum += ctx.read_raw(value, 0) as i64;
                                cursor = ctx.read_ptr(cell, 1);
                            }
                            ctx.work(4_000);
                            TaskResult::Value(i64_to_word(sum))
                        }),
                        vec![],
                    )
                })
                .collect();
            ctx.fork_join(
                children,
                TaskSpec::new("total", |ctx| {
                    let total: i64 = (0..ctx.num_values()).map(|i| ctx.value(i) as i64).sum();
                    TaskResult::Value(i64_to_word(total))
                }),
                &[],
            );
            TaskResult::Unit
        }));
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        // Each child sums `seed + i` for i in 0..cells.
        let per_child_offset = self.cells_per_child * (self.cells_per_child - 1) / 2;
        let seeds = self.children * (self.children - 1) / 2;
        Some(Checksum::I64(
            self.cells_per_child * seeds + self.children * per_child_offset,
        ))
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"children\": {}, \"cells_per_child\": {}}}",
            self.children, self.cells_per_child
        )
    }
}

fn main() {
    // A 48-core AMD "Magny Cours" machine (the paper's Appendix A.1),
    // 16 vprocs, local page placement. The experiment honours
    // `MGC_BACKEND=threaded` (real OS threads instead of the discrete-event
    // simulation) because no explicit backend is pinned here.
    let record = Experiment::new(ListSums {
        children: 64,
        cells_per_child: 200,
    })
    .topology(Topology::amd_magny_cours_48())
    .vprocs(16)
    .policy(AllocPolicy::Local)
    .run()
    .expect("sixteen vprocs fit the 48-core machine");

    let (result, _) = record.result.expect("program produces a result");
    let report = &record.report;
    let clock = match record.backend {
        Backend::Simulated => "virtual time",
        Backend::Threaded => "wall-clock time",
    };
    println!("backend             : {}", record.backend);
    println!("result              : {}", result as i64);
    println!(
        "checksum            : {}",
        if record.checksum_ok == Some(true) {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    println!("{clock:<20}: {:.3} ms", report.elapsed_ns / 1e6);
    println!("tasks executed      : {}", report.total_tasks());
    println!("work steals         : {}", report.total_steals());
    println!(
        "promotions          : {} at steal / {} at publish",
        report.promotions_at_steal(),
        report.promotions_at_publish()
    );
    println!("minor collections   : {}", report.gc.minor_collections);
    println!("major collections   : {}", report.gc.major_collections);
    println!("global collections  : {}", report.gc.global_collections);
    println!("bytes moved by GC   : {}", report.gc.total_moved_bytes());
    println!(
        "traffic (local/same-pkg/cross-pkg): {:?} / {:?} / {:?} bytes",
        report
            .traffic
            .bytes_of(manticore_gc::numa::AccessClass::Local),
        report
            .traffic
            .bytes_of(manticore_gc::numa::AccessClass::SamePackage),
        report
            .traffic
            .bytes_of(manticore_gc::numa::AccessClass::CrossPackage),
    );
}
