//! Quickstart: build a NUMA machine, run a small parallel program under the
//! Manticore-style collector, and inspect what the memory system and the
//! collector did.
//!
//! ```text
//! cargo run --example quickstart --release
//! MGC_BACKEND=threaded cargo run --example quickstart --release   # real OS threads
//! ```

use manticore_gc::heap::i64_to_word;
use manticore_gc::numa::{AllocPolicy, Topology};
use manticore_gc::runtime::{
    Backend, Executor, Machine, MachineConfig, TaskResult, TaskSpec, ThreadedMachine,
};

fn main() {
    // A 48-core AMD "Magny Cours" machine (the paper's Appendix A.1),
    // 16 vprocs, local page placement. `MGC_BACKEND=threaded` runs the same
    // program on real OS threads instead of the discrete-event simulation.
    let config =
        MachineConfig::new(Topology::amd_magny_cours_48(), 16).with_policy(AllocPolicy::Local);
    let backend = Backend::from_env().unwrap_or(Backend::Simulated);
    let mut machine: Box<dyn Executor> = match backend {
        Backend::Simulated => Box::new(Machine::new(config)),
        Backend::Threaded => Box::new(ThreadedMachine::new(config)),
    };

    // A fork/join program: every child builds a little list in its nursery,
    // sums it, and returns the sum; the continuation adds everything up.
    machine.spawn_root(TaskSpec::new("quickstart", |ctx| {
        let children: Vec<_> = (0..64i64)
            .map(|seed| {
                (
                    TaskSpec::new("build-and-sum", move |ctx| {
                        let mut list = None;
                        for i in 0..200i64 {
                            let cell = ctx.alloc_raw(&[i64_to_word(seed + i)]);
                            list = Some(ctx.alloc_vector(&[Some(cell), list]));
                        }
                        // Walk the list back.
                        let mut sum = 0i64;
                        let mut cursor = list;
                        while let Some(cell) = cursor {
                            let value = ctx.read_ptr(cell, 0).expect("list cells hold a value");
                            sum += ctx.read_raw(value, 0) as i64;
                            cursor = ctx.read_ptr(cell, 1);
                        }
                        ctx.work(4_000);
                        TaskResult::Value(i64_to_word(sum))
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("total", |ctx| {
                let total: i64 = (0..ctx.num_values()).map(|i| ctx.value(i) as i64).sum();
                TaskResult::Value(i64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));

    let report = machine.run();
    let (result, _) = machine.take_result().expect("program produces a result");

    let clock = match backend {
        Backend::Simulated => "virtual time",
        Backend::Threaded => "wall-clock time",
    };
    println!("backend             : {backend}");
    println!("result              : {}", result as i64);
    println!("{clock:<20}: {:.3} ms", report.elapsed_ns / 1e6);
    println!("tasks executed      : {}", report.total_tasks());
    println!("work steals         : {}", report.total_steals());
    println!(
        "promotions          : {} at steal / {} at publish",
        report.promotions_at_steal(),
        report.promotions_at_publish()
    );
    println!("minor collections   : {}", report.gc.minor_collections);
    println!("major collections   : {}", report.gc.major_collections);
    println!("global collections  : {}", report.gc.global_collections);
    println!("bytes moved by GC   : {}", report.gc.total_moved_bytes());
    println!(
        "traffic (local/same-pkg/cross-pkg): {:?} / {:?} / {:?} bytes",
        report
            .traffic
            .bytes_of(manticore_gc::numa::AccessClass::Local),
        report
            .traffic
            .bytes_of(manticore_gc::numa::AccessClass::SamePackage),
        report
            .traffic
            .bytes_of(manticore_gc::numa::AccessClass::CrossPackage),
    );
}
