//! Explicit concurrency: CML-style channels and object proxies.
//!
//! Messages sent on a channel must be promoted to the global heap, because
//! the collector forbids pointers between local heaps (§2.3/§3.1 of the
//! paper); this example shows the promotion traffic that message passing
//! generates, and the use of an object proxy for a structure that stays
//! vproc-local until another vproc actually needs it.
//!
//! ```text
//! cargo run --example message_passing --release
//! MGC_BACKEND=threaded cargo run --example message_passing --release
//! ```

use manticore_gc::heap::i64_to_word;
use manticore_gc::numa::Topology;
use manticore_gc::runtime::{
    Backend, Executor, Machine, MachineConfig, TaskResult, TaskSpec, ThreadedMachine,
};

fn main() {
    let config = MachineConfig::new(Topology::intel_xeon_32(), 4);
    let backend = Backend::from_env().unwrap_or(Backend::Simulated);
    let mut machine: Box<dyn Executor> = match backend {
        Backend::Simulated => Box::new(Machine::new(config)),
        Backend::Threaded => Box::new(ThreadedMachine::new(config)),
    };
    let channel = machine.create_channel();

    machine.spawn_root(TaskSpec::new("producer", move |ctx| {
        // Produce a batch of messages; each is a small record built in the
        // producer's nursery and promoted by `send`.
        for i in 0..100i64 {
            let payload = ctx.alloc_raw(&[i64_to_word(i), i64_to_word(i * i)]);
            ctx.send(channel, payload);
        }

        // A local accumulator exposed to the runtime through a proxy: it is
        // only promoted if a remote vproc resolves the proxy.
        let accumulator = ctx.alloc_raw(&[i64_to_word(0)]);
        let proxy = ctx.create_proxy(accumulator);

        // Consume the messages (possibly after the channel contents survived
        // a garbage collection — promotion guarantees they are global).
        let mut received = 0i64;
        let mut sum = 0i64;
        while let Some(msg) = ctx.recv(channel) {
            sum += ctx.read_raw(msg, 1) as i64;
            received += 1;
        }
        let local_again = ctx.resolve_proxy(proxy);
        let _ = ctx.read_raw(local_again, 0);
        println!("received {received} messages, sum of squares = {sum}");
        TaskResult::Value(i64_to_word(sum))
    }));

    let report = machine.run();
    let stats = machine.channel_stats();
    println!("channel sends       : {}", stats.sends);
    println!("channel receives    : {}", stats.receives);
    println!("proxies created     : {}", stats.proxies_created);
    println!("proxies promoted    : {}", stats.proxies_promoted);
    println!("promotions (lazy)   : {}", report.gc.promotions);
    println!("bytes promoted      : {}", report.gc.promotion_bytes);
    let clock = match backend {
        Backend::Simulated => "virtual time",
        Backend::Threaded => "wall-clock time",
    };
    println!("{clock:<20}: {:.3} ms", report.elapsed_ns / 1e6);
}
