//! Explicit concurrency: CML-style channels and object proxies.
//!
//! Messages sent on a channel must be promoted to the global heap, because
//! the collector forbids pointers between local heaps (§2.3/§3.1 of the
//! paper); this example shows the promotion traffic that message passing
//! generates, and the use of an object proxy for a structure that stays
//! vproc-local until another vproc actually needs it. The producer/consumer
//! is written as a [`Program`], so the same code runs on either backend
//! through the `Experiment` front door.
//!
//! ```text
//! cargo run --example message_passing --release
//! MGC_BACKEND=threaded cargo run --example message_passing --release
//! ```

use manticore_gc::heap::i64_to_word;
use manticore_gc::numa::Topology;
use manticore_gc::runtime::{
    Backend, Checksum, Executor, Experiment, Program, TaskResult, TaskSpec,
};

/// Sends `messages` records over a channel, consumes them, and exposes a
/// local accumulator through a proxy.
struct ProducerConsumer {
    messages: i64,
}

impl Program for ProducerConsumer {
    fn name(&self) -> &str {
        "message-passing"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        let messages = self.messages;
        let channel = machine.create_channel();
        machine.spawn_root(TaskSpec::new("producer", move |ctx| {
            // Produce a batch of messages; each is a small record built in
            // the producer's nursery and promoted by `send`.
            for i in 0..messages {
                let payload = ctx.alloc_raw(&[i64_to_word(i), i64_to_word(i * i)]);
                ctx.send(channel, payload);
            }

            // A local accumulator exposed to the runtime through a proxy: it
            // is only promoted if a remote vproc resolves the proxy.
            let accumulator = ctx.alloc_raw(&[i64_to_word(0)]);
            let proxy = ctx.create_proxy(accumulator);

            // Consume the messages (possibly after the channel contents
            // survived a garbage collection — promotion guarantees they are
            // global).
            let mut received = 0i64;
            let mut sum = 0i64;
            while let Some(msg) = ctx.recv(channel) {
                sum += ctx.read_raw(msg, 1) as i64;
                received += 1;
            }
            let local_again = ctx.resolve_proxy(proxy);
            let _ = ctx.read_raw(local_again, 0);
            println!("received {received} messages, sum of squares = {sum}");
            TaskResult::Value(i64_to_word(sum))
        }));
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::I64(
            (0..self.messages).map(|i| i * i).sum::<i64>(),
        ))
    }

    fn params_json(&self) -> String {
        format!("{{\"messages\": {}}}", self.messages)
    }
}

fn main() {
    // `MGC_BACKEND=threaded` flips the run onto real OS threads: the
    // experiment applies the override because no backend is pinned here.
    let record = Experiment::new(ProducerConsumer { messages: 100 })
        .topology(Topology::intel_xeon_32())
        .vprocs(4)
        .run()
        .expect("four vprocs fit the 32-core machine");

    let stats = record.channels;
    println!("channel sends       : {}", stats.sends);
    println!("channel receives    : {}", stats.receives);
    println!("proxies created     : {}", stats.proxies_created);
    println!("proxies promoted    : {}", stats.proxies_promoted);
    println!("promotions (lazy)   : {}", record.report.gc.promotions);
    println!("bytes promoted      : {}", record.report.gc.promotion_bytes);
    let clock = match record.backend {
        Backend::Simulated => "virtual time",
        Backend::Threaded => "wall-clock time",
    };
    println!("{clock:<20}: {:.3} ms", record.report.elapsed_ns / 1e6);
}
