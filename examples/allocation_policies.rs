//! Compares the three physical page-placement policies of the paper's §4.3
//! (local, interleaved, socket-zero) on the SMVM benchmark — the workload
//! whose shared dense vector makes placement matter most.
//!
//! ```text
//! cargo run --example allocation_policies --release
//! ```

use manticore_gc::numa::{AllocPolicy, Topology};
use manticore_gc::workloads::{run_workload, Scale, Workload};

fn main() {
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let threads = [1usize, 8, 24, 48];

    println!("SMVM on the 48-core AMD model, virtual time in ms (lower is better)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "threads", "local", "interleaved", "socket0"
    );
    for &t in &threads {
        let mut row = format!("{t:>8}");
        for policy in [
            AllocPolicy::Local,
            AllocPolicy::Interleaved,
            AllocPolicy::SocketZero,
        ] {
            let report = run_workload(&topology, t, policy, Workload::Smvm, scale);
            row.push_str(&format!(" {:>14.3}", report.elapsed_ns / 1e6));
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper §4.3): local wins at low thread counts; socket-zero\n\
         collapses as every node hammers node 0; interleaved catches up on SMVM at\n\
         high thread counts because the shared vector's pages are spread out."
    );
}
