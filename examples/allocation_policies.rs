//! Compares the three physical page-placement policies of the paper's §4.3
//! (local, interleaved, socket-zero) on the SMVM benchmark — the workload
//! whose shared dense vector makes placement matter most. Each cell is one
//! `Experiment` with a different (threads × policy) coordinate.
//!
//! ```text
//! cargo run --example allocation_policies --release
//! ```

use manticore_gc::numa::{AllocPolicy, Topology};
use manticore_gc::workloads::{Scale, Workload};

fn main() {
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let threads = [1usize, 8, 24, 48];

    println!("SMVM on the 48-core AMD model, virtual time in ms (lower is better)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "threads", "local", "interleaved", "socket0"
    );
    for &t in &threads {
        let mut row = format!("{t:>8}");
        for policy in [
            AllocPolicy::Local,
            AllocPolicy::Interleaved,
            AllocPolicy::SocketZero,
        ] {
            let record = Workload::Smvm
                .experiment(scale)
                .topology(topology.clone())
                .vprocs(t)
                .policy(policy)
                .run()
                .expect("the thread counts fit the 48-core machine");
            row.push_str(&format!(" {:>14.3}", record.report.elapsed_ns / 1e6));
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper §4.3): local wins at low thread counts; socket-zero\n\
         collapses as every node hammers node 0; interleaved catches up on SMVM at\n\
         high thread counts because the shared vector's pages are spread out."
    );
}
