//! The real-threads execution backend: one OS thread per vproc.
//!
//! Where the simulated [`Machine`](crate::Machine) *models* the paper's
//! concurrency, this backend *performs* it:
//!
//! * each vproc is an OS thread owning a
//!   [`WorkerHeap`](mgc_heap::WorkerHeap) — nursery allocation and
//!   minor/major collections touch only thread-owned state, so the local-GC
//!   path takes **zero locks**, exactly the §3.3 claim;
//! * the global heap is shared: atomic words, a lock-free Treiber-stack
//!   chunk pool (chunk lease/return — the §3.3 synchronisation point — is a
//!   handful of CAS operations), and an append-only chunk directory that
//!   workers shadow with a thread-local cache;
//! * each vproc's deque is **split**: the worker pushes and pops spawned
//!   tasks on a *private* `VecDeque` it owns outright (no lock, no atomics,
//!   and — crucially — **no promotion**: a spawned task's heap roots stay in
//!   the spawner's local heap). A thief posts a
//!   [`StealRequest`](crate::vproc::StealRequest) to the victim's
//!   [`StealMailbox`](crate::vproc::StealMailbox); the victim services
//!   requests at its safe points (task boundaries and the ramp-down ack
//!   path) by promoting **only the stolen task's roots** and handing the
//!   task over. Promotion volume is therefore proportional to *steals*, not
//!   to *spawns* — the paper's lazy promotion-on-steal, §3.1. Data that
//!   lands in machine-global structures (fork/join continuations, delivered
//!   results, channel messages, proxy targets) is still promoted by its
//!   owner at publication time, because any thread may read those tables;
//! * global collections are an **incremental stop-the-world ramp-down**: a
//!   pending flag, per-vproc acknowledgement at a safe point (declining
//!   outstanding steal requests on the way), local collections rooted at
//!   the private deque's tasks, leader-led from-space flip, parallel
//!   CAS-evacuation of the worker-owned roots (private tasks included) plus
//!   a scan of the surviving young local data, and a Cheney drain over a
//!   shared [`AtomicUsize`] work index
//!   (`mgc_core::{flip_to_from_space, scan_pass_budgeted,
//!   release_from_space}`). Without a pause budget the drain runs to
//!   completion inside one pause — the classic stop-the-world shape. With
//!   [`GcConfig::pause_budget_us`](mgc_core::GcConfig) set, each pause runs
//!   at most one deadline-capped scan pass and then **releases the
//!   mutators**: workers return to the scheduler, run real work, and rejoin
//!   the collection at their next safe point (re-evacuating their roots and
//!   rescanning their young data first, so pointers fetched from not-yet-
//!   scanned to-space objects between increments can never survive into a
//!   released from-space chunk). Every increment is recorded as its own
//!   pause in [`PauseStats`](mgc_core::PauseStats), so p50/p99/max pause
//!   numbers reflect what a mutator actually experienced.
//!
//! Unlike the eager promote-at-publication design this backend used before,
//! a worker reaches the barrier still holding live *local* data — the
//! unstolen private tasks' graphs. Those objects never move during a global
//! collection; their fields are scanned as an extra root set
//! ([`mgc_core::scan_young_fields`]).
//!
//! The backend is **NUMA-aware end to end**: each worker is bound to the
//! node of the core [`Topology::spread_cores`](mgc_numa::Topology) assigns
//! it (real affinity where the platform allows it, deterministic node
//! tagging otherwise — [`mgc_numa::bind_current_thread`]); the shared global
//! heap is partitioned into per-node address bands with per-node chunk
//! pools, so `addr → node` is arithmetic; promotion chunks are leased per
//! the configured [`PlacementPolicy`] — under the default `NodeLocal` a
//! steal victim promotes the stolen graph into a chunk on the *thief's*
//! node, where it is about to be traversed; and thieves probe same-node
//! victims before remote ones, with a starvation escape hatch that falls
//! back to plain rotation after repeated failures. Every promotion is
//! attributed local vs remote and every steal same-node vs cross-node in
//! [`VprocRunStats`].
//!
//! A thief blocked on a steal request never hangs: the wait is sliced, and
//! every slice re-checks machine poison (a worker panicked), the
//! pending-collection flag, and program termination.
//!
//! Time on this backend is the wall clock: [`RunReport::elapsed_ns`] (and
//! [`RunReport::wall_clock_ns`]) report measured nanoseconds, which is what
//! the `bench-baseline` CI job tracks for perf regressions.

use crate::channel::{ChannelId, ChannelState, ChannelStats, Proxy, ProxyId};
use crate::ctx::TaskCtx;
use crate::executor::{Backend, Executor};
use crate::machine::MachineConfig;
use crate::stats::{RunReport, VprocPlacementDecision, VprocRunStats};
use crate::task::{Delivery, JoinCell, JoinId, Task, TaskResult, TaskSpec};
use crate::vproc::{StealMailbox, StealRequest};
use mgc_core::{
    evacuate_roots, flip_to_from_space, forward_parallel, release_from_space, scan_pass_budgeted,
    scan_young_fields, Collector, GcStats, ParallelGcState,
};
use mgc_heap::{
    Addr, Descriptor, DescriptorId, DescriptorTable, GcHeap, LocalHeapStats, SharedGlobalHeap,
    ThreadedLayout, Word, WorkerHeap,
};
use mgc_numa::{AdaptiveController, NodeId, PlacementDecision, PlacementPolicy, TrafficStats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps before re-polling the deques; bounds the
/// latency of waking into a pending global collection even if a wakeup is
/// missed.
const IDLE_WAIT: Duration = Duration::from_micros(200);

/// A generation-counting rendezvous for the stop-the-world phases. The last
/// worker to arrive runs the leader action *while the others are still
/// blocked* — a true quiescent section — then releases everyone into the
/// next phase.
#[derive(Debug)]
struct PhaseBarrier {
    workers: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Set when any worker panics: waiters abort instead of blocking for a
    /// participant that will never arrive.
    poisoned: AtomicBool,
}

/// Panic payload of workers aborted because *another* worker panicked; the
/// machine filters these out so the original panic is the one that
/// propagates from [`ThreadedMachine::run`].
struct WorkerAborted;

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl PhaseBarrier {
    fn new(workers: usize) -> Self {
        PhaseBarrier {
            workers,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Marks the barrier dead and wakes every waiter so they can abort.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// Blocks until all workers arrive; the last one runs `leader_action`
    /// before anyone is released. Returns `true` on the leader.
    ///
    /// # Panics
    ///
    /// Panics (with the [`WorkerAborted`] sentinel) if another worker
    /// panicked — the rendezvous can never complete, so blocking would
    /// deadlock the machine.
    fn wait_with(&self, leader_action: impl FnOnce()) -> bool {
        let mut state = self.state.lock().expect("barrier mutex poisoned");
        if self.is_poisoned() {
            std::panic::panic_any(WorkerAborted);
        }
        state.arrived += 1;
        if state.arrived == self.workers {
            leader_action();
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cv.notify_all();
            true
        } else {
            let generation = state.generation;
            while state.generation == generation {
                state = self.cv.wait(state).expect("barrier mutex poisoned");
                if self.is_poisoned() {
                    std::panic::panic_any(WorkerAborted);
                }
            }
            false
        }
    }
}

/// Coordination state of the stop-the-world global collection.
#[derive(Debug)]
struct GcControl {
    /// The §3.4 pending flag: set by whichever worker trips the trigger;
    /// every worker acknowledges it at its next safe point by entering the
    /// barrier.
    pending: AtomicBool,
    barrier: PhaseBarrier,
    state: ParallelGcState,
    from_space: Mutex<Vec<usize>>,
    progress: AtomicBool,
    done: AtomicBool,
    /// True between the from-space flip and the final release when the
    /// collection is still in its scan phase. With a pause budget, workers
    /// yield to the scheduler between budgeted increments while this is set
    /// and re-enter through the scan path (skipping the flip) at their next
    /// safe point. Only ever written by a barrier leader while every worker
    /// is stopped, so all workers always agree on the entry path.
    in_scan_phase: AtomicBool,
    /// Copied bytes across all collections of the run.
    total_copied_bytes: AtomicU64,
    /// Number of global collections performed.
    collections: AtomicU64,
}

/// State shared by every worker thread.
pub(crate) struct Shared {
    num_vprocs: usize,
    /// The NUMA node each vproc is bound to (tagged from the topology's
    /// sparse core assignment). Victims use the thief's entry to place
    /// stolen graphs; thieves use it to order victims locality-first.
    vproc_nodes: Vec<NodeId>,
    /// The promotion-chunk placement policy of this run.
    placement: PlacementPolicy,
    /// Per-vproc steal mailboxes: the published end of each worker's split
    /// deque (the private end lives inside [`WorkerState`]).
    pub(crate) mailboxes: Vec<StealMailbox>,
    /// Ablation knob (mirrors the pre-lazy-promotion behaviour): when set,
    /// every pushed task's roots are promoted at publication time.
    eager_publication: bool,
    /// Tasks queued or running anywhere in the machine. Zero means the
    /// program is finished: only a running task can create new tasks.
    pending_tasks: AtomicUsize,
    idle_lock: Mutex<()>,
    work_cv: Condvar,
    /// Number of workers currently blocked in the idle wait. The hot
    /// notification paths (every task push) skip the idle lock entirely
    /// while this is zero — which is the common case on a busy machine.
    /// A worker that races past the check before registering here sleeps at
    /// most [`IDLE_WAIT`] before re-polling, the same bound that already
    /// covers missed wakeups.
    idlers: AtomicUsize,
    pub(crate) joins: Mutex<Vec<Option<JoinCell>>>,
    pub(crate) channels: Mutex<Vec<ChannelState>>,
    pub(crate) channel_stats: Mutex<ChannelStats>,
    pub(crate) proxies: Mutex<Vec<Proxy>>,
    pub(crate) root_result: Mutex<Option<(Word, bool)>>,
    global: Arc<SharedGlobalHeap>,
    gc: GcControl,
    /// The machine's time origin: every `TaskCtx::now_ns` reading on this
    /// backend is wall-clock nanoseconds since this instant, so arrival
    /// deadlines and latency samples from different workers share one axis.
    epoch: Instant,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("num_vprocs", &self.num_vprocs)
            .field("pending_tasks", &self.pending_tasks.load(Ordering::Relaxed))
            .finish()
    }
}

impl Shared {
    /// Wakes idle workers, skipping the lock + broadcast when nobody is
    /// asleep. This is the hot path: a busy worker pushing tasks used to
    /// serialise every push through the global idle lock; now a push on a
    /// saturated machine costs one atomic load.
    fn notify_workers(&self) {
        if self.idlers.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.notify_workers_always();
    }

    /// Unconditional wakeup, for the rare latency-critical events (pending
    /// global collection, shutdown, poison) where a missed [`IDLE_WAIT`] of
    /// latency is not worth tolerating.
    fn notify_workers_always(&self) {
        let _guard = self.idle_lock.lock().expect("idle lock poisoned");
        self.work_cv.notify_all();
    }

    /// Marks the machine dead after a worker panic: unblocks the barrier
    /// and the idle waiters so every thread winds down promptly.
    fn poison(&self) {
        self.gc.barrier.poison();
        self.notify_workers_always();
    }
}

/// What one worker thread hands back when it finishes.
struct WorkerOutcome {
    run: VprocRunStats,
    gc: GcStats,
    local: LocalHeapStats,
    /// The adaptive controller's decision trail (empty under static
    /// placement policies).
    decisions: Vec<PlacementDecision>,
}

/// Why a worker promotes an object graph to the global heap — threaded
/// through to the [`VprocRunStats`] counters so the lazy-promotion win is
/// measurable per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PromoteWhy {
    /// Work was actually stolen: the victim promotes the stolen task's
    /// roots at handoff (the paper's lazy promotion, §3.1).
    Steal,
    /// Data became reachable from a machine-global structure: continuation
    /// roots, delivered results, channel messages, proxy targets — or, in
    /// the eager-publication ablation, a deque push.
    Publish,
}

/// A worker thread's complete state: its heap view, its collector, the
/// private end of its split deque, and the shared machine. [`TaskCtx`]
/// borrows this during task execution.
pub(crate) struct WorkerState {
    pub(crate) vproc: usize,
    pub(crate) heap: WorkerHeap,
    pub(crate) collector: Collector,
    pub(crate) shared: Arc<Shared>,
    pub(crate) stats: VprocRunStats,
    /// The private end of this worker's deque: owner push/pop take no lock
    /// and **no promotion** — a queued task's roots stay in this worker's
    /// local heap until the task is stolen (or run here). Thieves never see
    /// this queue; they go through the steal mailbox.
    private: VecDeque<Task>,
    /// This worker's NUMA node (== its heap's home node).
    node: NodeId,
    /// The node of the *consumer* of the next promotion: the thief's node
    /// while servicing a steal handoff, this worker's own node otherwise.
    /// Distinct from the heap's `promotion_target` (where the chunk is
    /// leased from, a placement-policy decision): the local/remote split is
    /// always judged against the consumer, whatever the policy chose.
    promotion_consumer: NodeId,
    /// Victims on this worker's node, then victims on other nodes — the
    /// locality-first probe order.
    same_node_victims: Vec<usize>,
    remote_victims: Vec<usize>,
    /// Rotation offset so repeated steal attempts spread over victims
    /// instead of re-probing from the same start each time.
    steal_cursor: usize,
    /// Consecutive `try_steal` calls that came home empty; past
    /// [`STEAL_LOCALITY_PATIENCE`] the thief ignores locality ordering (the
    /// starvation escape hatch).
    failed_steal_attempts: u32,
    /// The hysteresis controller resolving [`PlacementPolicy::Adaptive`]
    /// into a concrete effective mode before each promotion; `None` under
    /// the static policies.
    adaptive: Option<AdaptiveController>,
}

/// Consecutive empty-handed steal attempts before a thief abandons
/// locality-first victim ordering and probes everyone in plain rotation.
const STEAL_LOCALITY_PATIENCE: u32 = 4;

impl std::fmt::Debug for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerState")
            .field("vproc", &self.vproc)
            .finish()
    }
}

impl WorkerState {
    pub(crate) fn num_vprocs(&self) -> usize {
        self.shared.num_vprocs
    }

    /// Wall-clock nanoseconds since the machine's epoch — the shared time
    /// axis for arrival deadlines and latency samples.
    pub(crate) fn now_ns(&self) -> f64 {
        self.shared.epoch.elapsed().as_nanos() as f64
    }

    /// Spins until the machine clock reaches `target_ns`, servicing steal
    /// requests and pending global collections at every poll so an open-loop
    /// load generator waiting out an arrival gap never stalls the rest of
    /// the machine. Yields the OS thread between polls; returns immediately
    /// when the target is already past.
    pub(crate) fn wait_until_ns(&mut self, target_ns: f64, roots: &mut [Addr]) {
        while self.now_ns() < target_ns {
            self.safe_point(roots);
            std::thread::yield_now();
        }
    }

    // ------------------------------------------------------------------
    // Allocation and local collection (the lock-free path)
    // ------------------------------------------------------------------

    /// Makes sure the nursery can hold `payload_words`, running a local
    /// collection (rooted at the running task's roots **and** the private
    /// deque's tasks — their graphs live in this local heap until stolen)
    /// if it cannot. Every reservation is also a mid-task safe point.
    pub(crate) fn reserve_nursery(&mut self, roots: &mut [Addr], payload_words: usize) {
        self.safe_point(roots);
        let needed = payload_words + 1;
        if self.heap.local(self.vproc).nursery_free_words() >= needed {
            return;
        }
        self.local_gc(roots);
        assert!(
            self.heap.local(self.vproc).nursery_free_words() >= needed,
            "an object of {payload_words} payload words does not fit in the nursery even after \
             a collection — build large arrays as rope leaves"
        );
    }

    /// A mid-task safe point: answers queued steal requests and joins a
    /// pending global collection *now*, rooted at the running task, instead
    /// of making the rest of the machine wait for the task boundary.
    ///
    /// This is the fix for the two serialisation modes that dominated the
    /// real-compute profiles: a thief's steal request used to sit unanswered
    /// for the victim's whole current task (ramp-up latency ∝ task length),
    /// and a pending stop-the-world collection used to stall every *stopped*
    /// worker until the slowest running task finished (pause ∝ the longest
    /// task, multiplied by the number of collections). Both checks are
    /// single atomic loads, so the fast path costs nothing measurable.
    pub(crate) fn safe_point(&mut self, roots: &mut [Addr]) {
        if self.shared.mailboxes[self.vproc].has_requests() {
            self.service_steal_requests(false);
        }
        if self.shared.gc.pending.load(Ordering::Acquire) {
            self.service_steal_requests(true);
            self.participate_global_gc(roots);
        }
    }

    /// Gathers this worker's full local root set — the supplied extra roots
    /// (the running task) plus every private task's roots — runs `collect`
    /// over it, and scatters the rewritten roots back.
    fn with_local_roots(
        &mut self,
        extra: &mut [Addr],
        collect: impl FnOnce(&mut Collector, &mut WorkerHeap, usize, &mut Vec<Addr>),
    ) {
        let mut roots: Vec<Addr> = Vec::with_capacity(extra.len() + 4 * self.private.len());
        roots.extend_from_slice(extra);
        for task in &self.private {
            roots.extend_from_slice(&task.roots);
        }
        collect(&mut self.collector, &mut self.heap, self.vproc, &mut roots);
        let mut cursor = 0;
        for slot in extra.iter_mut() {
            *slot = roots[cursor];
            cursor += 1;
        }
        for task in self.private.iter_mut() {
            for slot in task.roots.iter_mut() {
                *slot = roots[cursor];
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, roots.len());
    }

    /// Resolves the adaptive controller's mode into the heap's effective
    /// placement for the promotion work about to run. No-op under the
    /// static policies.
    fn adaptive_pre_promotion(&mut self) {
        if let Some(controller) = self.adaptive.as_mut() {
            let mode = controller.placement_for_next_promotion();
            self.heap.set_effective_placement(mode.as_policy());
        }
    }

    /// Feeds one promotion operation's ledger split back into the adaptive
    /// controller. No-op under the static policies.
    fn adaptive_record(&mut self, local_bytes: u64, remote_bytes: u64) {
        if let Some(controller) = self.adaptive.as_mut() {
            controller.record_promotion(local_bytes, remote_bytes);
        }
    }

    fn local_gc(&mut self, roots: &mut [Addr]) {
        let start = Instant::now();
        let mut needs_global = false;
        let mut triggered_major = false;
        let consumer = self.promotion_consumer;
        let mut split = (0u64, 0u64);
        self.adaptive_pre_promotion();
        self.with_local_roots(roots, |collector, heap, vproc, all_roots| {
            let outcome = collector.collect_local(heap, vproc, all_roots);
            needs_global = outcome.needs_global;
            triggered_major = outcome.triggered_major;
            split = outcome.promoted_split(consumer);
        });
        // A local collection's major phase promotes old data for this
        // worker's own benefit; its bytes are part of the local/remote
        // ledger like any other promotion.
        self.stats.promoted_bytes_local += split.0;
        self.stats.promoted_bytes_remote += split.1;
        self.adaptive_record(split.0, split.1);
        // The mutator was stopped once for the whole local collection, so it
        // is one recorded pause — classified by the heaviest phase that ran.
        let pause = start.elapsed().as_nanos() as f64;
        self.stats.pauses.record(pause);
        let stats = self.collector.vproc_stats_mut(self.vproc);
        if triggered_major {
            stats.major_pauses.record(pause);
        } else {
            stats.minor_pauses.record(pause);
        }
        if needs_global {
            self.request_global();
        }
    }

    fn request_global(&self) {
        if !self.shared.gc.pending.swap(true, Ordering::AcqRel) {
            self.shared.notify_workers_always();
        }
    }

    // ------------------------------------------------------------------
    // Promotion (on steal, and at publication to global structures)
    // ------------------------------------------------------------------

    /// Follows forwarding pointers left by promotions.
    pub(crate) fn resolve_addr(&self, mut addr: Addr) -> Addr {
        if addr.is_null() {
            return addr;
        }
        while let Some(forwarded) = self.heap.forwarded_to(addr) {
            addr = forwarded;
        }
        addr
    }

    /// Promotes `addr` to the global heap if it still lives in this worker's
    /// local heap. Every pointer that escapes the worker goes through here:
    /// stolen tasks' roots at handoff (`PromoteWhy::Steal`), and data
    /// published to machine-global structures — continuation roots, channel
    /// messages, proxy targets, delivered results (`PromoteWhy::Publish`).
    /// This is what keeps other workers out of this worker's local heap
    /// entirely.
    pub(crate) fn promote_shared(&mut self, addr: Addr, why: PromoteWhy) -> Addr {
        let addr = self.resolve_addr(addr);
        if addr.is_null() || !self.heap.is_local(addr) {
            return addr;
        }
        self.adaptive_pre_promotion();
        let (new, outcome) = self.collector.promote(&mut self.heap, self.vproc, addr);
        // Local-vs-remote is judged against the *consumer's* node — the
        // thief's node for steal promotions, this worker's own node
        // otherwise — independent of where the placement policy leased the
        // chunk (under `FirstTouch`/`Interleave` the two legitimately
        // differ, and that difference is exactly the remote traffic).
        let (local, remote) = outcome.promoted_split(self.promotion_consumer);
        self.stats.promoted_bytes_local += local;
        self.stats.promoted_bytes_remote += remote;
        self.adaptive_record(local, remote);
        self.stats.lazy_promotions += 1;
        match why {
            PromoteWhy::Steal => {
                self.stats.promotions_at_steal += 1;
                self.stats.promoted_bytes_at_steal += outcome.promoted_bytes;
            }
            PromoteWhy::Publish => {
                self.stats.promotions_at_publish += 1;
                self.stats.promoted_bytes_at_publish += outcome.promoted_bytes;
            }
        }
        if outcome.needs_global {
            self.request_global();
        }
        new
    }

    /// Promotes every root in a task or continuation about to become visible
    /// to other workers.
    pub(crate) fn publish_roots(&mut self, roots: &mut [Addr], why: PromoteWhy) {
        for root in roots.iter_mut() {
            *root = self.promote_shared(*root, why);
        }
    }

    // ------------------------------------------------------------------
    // Task plumbing
    // ------------------------------------------------------------------

    /// Pushes a task on this worker's **private** deque. Under lazy
    /// promotion (the default) the task's roots stay in this worker's local
    /// heap — promotion happens only if the task is later stolen. The
    /// eager-publication ablation promotes here instead, which is what the
    /// proptest uses as the volume upper bound.
    pub(crate) fn push_task(&mut self, mut task: Task) {
        if self.shared.eager_publication {
            let mut roots = std::mem::take(&mut task.roots);
            self.publish_roots(&mut roots, PromoteWhy::Publish);
            task.roots = roots;
        }
        self.shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
        self.private.push_back(task);
        self.publish_work_hint();
        self.shared.notify_workers();
    }

    /// Publishes the private-deque length so thieves can pick a victim.
    fn publish_work_hint(&self) {
        self.shared.mailboxes[self.vproc].publish_work_hint(self.private.len());
    }

    /// Registers a join cell (its continuation's roots must already be
    /// promoted).
    pub(crate) fn new_join(&mut self, cell: JoinCell) -> JoinId {
        let mut joins = self.shared.joins.lock().expect("joins poisoned");
        for (i, slot) in joins.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(cell);
                return JoinId(i);
            }
        }
        joins.push(Some(cell));
        JoinId(joins.len() - 1)
    }

    fn deliver(&mut self, join: JoinId, slot: usize, word: Word, is_ptr: bool) {
        let finished = {
            let mut joins = self.shared.joins.lock().expect("joins poisoned");
            let cell = joins[join.0]
                .as_mut()
                .expect("join cell outlives its children");
            let s = &mut cell.slots[slot];
            s.word = word;
            s.is_ptr = is_ptr;
            s.filled = true;
            cell.remaining -= 1;
            if cell.remaining == 0 {
                joins[join.0].take()
            } else {
                None
            }
        };
        if let Some(cell) = finished {
            let mut continuation = cell.continuation.expect("continuation present");
            // Children's results follow the continuation's own inputs, in
            // child order. Pointer results were promoted by the delivering
            // worker (and the continuation's own roots by the forking
            // worker), so the continuation is safe to adopt on any vproc —
            // it lands on this worker's private deque like any other task.
            for s in &cell.slots {
                if s.is_ptr {
                    continuation.roots.push(Addr::new(s.word));
                } else {
                    continuation.values.push(s.word);
                }
            }
            self.shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
            self.private.push_back(continuation);
            self.publish_work_hint();
            self.shared.notify_workers();
        }
    }

    // ------------------------------------------------------------------
    // The steal-request protocol
    // ------------------------------------------------------------------

    /// Thief side: probes victims' mailboxes **locality-first** — every
    /// victim on this worker's own node (rotated) before any remote victim —
    /// posting a steal request to the first victim whose work hint is
    /// non-zero and waiting (bounded) for the handoff. After
    /// [`STEAL_LOCALITY_PATIENCE`] consecutive empty-handed attempts the
    /// ordering is abandoned for plain rotation over everyone (the
    /// starvation escape hatch: a thief must never keep re-probing a
    /// depleted node while work idles elsewhere, nor settle into an order
    /// that systematically skips a victim).
    fn try_steal(&mut self) -> Option<Task> {
        self.steal_cursor = self.steal_cursor.wrapping_add(1);
        let same = self.same_node_victims.len();
        let remote = self.remote_victims.len();
        let total = same + remote;
        let cursor = self.steal_cursor;
        let flat = self.failed_steal_attempts >= STEAL_LOCALITY_PATIENCE;
        // Probe order without allocating: locality-first rotates within each
        // group (same-node victims first); the starvation escape hatch is
        // one flat rotation over everyone.
        let victim_at = |state: &Self, i: usize| -> usize {
            if flat {
                let j = (cursor + i) % total;
                if j < same {
                    state.same_node_victims[j]
                } else {
                    state.remote_victims[j - same]
                }
            } else if i < same {
                state.same_node_victims[(cursor + i) % same]
            } else {
                state.remote_victims[(cursor + i - same) % remote]
            }
        };
        for i in 0..total {
            let victim = victim_at(self, i);
            if self.shared.mailboxes[victim].work_hint() == 0 {
                continue;
            }
            if let Some(task) = self.request_steal(victim) {
                self.stats.steals += 1;
                if self.shared.vproc_nodes[victim] == self.node {
                    self.stats.steals_same_node += 1;
                } else {
                    self.stats.steals_cross_node += 1;
                }
                self.failed_steal_attempts = 0;
                return Some(task);
            }
        }
        self.failed_steal_attempts = self.failed_steal_attempts.saturating_add(1);
        None
    }

    /// Posts one steal request to `victim` and waits for the answer. The
    /// wait aborts (cancelling the request) when the machine is poisoned, a
    /// global collection becomes pending, the program finished, or the
    /// victim takes too long — so a thief can never hang here.
    fn request_steal(&mut self, victim: usize) -> Option<Task> {
        let request = StealRequest::new(self.vproc);
        self.shared.mailboxes[victim].post(Arc::clone(&request));
        // The victim may be asleep in the idle wait; it services its mailbox
        // at the top of its scheduler loop once woken.
        self.shared.notify_workers();
        let shared = Arc::clone(&self.shared);
        request.wait(move || {
            shared.gc.barrier.is_poisoned()
                || shared.gc.pending.load(Ordering::Acquire)
                || shared.pending_tasks.load(Ordering::Acquire) == 0
        })
    }

    /// Victim side: answers every queued steal request at a safe point. A
    /// handoff pops the *oldest* private task (the FIFO end — the largest
    /// unit of work, as in any work-stealing deque) and promotes **only that
    /// task's roots** before filling the request; this is the one place the
    /// lazy-promotion design pays promotion cost, so the volume scales with
    /// steals rather than spawns. Requests are declined when the private
    /// deque is empty or a global collection is pending (`declining` forces
    /// that — the ramp-down ack path must not grow the global heap).
    fn service_steal_requests(&mut self, declining: bool) {
        while let Some(request) = self.shared.mailboxes[self.vproc].take_request() {
            if !request.is_pending() {
                continue; // the thief already gave up
            }
            let decline = declining
                || self.private.is_empty()
                || self.shared.gc.pending.load(Ordering::Acquire);
            if decline {
                request.decline();
                self.stats.steal_requests_declined += 1;
                continue;
            }
            let mut task = self
                .private
                .pop_front()
                .expect("non-empty checked just above; only the owner pops");
            self.publish_work_hint();
            // Where does the stolen graph go? Under `NodeLocal` placement it
            // is leased from the *thief's* node pool — the thief is about to
            // traverse it — and under `FirstTouch` from this (the victim's)
            // node, as an OS first-touch policy would back the pages the
            // victim writes. `Interleave` ignores the target.
            let thief_node = self.shared.vproc_nodes[request.thief()];
            // `Adaptive` targets the thief like `NodeLocal`: in its
            // interleave mode the heap ignores the preferred node anyway.
            let target = match self.shared.placement {
                PlacementPolicy::NodeLocal | PlacementPolicy::Adaptive => thief_node,
                PlacementPolicy::Interleave | PlacementPolicy::FirstTouch => self.node,
            };
            self.heap.set_promotion_target(target);
            self.promotion_consumer = thief_node;
            let mut roots = std::mem::take(&mut task.roots);
            self.publish_roots(&mut roots, PromoteWhy::Steal);
            task.roots = roots;
            self.heap.set_promotion_target(self.node);
            self.promotion_consumer = self.node;
            match request.try_fill(task) {
                Ok(()) => self.stats.steal_requests_served += 1,
                Err(task) => {
                    // The thief cancelled between our pending-check and the
                    // fill: keep the (now promoted — harmless) task.
                    self.private.push_front(task);
                    self.publish_work_hint();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Channels and proxies
    // ------------------------------------------------------------------

    pub(crate) fn channel_send(&mut self, channel: ChannelId, message: Addr) {
        let message = self.promote_shared(message, PromoteWhy::Publish);
        let mut channels = self.shared.channels.lock().expect("channels poisoned");
        channels[channel.0].queue.push_back(message);
        channels[channel.0].sends += 1;
        drop(channels);
        self.shared
            .channel_stats
            .lock()
            .expect("stats poisoned")
            .sends += 1;
    }

    pub(crate) fn channel_recv(&mut self, channel: ChannelId) -> Option<Addr> {
        let message = {
            let mut channels = self.shared.channels.lock().expect("channels poisoned");
            let message = channels[channel.0].queue.pop_front()?;
            channels[channel.0].receives += 1;
            message
        };
        self.shared
            .channel_stats
            .lock()
            .expect("stats poisoned")
            .receives += 1;
        Some(message)
    }

    pub(crate) fn create_proxy(&mut self, target: Addr) -> ProxyId {
        // The proxy table is machine-global and any vproc may resolve the
        // proxy, so the target is promoted by its owner at creation time
        // (the threaded analogue of promote-on-remote-resolve: promotion
        // happens when the object becomes reachable from shared state).
        let target = self.promote_shared(target, PromoteWhy::Publish);
        let mut proxies = self.shared.proxies.lock().expect("proxies poisoned");
        proxies.push(Proxy {
            owner: self.vproc,
            target,
            promoted: false,
        });
        self.shared
            .channel_stats
            .lock()
            .expect("stats poisoned")
            .proxies_created += 1;
        ProxyId(proxies.len() - 1)
    }

    pub(crate) fn resolve_proxy(&mut self, proxy: ProxyId) -> Addr {
        let (target, newly_promoted) = {
            let mut proxies = self.shared.proxies.lock().expect("proxies poisoned");
            let entry = &mut proxies[proxy.0];
            let newly = self.vproc != entry.owner && !entry.promoted;
            if newly {
                entry.promoted = true;
            }
            (entry.target, newly)
        };
        if newly_promoted {
            self.shared
                .channel_stats
                .lock()
                .expect("stats poisoned")
                .proxies_promoted += 1;
        }
        target
    }

    // ------------------------------------------------------------------
    // The scheduler loop
    // ------------------------------------------------------------------

    fn run_task(&mut self, mut task: Task) {
        let start = Instant::now();
        let mut roots = std::mem::take(&mut task.roots);
        let values = std::mem::take(&mut task.values);
        let delivery = task.delivery;
        let body = task.body;
        let mut delivery_taken = false;
        let result = {
            let mut ctx =
                TaskCtx::new_threaded(self, &mut roots, &values, &mut delivery_taken, delivery);
            body(&mut ctx)
        };
        self.stats.tasks_run += 1;
        if !delivery_taken {
            let (word, is_ptr) = match result {
                TaskResult::Unit => (0, false),
                TaskResult::Value(w) => (w, false),
                TaskResult::Ptr(handle) => {
                    // Results land in the machine-global join table (or the
                    // root-result slot): promote before delivering.
                    let addr = self.promote_shared(roots[handle.index()], PromoteWhy::Publish);
                    (addr.raw(), true)
                }
            };
            match delivery {
                Delivery::Discard => {
                    if word != 0 || is_ptr {
                        *self.shared.root_result.lock().expect("result poisoned") =
                            Some((word, is_ptr));
                    }
                }
                Delivery::Join { join, slot } => self.deliver(join, slot, word, is_ptr),
            }
        }
        self.stats.busy_ns += start.elapsed().as_nanos() as f64;
        // Decrement last: the counter can only reach zero when no further
        // work can ever appear.
        if self.shared.pending_tasks.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Shutdown must reach even a worker that has not yet registered
            // as an idler; take the unconditional path.
            self.shared.notify_workers_always();
        }
    }

    fn worker_main(mut self) -> WorkerOutcome {
        let shared = self.shared.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            self.main_loop();
            self.stats.placement_switches = self.adaptive.as_ref().map_or(0, |c| c.switches());
            WorkerOutcome {
                run: self.stats,
                gc: *self.collector.vproc_stats(self.vproc),
                local: self.heap.local(self.vproc).stats(),
                decisions: self
                    .adaptive
                    .take()
                    .map(|c| c.decisions().to_vec())
                    .unwrap_or_default(),
            }
        }));
        match result {
            Ok(outcome) => outcome,
            Err(payload) => {
                // Unblock everyone else, then let the scope see the panic.
                shared.poison();
                std::panic::resume_unwind(payload)
            }
        }
    }

    fn main_loop(&mut self) {
        loop {
            if self.shared.gc.barrier.is_poisoned() {
                // Another worker panicked; exit quietly so the original
                // panic is the one that reaches the caller.
                break;
            }
            if self.shared.gc.pending.load(Ordering::Acquire) {
                // The ramp-down ack path is a servicing point too: decline
                // outstanding steal requests so no thief waits on a victim
                // that is heading into the barrier.
                self.service_steal_requests(true);
                // Between increments of a budgeted collection the mutator is
                // actually released: run one task before rejoining (its
                // allocation safe points rejoin the collection mid-task, so
                // the other workers never wait longer than one inter-safe-
                // point interval).
                if self.shared.gc.in_scan_phase.load(Ordering::Acquire) {
                    if let Some(task) = self.private.pop_back() {
                        self.publish_work_hint();
                        self.run_task(task);
                        continue;
                    }
                }
                self.participate_global_gc(&mut []);
                continue;
            }
            // A task boundary is the safe point where steal requests are
            // answered (handing work over promotes only that work's roots).
            self.service_steal_requests(false);
            if let Some(task) = self.private.pop_back() {
                self.publish_work_hint();
                self.run_task(task);
                continue;
            }
            if let Some(task) = self.try_steal() {
                self.run_task(task);
                continue;
            }
            if self.shared.pending_tasks.load(Ordering::Acquire) == 0 {
                // A collection requested by the very last task must still be
                // served by everyone before exiting (the barrier counts all
                // workers). The counter read above synchronises with the
                // final decrement, so a pending flag set during that task is
                // visible here.
                if self.shared.gc.pending.load(Ordering::Acquire) {
                    continue;
                }
                // Decline any steal request that raced with the shutdown so
                // no thief waits out its full patience.
                self.service_steal_requests(true);
                break;
            }
            if self.shared.mailboxes[self.vproc].has_requests() {
                continue; // a request arrived while we were stealing: serve it
            }
            // Register as an idler *after* taking the lock: a push that sees
            // the count non-zero then notifies under this same lock, so the
            // wakeup cannot slip between the registration and the wait. A
            // push that read zero just before we got here is covered by the
            // timeout, as before.
            let guard = self.shared.idle_lock.lock().expect("idle lock poisoned");
            self.shared.idlers.fetch_add(1, Ordering::SeqCst);
            let (guard, _) = self
                .shared
                .work_cv
                .wait_timeout(guard, IDLE_WAIT)
                .expect("idle lock poisoned");
            self.shared.idlers.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
        }
    }

    // ------------------------------------------------------------------
    // The stop-the-world global collection
    // ------------------------------------------------------------------

    /// Acknowledges a pending global collection at a safe point: ramp down
    /// (finish local collections, retire the current chunk), rendezvous,
    /// and join the parallel copying phase.
    ///
    /// `task_roots` is the running task's root set when the safe point is
    /// mid-task (allocation points), empty at task boundaries. Those roots
    /// join the ramp-down collections (their local referents may move) and
    /// are evacuated after the flip (they may point into from-space).
    ///
    /// Without a pause budget one call completes the whole collection — a
    /// single stop-the-world pause, the classic shape. With
    /// [`GcConfig::pause_budget_us`](mgc_core::GcConfig) set, a call runs
    /// **one increment**: ramp-down (or a catch-up local collection on
    /// re-entry), root re-evacuation and young rescan, then a single
    /// deadline-capped scan pass — after which the worker returns to its
    /// scheduler with `pending` still set and rejoins at its next safe
    /// point. Roots and young data are re-evacuated at the head of *every*
    /// increment because a mutator running between increments may load
    /// from-space pointers out of not-yet-scanned to-space objects; the
    /// from-space chunks are only released at the end of an increment whose
    /// scan pass drained the work index with no worker reporting progress
    /// or a deadline timeout — i.e. with the mutators stopped ever since
    /// the last full root evacuation, so nothing can still point into
    /// from-space. Each increment records its own pause.
    fn participate_global_gc(&mut self, task_roots: &mut [Addr]) {
        let start = Instant::now();
        let shared = self.shared.clone();
        let budget = self
            .collector
            .config()
            .pause_budget_us
            .map(Duration::from_micros);
        // Stable for the whole rendezvous: the flag only flips while every
        // worker is stopped inside a barrier, so all workers agree on it.
        let resuming = shared.gc.in_scan_phase.load(Ordering::Acquire);

        // --- Ramp-down (§3.4 steps 1–3). Under lazy promotion the unstolen
        // private tasks' graphs still live in this local heap, so the
        // collections are rooted at those tasks (plus the running task, when
        // stopping mid-task); their survivors end up in the young area
        // (minor) with the old data promoted (major). A re-entering worker
        // runs the same pair as a catch-up: anything it allocated between
        // increments moves out of the nursery so the young rescan below
        // covers it.
        let consumer = self.promotion_consumer;
        let mut split = (0u64, 0u64);
        self.adaptive_pre_promotion();
        self.with_local_roots(task_roots, |collector, heap, vproc, roots| {
            collector.minor(heap, vproc, roots);
            let major = collector.major(heap, vproc, roots);
            split = major.promoted_split(consumer);
        });
        self.stats.promoted_bytes_local += split.0;
        self.stats.promoted_bytes_remote += split.1;
        self.adaptive_record(split.0, split.1);
        if !resuming {
            // Chunks promoted into between increments are to-space Current
            // chunks the scan passes already cover; only the pre-flip chunk
            // must be retired so the flip sees no Current chunk.
            self.heap.retire_current_chunk();
        }

        // --- Acknowledge and rendezvous. On the first increment the leader
        // (last arrival) turns every filled chunk into from-space; on every
        // increment it resets the per-pass scan state.
        shared.gc.barrier.wait_with(|| {
            if !shared.gc.in_scan_phase.load(Ordering::Acquire) {
                let from_space = flip_to_from_space(&shared.global);
                *shared.gc.from_space.lock().expect("gc state poisoned") = from_space;
                shared.gc.state.copied_bytes.store(0, Ordering::Release);
                shared.gc.in_scan_phase.store(true, Ordering::Release);
            }
            shared.gc.state.reset_work_index();
            shared.gc.progress.store(false, Ordering::Release);
            shared.gc.done.store(false, Ordering::Release);
        });

        // --- Evacuate the roots this worker owns, then fix up the fields of
        // the surviving young local data (it may reference from-space). The
        // running task's roots count as owned: nobody else will forward them.
        // Re-run on every increment: both may have picked up new from-space
        // references while the mutators ran.
        evacuate_roots(&mut self.heap, task_roots, &shared.gc.state);
        self.evacuate_owned_roots();
        scan_young_fields(&mut self.heap, &shared.gc.state);
        shared.gc.barrier.wait_with(|| {});

        // --- Parallel Cheney drain over the shared work index. Unbudgeted:
        // repeat passes until a full pass makes no progress on any worker.
        // Budgeted: one deadline-capped pass per increment, then yield; a
        // timed-out pass counts as progress so termination is never
        // concluded from a pass that merely ran out of budget.
        let deadline = budget.map(|b| start + b);
        loop {
            let pass = scan_pass_budgeted(&mut self.heap, &shared.gc.state, deadline);
            if pass.may_have_more_work() {
                shared.gc.progress.store(true, Ordering::Release);
            }
            shared.gc.barrier.wait_with(|| {
                if !shared.gc.progress.swap(false, Ordering::AcqRel) {
                    shared.gc.done.store(true, Ordering::Release);
                }
                shared.gc.state.reset_work_index();
            });
            if shared.gc.done.load(Ordering::Acquire) {
                break;
            }
            if budget.is_some() {
                // Yield: release this mutator until its next safe point.
                // `pending` stays set; the next entry resumes the scan phase.
                self.record_global_increment(start);
                return;
            }
        }

        // --- Reclaim from-space and resume the world.
        shared.gc.barrier.wait_with(|| {
            let from_space =
                std::mem::take(&mut *shared.gc.from_space.lock().expect("gc state poisoned"));
            release_from_space(&shared.global, &from_space);
            shared.gc.collections.fetch_add(1, Ordering::Relaxed);
            shared.gc.total_copied_bytes.fetch_add(
                shared.gc.state.copied_bytes.load(Ordering::Acquire),
                Ordering::Relaxed,
            );
            shared.gc.in_scan_phase.store(false, Ordering::Release);
            // Clearing the pending flag is the "resume" signal; it must be
            // the leader's last write before releasing the barrier.
            shared.gc.pending.store(false, Ordering::Release);
        });
        shared.notify_workers();

        self.record_global_increment(start);
        self.collector
            .vproc_stats_mut(self.vproc)
            .global_collections += 1;
    }

    /// Records one global-collection increment pause that started at
    /// `start` — in the per-vproc collector stats (kind-classified) and the
    /// per-vproc run stats (the mutator-visible pause series).
    fn record_global_increment(&mut self, start: Instant) {
        let pause = start.elapsed().as_nanos() as f64;
        self.stats.pauses.record(pause);
        self.collector
            .vproc_stats_mut(self.vproc)
            .global_pauses
            .record(pause);
    }

    /// Evacuates the roots this worker is responsible for: its private
    /// deque's tasks (their local roots are left alone — local objects never
    /// move in a global collection — and their global roots are forwarded),
    /// plus a `vproc`-strided slice of the shared join/channel/proxy tables
    /// (and the root result, on worker 0).
    fn evacuate_owned_roots(&mut self) {
        let shared = self.shared.clone();
        let state = &shared.gc.state;
        let stride = shared.num_vprocs;

        for task in self.private.iter_mut() {
            evacuate_roots(&mut self.heap, &mut task.roots, state);
        }

        {
            let mut joins = shared.joins.lock().expect("joins poisoned");
            for cell in joins.iter_mut().skip(self.vproc).step_by(stride).flatten() {
                for slot in cell.slots.iter_mut() {
                    if slot.filled && slot.is_ptr {
                        slot.word =
                            forward_parallel(&mut self.heap, Addr::new(slot.word), state).raw();
                    }
                }
                if let Some(continuation) = &mut cell.continuation {
                    evacuate_roots(&mut self.heap, &mut continuation.roots, state);
                }
            }
        }

        {
            let mut channels = shared.channels.lock().expect("channels poisoned");
            for channel in channels.iter_mut().skip(self.vproc).step_by(stride) {
                for slot in channel.queue.iter_mut() {
                    *slot = forward_parallel(&mut self.heap, *slot, state);
                }
            }
        }

        {
            let mut proxies = shared.proxies.lock().expect("proxies poisoned");
            for proxy in proxies.iter_mut().skip(self.vproc).step_by(stride) {
                proxy.target = forward_parallel(&mut self.heap, proxy.target, state);
            }
        }

        if self.vproc == 0 {
            let mut result = shared.root_result.lock().expect("result poisoned");
            if let Some((word, true)) = *result {
                let new = forward_parallel(&mut self.heap, Addr::new(word), state);
                *result = Some((new.raw(), true));
            }
        }
    }
}

/// The real-threads machine: executes a program with one OS thread per
/// vproc. See the module docs for the design; see
/// [`Machine`](crate::Machine) for the simulated counterpart.
///
/// # Example
///
/// ```
/// use mgc_runtime::{Executor, MachineConfig, TaskResult, TaskSpec, ThreadedMachine};
/// use mgc_heap::i64_to_word;
///
/// let mut machine = ThreadedMachine::new(MachineConfig::small_for_tests(2));
/// machine.spawn_root(TaskSpec::new("hello", |ctx| {
///     let obj = ctx.alloc_raw(&[i64_to_word(41)]);
///     TaskResult::Value(ctx.read_raw(obj, 0) + 1)
/// }));
/// let report = machine.run();
/// assert_eq!(machine.take_result(), Some((42, false)));
/// assert!(report.wall_clock_ns.is_some());
/// ```
pub struct ThreadedMachine {
    config: MachineConfig,
    descriptors: DescriptorTable,
    num_channels: usize,
    root: Option<Task>,
    result: Option<(Word, bool)>,
    channel_stats: ChannelStats,
}

impl std::fmt::Debug for ThreadedMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedMachine")
            .field("vprocs", &self.config.num_vprocs)
            .field("channels", &self.num_channels)
            .field("has_root", &self.root.is_some())
            .finish()
    }
}

impl ThreadedMachine {
    /// Builds a threaded machine from the same configuration type as the
    /// simulated one. The topology contributes vproc→node placement (for
    /// heap bookkeeping and chunk affinity); the cost-model fields are
    /// ignored — this backend's clock is the wall clock.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.num_vprocs > 0, "at least one vproc is required");
        ThreadedMachine {
            config,
            descriptors: DescriptorTable::new(),
            num_channels: 0,
            root: None,
            result: None,
            channel_stats: ChannelStats::default(),
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Channel statistics for the completed run.
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel_stats
    }

    /// Runs the program to completion across real threads, returning the
    /// wall-clock run report.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (e.g. a deadlocked join or a heap
    /// invariant violation).
    pub fn run(&mut self) -> RunReport {
        let num_vprocs = self.config.num_vprocs;
        let Some(root) = self.root.take() else {
            return self.empty_report(num_vprocs);
        };

        let topology = self.config.topology.clone();
        let cores = topology.spread_cores(num_vprocs);
        let placer = mgc_numa::PagePlacer::new(self.config.heap.policy, topology.num_nodes());
        let layout = ThreadedLayout::new(&self.config.heap, num_vprocs, topology.num_nodes());
        let global = Arc::new(
            SharedGlobalHeap::new(layout.chunk_words(), topology.num_nodes())
                .with_placement(self.config.placement)
                .with_node_span_bytes(self.config.heap.node_span_bytes),
        );
        global
            .pool()
            .set_node_affinity(self.config.gc.chunk_node_affinity);
        let descriptors = Arc::new(std::mem::replace(
            &mut self.descriptors,
            DescriptorTable::new(),
        ));

        // Each vproc's node derives from the topology's sparse core
        // assignment (§2.2), filtered through the page-placement policy —
        // the same assignment the worker threads bind themselves to.
        let vproc_nodes: Vec<NodeId> = (0..num_vprocs)
            .map(|vproc| placer.place(topology.node_of_core(cores[vproc])))
            .collect();

        let shared = Arc::new(Shared {
            num_vprocs,
            vproc_nodes: vproc_nodes.clone(),
            placement: self.config.placement,
            mailboxes: (0..num_vprocs).map(|_| StealMailbox::new()).collect(),
            eager_publication: self.config.gc.eager_publication,
            pending_tasks: AtomicUsize::new(1),
            idle_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            idlers: AtomicUsize::new(0),
            joins: Mutex::new(Vec::new()),
            channels: Mutex::new(
                (0..self.num_channels)
                    .map(|_| ChannelState::default())
                    .collect(),
            ),
            channel_stats: Mutex::new(ChannelStats::default()),
            proxies: Mutex::new(Vec::new()),
            root_result: Mutex::new(None),
            global: global.clone(),
            gc: GcControl {
                pending: AtomicBool::new(false),
                barrier: PhaseBarrier::new(num_vprocs),
                state: ParallelGcState::new(),
                from_space: Mutex::new(Vec::new()),
                progress: AtomicBool::new(false),
                done: AtomicBool::new(false),
                in_scan_phase: AtomicBool::new(false),
                total_copied_bytes: AtomicU64::new(0),
                collections: AtomicU64::new(0),
            },
            epoch: Instant::now(),
        });

        let mut root = Some(root);
        let workers: Vec<WorkerState> = (0..num_vprocs)
            .map(|vproc| {
                let node = vproc_nodes[vproc];
                // Locality-first steal order: same-node victims first.
                let (same_node_victims, remote_victims): (Vec<usize>, Vec<usize>) = (0..num_vprocs)
                    .filter(|&v| v != vproc)
                    .partition(|&v| vproc_nodes[v] == node);
                // The root task starts on worker 0's private deque; its
                // roots are empty (nothing is allocated before the run), so
                // seeding it before the thread starts needs no promotion.
                let private: VecDeque<Task> = if vproc == 0 {
                    root.take().into_iter().collect()
                } else {
                    VecDeque::new()
                };
                shared.mailboxes[vproc].publish_work_hint(private.len());
                WorkerState {
                    vproc,
                    heap: WorkerHeap::new(vproc, layout, node, global.clone(), descriptors.clone()),
                    collector: Collector::new(self.config.gc, num_vprocs, topology.num_nodes()),
                    shared: shared.clone(),
                    stats: VprocRunStats::default(),
                    private,
                    node,
                    promotion_consumer: node,
                    same_node_victims,
                    remote_victims,
                    steal_cursor: vproc,
                    failed_steal_attempts: 0,
                    adaptive: (self.config.placement == PlacementPolicy::Adaptive)
                        .then(AdaptiveController::new),
                }
            })
            .collect();

        let start = Instant::now();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|worker| {
                    std::thread::Builder::new()
                        .name(format!("mgc-vproc-{}", worker.vproc))
                        .spawn_scoped(scope, move || {
                            // Bind the thread to its vproc's node: real
                            // affinity where the platform provides it,
                            // deterministic node tagging otherwise. The
                            // achieved strength lands in the run stats so
                            // every run record says what it actually got.
                            let mut worker = worker;
                            let binding = mgc_numa::bind_current_thread(worker.node);
                            worker.stats.node_binding_pinned =
                                matches!(binding, mgc_numa::NodeBinding::Pinned);
                            worker.worker_main()
                        })
                        .expect("spawning a worker thread failed")
                })
                .collect();
            // Join every worker before deciding what to propagate, so a
            // panic on one thread never leaves the others running. Prefer
            // the original panic over the `WorkerAborted` sentinels of
            // workers that merely aborted in sympathy.
            let mut outcomes = Vec::new();
            let mut original: Option<Box<dyn std::any::Any + Send>> = None;
            let mut sympathetic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                match handle.join() {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(payload) if payload.is::<WorkerAborted>() => {
                        sympathetic.get_or_insert(payload);
                    }
                    Err(payload) => {
                        original.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = original.or(sympathetic) {
                std::panic::resume_unwind(payload);
            }
            outcomes
        });
        let wall_ns = start.elapsed().as_nanos() as f64;

        self.result = shared.root_result.lock().expect("result poisoned").take();
        self.channel_stats = *shared.channel_stats.lock().expect("stats poisoned");

        let mut gc = GcStats::new();
        let mut allocated_objects = 0;
        let mut allocated_words = 0;
        for outcome in &outcomes {
            gc.merge(&outcome.gc);
            allocated_objects += outcome.local.nursery_allocated_objects;
            allocated_words += outcome.local.nursery_allocated_words;
        }
        gc.global_copied_bytes += shared.gc.total_copied_bytes.load(Ordering::Relaxed);

        // Workers are joined in spawn order, so `outcomes[i]` is vproc i's.
        let placement_decisions = outcomes
            .iter()
            .enumerate()
            .flat_map(|(vproc, outcome)| {
                outcome
                    .decisions
                    .iter()
                    .map(move |&decision| VprocPlacementDecision { vproc, decision })
            })
            .collect();

        RunReport {
            elapsed_ns: wall_ns,
            wall_clock_ns: Some(wall_ns),
            rounds: 0,
            vprocs: num_vprocs,
            allocated_objects,
            allocated_words,
            per_vproc: outcomes.iter().map(|o| o.run).collect(),
            gc,
            traffic: TrafficStats::new(),
            placement_decisions,
        }
    }

    fn empty_report(&self, vprocs: usize) -> RunReport {
        RunReport {
            elapsed_ns: 0.0,
            wall_clock_ns: Some(0.0),
            rounds: 0,
            vprocs,
            allocated_objects: 0,
            allocated_words: 0,
            per_vproc: vec![VprocRunStats::default(); vprocs],
            gc: GcStats::new(),
            traffic: TrafficStats::new(),
            placement_decisions: Vec::new(),
        }
    }
}

impl Executor for ThreadedMachine {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn register_descriptor(&mut self, descriptor: Descriptor) -> DescriptorId {
        self.descriptors.register(descriptor)
    }

    fn create_channel(&mut self) -> ChannelId {
        let id = ChannelId(self.num_channels);
        self.num_channels += 1;
        id
    }

    fn spawn_root(&mut self, spec: TaskSpec) {
        self.root = Some(Task::from_spec(spec, Delivery::Discard, 0));
    }

    fn run(&mut self) -> RunReport {
        ThreadedMachine::run(self)
    }

    fn take_result(&mut self) -> Option<(Word, bool)> {
        self.result.take()
    }

    fn channel_stats(&self) -> ChannelStats {
        ThreadedMachine::channel_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_heap::{i64_to_word, word_to_i64};

    fn machine(vprocs: usize) -> ThreadedMachine {
        ThreadedMachine::new(MachineConfig::small_for_tests(vprocs))
    }

    #[test]
    fn runs_a_single_task_on_a_real_thread() {
        let mut m = machine(1);
        m.spawn_root(TaskSpec::new("answer", |ctx| {
            ctx.work(10);
            TaskResult::Value(i64_to_word(42))
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((i64_to_word(42), false)));
        assert_eq!(report.total_tasks(), 1);
        assert!(report.wall_clock_ns.is_some());
    }

    #[test]
    fn empty_machine_finishes_immediately() {
        let mut m = machine(4);
        let report = m.run();
        assert_eq!(report.total_tasks(), 0);
    }

    #[test]
    fn fork_join_work_spreads_over_threads() {
        let mut m = machine(4);
        m.spawn_root(TaskSpec::new("root", |ctx| {
            let children: Vec<_> = (0..32i64)
                .map(|i| {
                    (
                        TaskSpec::new("child", move |ctx| {
                            let obj = ctx.alloc_raw(&[i64_to_word(i)]);
                            TaskResult::Value(ctx.read_raw(obj, 0))
                        }),
                        vec![],
                    )
                })
                .collect();
            ctx.fork_join(
                children,
                TaskSpec::new("sum", |ctx| {
                    let total: i64 = (0..ctx.num_values())
                        .map(|i| word_to_i64(ctx.value(i)))
                        .sum();
                    TaskResult::Value(i64_to_word(total))
                }),
                &[],
            );
            TaskResult::Unit
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((i64_to_word((0..32).sum()), false)));
        assert_eq!(report.total_tasks(), 34);
    }

    #[test]
    fn task_panic_propagates_instead_of_hanging() {
        // A panicking task must poison the machine and resurface from
        // `run()` — not leave the other three workers waiting forever.
        let result = std::panic::catch_unwind(|| {
            let mut m = machine(4);
            m.spawn_root(TaskSpec::new("root", |ctx| {
                let children: Vec<_> = (0..8i64)
                    .map(|i| {
                        (
                            TaskSpec::new("maybe-panic", move |_ctx| {
                                assert!(i != 5, "worker task exploded on purpose");
                                TaskResult::Unit
                            }),
                            vec![],
                        )
                    })
                    .collect();
                ctx.fork_join(children, TaskSpec::new("done", |_| TaskResult::Unit), &[]);
                TaskResult::Unit
            }));
            m.run();
        });
        let payload = result.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("exploded on purpose"),
            "the original panic message should propagate, got: {message:?}"
        );
    }

    #[test]
    fn thief_blocked_on_a_steal_request_survives_a_victim_panic() {
        // Worker 0 pushes stealable-looking work (its hint goes non-zero),
        // gives the other workers time to post steal requests, and then
        // panics *without ever reaching a safe point* — so the requests are
        // never serviced. The blocked thieves must abort their waits via the
        // poison/timeout path instead of hanging the machine.
        let result = std::panic::catch_unwind(|| {
            let mut m = machine(4);
            m.spawn_root(TaskSpec::new("root", |ctx| {
                for _ in 0..8 {
                    ctx.spawn(TaskSpec::new("never-runs", |_| TaskResult::Unit), &[]);
                }
                // Let the idle workers wake up and post their requests.
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("victim exploded before its next safe point");
            }));
            m.run();
        });
        let payload = result.expect_err("the victim panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("exploded before its next safe point"),
            "the victim's panic should propagate, got: {message:?}"
        );
    }

    #[test]
    fn single_worker_spawn_tree_promotes_nothing_at_steal() {
        // With one vproc there are no thieves: under lazy promotion the
        // spawned tasks' graphs must stay local (the eager design promoted
        // every pushed root).
        let mut m = machine(1);
        m.spawn_root(TaskSpec::new("root", |ctx| {
            let children: Vec<_> = (0..16i64)
                .map(|i| {
                    let obj = ctx.alloc_raw(&[i64_to_word(i); 8]);
                    (
                        TaskSpec::new("child", |ctx| {
                            TaskResult::Value(ctx.read_raw(ctx.input(0), 0))
                        }),
                        vec![obj],
                    )
                })
                .collect();
            ctx.fork_join(
                children,
                TaskSpec::new("sum", |ctx| {
                    let total: i64 = (0..ctx.num_values())
                        .map(|i| word_to_i64(ctx.value(i)))
                        .sum();
                    TaskResult::Value(i64_to_word(total))
                }),
                &[],
            );
            TaskResult::Unit
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((i64_to_word((0..16).sum()), false)));
        assert_eq!(report.total_steals(), 0);
        assert_eq!(report.promotions_at_steal(), 0);
        assert_eq!(
            report.per_vproc[0].steal_requests_served, 0,
            "nobody can request a steal on a single-vproc machine"
        );
    }

    #[test]
    fn stolen_work_is_promoted_at_steal_time() {
        // Spawn enough slow children from one worker that the other three
        // post steal requests and get tasks (with heap roots) handed over.
        let mut m = machine(4);
        m.spawn_root(TaskSpec::new("root", |ctx| {
            let children: Vec<_> = (0..32i64)
                .map(|i| {
                    let obj = ctx.alloc_raw(&[i64_to_word(i); 8]);
                    (
                        TaskSpec::new("slow-child", |ctx| {
                            std::thread::sleep(std::time::Duration::from_micros(300));
                            TaskResult::Value(ctx.read_raw(ctx.input(0), 0))
                        }),
                        vec![obj],
                    )
                })
                .collect();
            ctx.fork_join(
                children,
                TaskSpec::new("sum", |ctx| {
                    let total: i64 = (0..ctx.num_values())
                        .map(|i| word_to_i64(ctx.value(i)))
                        .sum();
                    TaskResult::Value(i64_to_word(total))
                }),
                &[],
            );
            TaskResult::Unit
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((i64_to_word((0..32).sum()), false)));
        if report.total_steals() > 0 {
            assert_eq!(
                report.total_steals(),
                report
                    .per_vproc
                    .iter()
                    .map(|v| v.steal_requests_served)
                    .sum::<u64>(),
                "every successful steal corresponds to one served request"
            );
            assert!(
                report.promotions_at_steal() > 0,
                "stolen tasks carry local roots, so steals must promote"
            );
        }
    }

    #[test]
    fn sustained_allocation_runs_global_collections() {
        let mut m = machine(2);
        m.spawn_root(TaskSpec::new("allocate-a-lot", |ctx| {
            let mut list = None;
            for i in 0..4000u64 {
                let mark = ctx.root_mark();
                let value = ctx.alloc_raw(&[i]);
                let cons = ctx.alloc_vector(&[Some(value), list]);
                list = Some(ctx.keep(cons, mark));
            }
            // Walk the list to verify nothing was lost.
            let mut count = 0u64;
            let mut cursor = list;
            while let Some(cell) = cursor {
                count += 1;
                cursor = ctx.read_ptr(cell, 1);
            }
            TaskResult::Value(count)
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((4000, false)));
        assert!(report.gc.minor_collections > 0, "minors expected");
        assert!(report.gc.global_collections > 0, "globals expected");
    }

    #[test]
    fn adaptive_placement_records_a_cold_start_decision() {
        // Any run that promotes (here: via local collections' major phases)
        // must resolve the adaptive cold start, leaving at least the
        // node-local adoption in the decision trail.
        let mut config = MachineConfig::small_for_tests(2);
        config.placement = PlacementPolicy::Adaptive;
        let mut m = ThreadedMachine::new(config);
        m.spawn_root(TaskSpec::new("allocate-a-lot", |ctx| {
            let mut list = None;
            for i in 0..1500u64 {
                let mark = ctx.root_mark();
                let value = ctx.alloc_raw(&[i]);
                let cons = ctx.alloc_vector(&[Some(value), list]);
                list = Some(ctx.keep(cons, mark));
            }
            let mut count = 0u64;
            let mut cursor = list;
            while let Some(cell) = cursor {
                count += 1;
                cursor = ctx.read_ptr(cell, 1);
            }
            TaskResult::Value(count)
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((1500, false)));
        assert!(
            report.placement_switches() >= 1,
            "the cold-start adoption counts as a switch"
        );
        let first = &report.placement_decisions[0];
        assert_eq!(first.decision.reason, mgc_numa::DecisionReason::ColdStart);
        assert_eq!(first.decision.to, mgc_numa::PlacementMode::NodeLocal);
        assert!(
            !report.per_vproc.iter().any(|v| v.node_binding_pinned),
            "this unsafe-free build can only tag, never pin"
        );
    }
}
