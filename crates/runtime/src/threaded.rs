//! The real-threads execution backend: one OS thread per vproc.
//!
//! Where the simulated [`Machine`](crate::Machine) *models* the paper's
//! concurrency, this backend *performs* it:
//!
//! * each vproc is an OS thread owning a
//!   [`WorkerHeap`](mgc_heap::WorkerHeap) — nursery allocation and
//!   minor/major collections touch only thread-owned state, so the local-GC
//!   path takes **zero locks**, exactly the §3.3 claim;
//! * the global heap is shared: atomic words, a mutex-guarded chunk pool
//!   (the §3.3 synchronisation point), and an append-only chunk directory;
//! * work stealing uses the same mutex-guarded [`WorkDeque`]s as the
//!   simulated backend — a task becomes stealable the moment it is pushed,
//!   so its heap roots are **promoted at publication time** (the threaded
//!   analogue of the paper's lazy-promotion-on-steal: data is promoted when
//!   work becomes visible to other vprocs, and a thief never touches the
//!   victim's local heap);
//! * global collections are a real **stop-the-world ramp-down**: a pending
//!   flag, per-vproc acknowledgement at a safe point (task boundaries),
//!   leader-led from-space flip, parallel CAS-evacuation, and a scan loop
//!   over a shared [`AtomicUsize`] work index
//!   (`mgc_core::{flip_to_from_space, scan_pass, release_from_space}`).
//!
//! Because every published root is global, a worker reaching a safe point
//! holds no live local data; the ramp-down's local collections empty the
//! local heaps and the parallel phase only traces the shared structures.
//!
//! Time on this backend is the wall clock: [`RunReport::elapsed_ns`] (and
//! [`RunReport::wall_clock_ns`]) report measured nanoseconds, which is what
//! the `bench-baseline` CI job tracks for perf regressions.

use crate::channel::{ChannelId, ChannelState, ChannelStats, Proxy, ProxyId};
use crate::ctx::TaskCtx;
use crate::executor::{Backend, Executor};
use crate::machine::MachineConfig;
use crate::stats::{RunReport, VprocRunStats};
use crate::task::{Delivery, JoinCell, JoinId, Task, TaskResult, TaskSpec};
use crate::vproc::WorkDeque;
use mgc_core::{
    evacuate_roots, flip_to_from_space, forward_parallel, release_from_space, scan_pass, Collector,
    GcStats, ParallelGcState,
};
use mgc_heap::{
    Addr, Descriptor, DescriptorId, DescriptorTable, GcHeap, LocalHeapStats, SharedGlobalHeap,
    ThreadedLayout, Word, WorkerHeap,
};
use mgc_numa::TrafficStats;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps before re-polling the deques; bounds the
/// latency of waking into a pending global collection even if a wakeup is
/// missed.
const IDLE_WAIT: Duration = Duration::from_micros(200);

/// A generation-counting rendezvous for the stop-the-world phases. The last
/// worker to arrive runs the leader action *while the others are still
/// blocked* — a true quiescent section — then releases everyone into the
/// next phase.
#[derive(Debug)]
struct PhaseBarrier {
    workers: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Set when any worker panics: waiters abort instead of blocking for a
    /// participant that will never arrive.
    poisoned: AtomicBool,
}

/// Panic payload of workers aborted because *another* worker panicked; the
/// machine filters these out so the original panic is the one that
/// propagates from [`ThreadedMachine::run`].
struct WorkerAborted;

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl PhaseBarrier {
    fn new(workers: usize) -> Self {
        PhaseBarrier {
            workers,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Marks the barrier dead and wakes every waiter so they can abort.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// Blocks until all workers arrive; the last one runs `leader_action`
    /// before anyone is released. Returns `true` on the leader.
    ///
    /// # Panics
    ///
    /// Panics (with the [`WorkerAborted`] sentinel) if another worker
    /// panicked — the rendezvous can never complete, so blocking would
    /// deadlock the machine.
    fn wait_with(&self, leader_action: impl FnOnce()) -> bool {
        let mut state = self.state.lock().expect("barrier mutex poisoned");
        if self.is_poisoned() {
            std::panic::panic_any(WorkerAborted);
        }
        state.arrived += 1;
        if state.arrived == self.workers {
            leader_action();
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cv.notify_all();
            true
        } else {
            let generation = state.generation;
            while state.generation == generation {
                state = self.cv.wait(state).expect("barrier mutex poisoned");
                if self.is_poisoned() {
                    std::panic::panic_any(WorkerAborted);
                }
            }
            false
        }
    }
}

/// Coordination state of the stop-the-world global collection.
#[derive(Debug)]
struct GcControl {
    /// The §3.4 pending flag: set by whichever worker trips the trigger;
    /// every worker acknowledges it at its next safe point by entering the
    /// barrier.
    pending: AtomicBool,
    barrier: PhaseBarrier,
    state: ParallelGcState,
    from_space: Mutex<Vec<usize>>,
    progress: AtomicBool,
    done: AtomicBool,
    /// Copied bytes across all collections of the run.
    total_copied_bytes: AtomicU64,
    /// Number of global collections performed.
    collections: AtomicU64,
}

/// State shared by every worker thread.
pub(crate) struct Shared {
    num_vprocs: usize,
    pub(crate) deques: Vec<WorkDeque>,
    /// Tasks queued or running anywhere in the machine. Zero means the
    /// program is finished: only a running task can create new tasks.
    pending_tasks: AtomicUsize,
    idle_lock: Mutex<()>,
    work_cv: Condvar,
    pub(crate) joins: Mutex<Vec<Option<JoinCell>>>,
    pub(crate) channels: Mutex<Vec<ChannelState>>,
    pub(crate) channel_stats: Mutex<ChannelStats>,
    pub(crate) proxies: Mutex<Vec<Proxy>>,
    pub(crate) root_result: Mutex<Option<(Word, bool)>>,
    global: Arc<SharedGlobalHeap>,
    gc: GcControl,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("num_vprocs", &self.num_vprocs)
            .field("pending_tasks", &self.pending_tasks.load(Ordering::Relaxed))
            .finish()
    }
}

impl Shared {
    fn notify_workers(&self) {
        let _guard = self.idle_lock.lock().expect("idle lock poisoned");
        self.work_cv.notify_all();
    }

    /// Marks the machine dead after a worker panic: unblocks the barrier
    /// and the idle waiters so every thread winds down promptly.
    fn poison(&self) {
        self.gc.barrier.poison();
        self.notify_workers();
    }
}

/// What one worker thread hands back when it finishes.
struct WorkerOutcome {
    run: VprocRunStats,
    gc: GcStats,
    local: LocalHeapStats,
}

/// A worker thread's complete state: its heap view, its collector, and the
/// shared machine. [`TaskCtx`] borrows this during task execution.
pub(crate) struct WorkerState {
    pub(crate) vproc: usize,
    pub(crate) heap: WorkerHeap,
    pub(crate) collector: Collector,
    pub(crate) shared: Arc<Shared>,
    pub(crate) stats: VprocRunStats,
    /// Last victim probed, so steal attempts rotate instead of re-scanning
    /// (and re-locking) every deque per attempt.
    steal_cursor: usize,
}

impl std::fmt::Debug for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerState")
            .field("vproc", &self.vproc)
            .finish()
    }
}

impl WorkerState {
    pub(crate) fn num_vprocs(&self) -> usize {
        self.shared.num_vprocs
    }

    // ------------------------------------------------------------------
    // Allocation and local collection (the lock-free path)
    // ------------------------------------------------------------------

    /// Makes sure the nursery can hold `payload_words`, running a local
    /// collection (rooted at the running task's roots) if it cannot.
    pub(crate) fn reserve_nursery(&mut self, roots: &mut [Addr], payload_words: usize) {
        let needed = payload_words + 1;
        if self.heap.local(self.vproc).nursery_free_words() >= needed {
            return;
        }
        self.local_gc(roots);
        assert!(
            self.heap.local(self.vproc).nursery_free_words() >= needed,
            "an object of {payload_words} payload words does not fit in the nursery even after \
             a collection — build large arrays as rope leaves"
        );
    }

    fn local_gc(&mut self, roots: &mut [Addr]) {
        let start = Instant::now();
        let outcome = self
            .collector
            .collect_local(&mut self.heap, self.vproc, roots);
        let pause = start.elapsed().as_nanos() as f64;
        let stats = self.collector.vproc_stats_mut(self.vproc);
        stats.minor_pause_ns += pause;
        if outcome.needs_global {
            self.request_global();
        }
    }

    fn request_global(&self) {
        if !self.shared.gc.pending.swap(true, Ordering::AcqRel) {
            self.shared.notify_workers();
        }
    }

    // ------------------------------------------------------------------
    // Promotion at publication
    // ------------------------------------------------------------------

    /// Follows forwarding pointers left by promotions.
    pub(crate) fn resolve_addr(&self, mut addr: Addr) -> Addr {
        if addr.is_null() {
            return addr;
        }
        while let Some(forwarded) = self.heap.forwarded_to(addr) {
            addr = forwarded;
        }
        addr
    }

    /// Promotes `addr` to the global heap if it still lives in this worker's
    /// local heap. Every pointer that escapes the worker — task inputs
    /// pushed to the deque, continuation roots, channel messages, proxy
    /// targets, delivered results — goes through here, which is what keeps
    /// other workers out of this worker's local heap entirely.
    pub(crate) fn promote_shared(&mut self, addr: Addr) -> Addr {
        let addr = self.resolve_addr(addr);
        if addr.is_null() || !self.heap.is_local(addr) {
            return addr;
        }
        let (new, outcome) = self.collector.promote(&mut self.heap, self.vproc, addr);
        self.stats.lazy_promotions += 1;
        if outcome.needs_global {
            self.request_global();
        }
        new
    }

    /// Promotes every root in a task about to be published.
    pub(crate) fn publish_roots(&mut self, roots: &mut [Addr]) {
        for root in roots.iter_mut() {
            *root = self.promote_shared(*root);
        }
    }

    // ------------------------------------------------------------------
    // Task plumbing
    // ------------------------------------------------------------------

    /// Publishes a task on this worker's deque (promoting its roots first,
    /// since any thread may steal it from there).
    pub(crate) fn push_task(&mut self, mut task: Task) {
        let mut roots = std::mem::take(&mut task.roots);
        self.publish_roots(&mut roots);
        task.roots = roots;
        self.shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
        self.shared.deques[self.vproc].push(task);
        self.shared.notify_workers();
    }

    /// Registers a join cell (its continuation's roots must already be
    /// promoted).
    pub(crate) fn new_join(&mut self, cell: JoinCell) -> JoinId {
        let mut joins = self.shared.joins.lock().expect("joins poisoned");
        for (i, slot) in joins.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(cell);
                return JoinId(i);
            }
        }
        joins.push(Some(cell));
        JoinId(joins.len() - 1)
    }

    fn deliver(&mut self, join: JoinId, slot: usize, word: Word, is_ptr: bool) {
        let finished = {
            let mut joins = self.shared.joins.lock().expect("joins poisoned");
            let cell = joins[join.0]
                .as_mut()
                .expect("join cell outlives its children");
            let s = &mut cell.slots[slot];
            s.word = word;
            s.is_ptr = is_ptr;
            s.filled = true;
            cell.remaining -= 1;
            if cell.remaining == 0 {
                joins[join.0].take()
            } else {
                None
            }
        };
        if let Some(cell) = finished {
            let mut continuation = cell.continuation.expect("continuation present");
            // Children's results follow the continuation's own inputs, in
            // child order. Pointer results were promoted by the delivering
            // worker, so they are safe to adopt on any vproc.
            for s in &cell.slots {
                if s.is_ptr {
                    continuation.roots.push(Addr::new(s.word));
                } else {
                    continuation.values.push(s.word);
                }
            }
            self.shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
            self.shared.deques[self.vproc].push(continuation);
            self.shared.notify_workers();
        }
    }

    fn try_steal(&mut self) -> Option<Task> {
        let n = self.shared.num_vprocs;
        for _ in 0..n {
            self.steal_cursor = (self.steal_cursor + 1) % n;
            if self.steal_cursor == self.vproc {
                continue;
            }
            if let Some(task) = self.shared.deques[self.steal_cursor].steal() {
                self.stats.steals += 1;
                return Some(task);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Channels and proxies
    // ------------------------------------------------------------------

    pub(crate) fn channel_send(&mut self, channel: ChannelId, message: Addr) {
        let message = self.promote_shared(message);
        let mut channels = self.shared.channels.lock().expect("channels poisoned");
        channels[channel.0].queue.push_back(message);
        channels[channel.0].sends += 1;
        drop(channels);
        self.shared
            .channel_stats
            .lock()
            .expect("stats poisoned")
            .sends += 1;
    }

    pub(crate) fn channel_recv(&mut self, channel: ChannelId) -> Option<Addr> {
        let message = {
            let mut channels = self.shared.channels.lock().expect("channels poisoned");
            let message = channels[channel.0].queue.pop_front()?;
            channels[channel.0].receives += 1;
            message
        };
        self.shared
            .channel_stats
            .lock()
            .expect("stats poisoned")
            .receives += 1;
        Some(message)
    }

    pub(crate) fn create_proxy(&mut self, target: Addr) -> ProxyId {
        // The proxy table is machine-global and any vproc may resolve the
        // proxy, so the target is promoted by its owner at creation time
        // (the threaded analogue of promote-on-remote-resolve: promotion
        // happens when the object becomes reachable from shared state).
        let target = self.promote_shared(target);
        let mut proxies = self.shared.proxies.lock().expect("proxies poisoned");
        proxies.push(Proxy {
            owner: self.vproc,
            target,
            promoted: false,
        });
        self.shared
            .channel_stats
            .lock()
            .expect("stats poisoned")
            .proxies_created += 1;
        ProxyId(proxies.len() - 1)
    }

    pub(crate) fn resolve_proxy(&mut self, proxy: ProxyId) -> Addr {
        let (target, newly_promoted) = {
            let mut proxies = self.shared.proxies.lock().expect("proxies poisoned");
            let entry = &mut proxies[proxy.0];
            let newly = self.vproc != entry.owner && !entry.promoted;
            if newly {
                entry.promoted = true;
            }
            (entry.target, newly)
        };
        if newly_promoted {
            self.shared
                .channel_stats
                .lock()
                .expect("stats poisoned")
                .proxies_promoted += 1;
        }
        target
    }

    // ------------------------------------------------------------------
    // The scheduler loop
    // ------------------------------------------------------------------

    fn run_task(&mut self, mut task: Task) {
        let start = Instant::now();
        let mut roots = std::mem::take(&mut task.roots);
        let values = std::mem::take(&mut task.values);
        let delivery = task.delivery;
        let body = task.body;
        let mut delivery_taken = false;
        let result = {
            let mut ctx =
                TaskCtx::new_threaded(self, &mut roots, &values, &mut delivery_taken, delivery);
            body(&mut ctx)
        };
        self.stats.tasks_run += 1;
        if !delivery_taken {
            let (word, is_ptr) = match result {
                TaskResult::Unit => (0, false),
                TaskResult::Value(w) => (w, false),
                TaskResult::Ptr(handle) => {
                    // Results escape this worker: promote before delivering.
                    let addr = self.promote_shared(roots[handle.index()]);
                    (addr.raw(), true)
                }
            };
            match delivery {
                Delivery::Discard => {
                    if word != 0 || is_ptr {
                        *self.shared.root_result.lock().expect("result poisoned") =
                            Some((word, is_ptr));
                    }
                }
                Delivery::Join { join, slot } => self.deliver(join, slot, word, is_ptr),
            }
        }
        self.stats.busy_ns += start.elapsed().as_nanos() as f64;
        // Decrement last: the counter can only reach zero when no further
        // work can ever appear.
        if self.shared.pending_tasks.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.notify_workers();
        }
    }

    fn worker_main(mut self) -> WorkerOutcome {
        let shared = self.shared.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            self.main_loop();
            WorkerOutcome {
                run: self.stats,
                gc: *self.collector.vproc_stats(self.vproc),
                local: self.heap.local(self.vproc).stats(),
            }
        }));
        match result {
            Ok(outcome) => outcome,
            Err(payload) => {
                // Unblock everyone else, then let the scope see the panic.
                shared.poison();
                std::panic::resume_unwind(payload)
            }
        }
    }

    fn main_loop(&mut self) {
        loop {
            if self.shared.gc.barrier.is_poisoned() {
                // Another worker panicked; exit quietly so the original
                // panic is the one that reaches the caller.
                break;
            }
            if self.shared.gc.pending.load(Ordering::Acquire) {
                self.participate_global_gc();
                continue;
            }
            if let Some(task) = self.shared.deques[self.vproc].pop_local() {
                self.run_task(task);
                continue;
            }
            if let Some(task) = self.try_steal() {
                self.run_task(task);
                continue;
            }
            if self.shared.pending_tasks.load(Ordering::Acquire) == 0 {
                // A collection requested by the very last task must still be
                // served by everyone before exiting (the barrier counts all
                // workers). The counter read above synchronises with the
                // final decrement, so a pending flag set during that task is
                // visible here.
                if self.shared.gc.pending.load(Ordering::Acquire) {
                    continue;
                }
                break;
            }
            let guard = self.shared.idle_lock.lock().expect("idle lock poisoned");
            let _ = self
                .shared
                .work_cv
                .wait_timeout(guard, IDLE_WAIT)
                .expect("idle lock poisoned");
        }
    }

    // ------------------------------------------------------------------
    // The stop-the-world global collection
    // ------------------------------------------------------------------

    /// Acknowledges a pending global collection at a safe point: ramp down
    /// (finish local collections, retire the current chunk), rendezvous,
    /// and join the parallel copying phase.
    fn participate_global_gc(&mut self) {
        let start = Instant::now();
        let shared = self.shared.clone();

        // --- Ramp-down (§3.4 steps 1–3). At a safe point every published
        // root is global, so these collections empty the local heap.
        let mut no_roots: Vec<Addr> = Vec::new();
        self.collector
            .minor(&mut self.heap, self.vproc, &mut no_roots);
        self.collector
            .major(&mut self.heap, self.vproc, &mut no_roots);
        self.heap.retire_current_chunk();

        // --- Acknowledge and wait for the flip: the leader (last arrival)
        // turns every filled chunk into from-space.
        shared.gc.barrier.wait_with(|| {
            let from_space = flip_to_from_space(&shared.global);
            *shared.gc.from_space.lock().expect("gc state poisoned") = from_space;
            shared.gc.state.reset_work_index();
            shared.gc.state.copied_bytes.store(0, Ordering::Release);
            shared.gc.progress.store(false, Ordering::Release);
            shared.gc.done.store(false, Ordering::Release);
        });

        // --- Evacuate the roots this worker owns.
        self.evacuate_owned_roots();
        shared.gc.barrier.wait_with(|| {});

        // --- Parallel Cheney drain over the shared work index, until a full
        // pass makes no progress on any worker.
        loop {
            if scan_pass(&mut self.heap, &shared.gc.state) {
                shared.gc.progress.store(true, Ordering::Release);
            }
            shared.gc.barrier.wait_with(|| {
                if !shared.gc.progress.swap(false, Ordering::AcqRel) {
                    shared.gc.done.store(true, Ordering::Release);
                }
                shared.gc.state.reset_work_index();
            });
            if shared.gc.done.load(Ordering::Acquire) {
                break;
            }
        }

        // --- Reclaim from-space and resume the world.
        shared.gc.barrier.wait_with(|| {
            let from_space =
                std::mem::take(&mut *shared.gc.from_space.lock().expect("gc state poisoned"));
            release_from_space(&shared.global, &from_space);
            shared.gc.collections.fetch_add(1, Ordering::Relaxed);
            shared.gc.total_copied_bytes.fetch_add(
                shared.gc.state.copied_bytes.load(Ordering::Acquire),
                Ordering::Relaxed,
            );
            // Clearing the pending flag is the "resume" signal; it must be
            // the leader's last write before releasing the barrier.
            shared.gc.pending.store(false, Ordering::Release);
        });
        shared.notify_workers();

        let stats = self.collector.vproc_stats_mut(self.vproc);
        stats.global_collections += 1;
        stats.global_pause_ns += start.elapsed().as_nanos() as f64;
    }

    /// Evacuates the roots this worker is responsible for: its own deque's
    /// tasks, plus a `vproc`-strided slice of the shared join/channel/proxy
    /// tables (and the root result, on worker 0).
    fn evacuate_owned_roots(&mut self) {
        let shared = self.shared.clone();
        let state = &shared.gc.state;
        let stride = shared.num_vprocs;

        shared.deques[self.vproc].with_tasks(|tasks| {
            for task in tasks.iter_mut() {
                evacuate_roots(&mut self.heap, &mut task.roots, state);
            }
        });

        {
            let mut joins = shared.joins.lock().expect("joins poisoned");
            for cell in joins.iter_mut().skip(self.vproc).step_by(stride).flatten() {
                for slot in cell.slots.iter_mut() {
                    if slot.filled && slot.is_ptr {
                        slot.word =
                            forward_parallel(&mut self.heap, Addr::new(slot.word), state).raw();
                    }
                }
                if let Some(continuation) = &mut cell.continuation {
                    evacuate_roots(&mut self.heap, &mut continuation.roots, state);
                }
            }
        }

        {
            let mut channels = shared.channels.lock().expect("channels poisoned");
            for channel in channels.iter_mut().skip(self.vproc).step_by(stride) {
                for slot in channel.queue.iter_mut() {
                    *slot = forward_parallel(&mut self.heap, *slot, state);
                }
            }
        }

        {
            let mut proxies = shared.proxies.lock().expect("proxies poisoned");
            for proxy in proxies.iter_mut().skip(self.vproc).step_by(stride) {
                proxy.target = forward_parallel(&mut self.heap, proxy.target, state);
            }
        }

        if self.vproc == 0 {
            let mut result = shared.root_result.lock().expect("result poisoned");
            if let Some((word, true)) = *result {
                let new = forward_parallel(&mut self.heap, Addr::new(word), state);
                *result = Some((new.raw(), true));
            }
        }
    }
}

/// The real-threads machine: executes a program with one OS thread per
/// vproc. See the module docs for the design; see
/// [`Machine`](crate::Machine) for the simulated counterpart.
///
/// # Example
///
/// ```
/// use mgc_runtime::{Executor, MachineConfig, TaskResult, TaskSpec, ThreadedMachine};
/// use mgc_heap::i64_to_word;
///
/// let mut machine = ThreadedMachine::new(MachineConfig::small_for_tests(2));
/// machine.spawn_root(TaskSpec::new("hello", |ctx| {
///     let obj = ctx.alloc_raw(&[i64_to_word(41)]);
///     TaskResult::Value(ctx.read_raw(obj, 0) + 1)
/// }));
/// let report = machine.run();
/// assert_eq!(machine.take_result(), Some((42, false)));
/// assert!(report.wall_clock_ns.is_some());
/// ```
pub struct ThreadedMachine {
    config: MachineConfig,
    descriptors: DescriptorTable,
    num_channels: usize,
    root: Option<Task>,
    result: Option<(Word, bool)>,
    channel_stats: ChannelStats,
}

impl std::fmt::Debug for ThreadedMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedMachine")
            .field("vprocs", &self.config.num_vprocs)
            .field("channels", &self.num_channels)
            .field("has_root", &self.root.is_some())
            .finish()
    }
}

impl ThreadedMachine {
    /// Builds a threaded machine from the same configuration type as the
    /// simulated one. The topology contributes vproc→node placement (for
    /// heap bookkeeping and chunk affinity); the cost-model fields are
    /// ignored — this backend's clock is the wall clock.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.num_vprocs > 0, "at least one vproc is required");
        ThreadedMachine {
            config,
            descriptors: DescriptorTable::new(),
            num_channels: 0,
            root: None,
            result: None,
            channel_stats: ChannelStats::default(),
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Channel statistics for the completed run.
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel_stats
    }

    /// Runs the program to completion across real threads, returning the
    /// wall-clock run report.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (e.g. a deadlocked join or a heap
    /// invariant violation).
    pub fn run(&mut self) -> RunReport {
        let num_vprocs = self.config.num_vprocs;
        let Some(root) = self.root.take() else {
            return self.empty_report(num_vprocs);
        };

        let topology = self.config.topology.clone();
        let cores = topology.spread_cores(num_vprocs);
        let placer = mgc_numa::PagePlacer::new(self.config.heap.policy, topology.num_nodes());
        let layout = ThreadedLayout::new(&self.config.heap, num_vprocs);
        let global = Arc::new(SharedGlobalHeap::new(
            layout.chunk_words(),
            topology.num_nodes(),
        ));
        global
            .pool()
            .set_node_affinity(self.config.gc.chunk_node_affinity);
        let descriptors = Arc::new(std::mem::replace(
            &mut self.descriptors,
            DescriptorTable::new(),
        ));

        let shared = Arc::new(Shared {
            num_vprocs,
            deques: (0..num_vprocs).map(|_| WorkDeque::new()).collect(),
            pending_tasks: AtomicUsize::new(1),
            idle_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            joins: Mutex::new(Vec::new()),
            channels: Mutex::new(
                (0..self.num_channels)
                    .map(|_| ChannelState::default())
                    .collect(),
            ),
            channel_stats: Mutex::new(ChannelStats::default()),
            proxies: Mutex::new(Vec::new()),
            root_result: Mutex::new(None),
            global: global.clone(),
            gc: GcControl {
                pending: AtomicBool::new(false),
                barrier: PhaseBarrier::new(num_vprocs),
                state: ParallelGcState::new(),
                from_space: Mutex::new(Vec::new()),
                progress: AtomicBool::new(false),
                done: AtomicBool::new(false),
                total_copied_bytes: AtomicU64::new(0),
                collections: AtomicU64::new(0),
            },
        });
        shared.deques[0].push(root);

        let workers: Vec<WorkerState> = (0..num_vprocs)
            .map(|vproc| {
                let home = topology.node_of_core(cores[vproc]);
                let node = placer.place(home);
                WorkerState {
                    vproc,
                    heap: WorkerHeap::new(
                        vproc,
                        layout,
                        node,
                        node,
                        global.clone(),
                        descriptors.clone(),
                    ),
                    collector: Collector::new(self.config.gc, num_vprocs, topology.num_nodes()),
                    shared: shared.clone(),
                    stats: VprocRunStats::default(),
                    steal_cursor: vproc,
                }
            })
            .collect();

        let start = Instant::now();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|worker| {
                    std::thread::Builder::new()
                        .name(format!("mgc-vproc-{}", worker.vproc))
                        .spawn_scoped(scope, move || worker.worker_main())
                        .expect("spawning a worker thread failed")
                })
                .collect();
            // Join every worker before deciding what to propagate, so a
            // panic on one thread never leaves the others running. Prefer
            // the original panic over the `WorkerAborted` sentinels of
            // workers that merely aborted in sympathy.
            let mut outcomes = Vec::new();
            let mut original: Option<Box<dyn std::any::Any + Send>> = None;
            let mut sympathetic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                match handle.join() {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(payload) if payload.is::<WorkerAborted>() => {
                        sympathetic.get_or_insert(payload);
                    }
                    Err(payload) => {
                        original.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = original.or(sympathetic) {
                std::panic::resume_unwind(payload);
            }
            outcomes
        });
        let wall_ns = start.elapsed().as_nanos() as f64;

        self.result = shared.root_result.lock().expect("result poisoned").take();
        self.channel_stats = *shared.channel_stats.lock().expect("stats poisoned");

        let mut gc = GcStats::new();
        let mut allocated_objects = 0;
        let mut allocated_words = 0;
        for outcome in &outcomes {
            gc.merge(&outcome.gc);
            allocated_objects += outcome.local.nursery_allocated_objects;
            allocated_words += outcome.local.nursery_allocated_words;
        }
        gc.global_copied_bytes += shared.gc.total_copied_bytes.load(Ordering::Relaxed);

        RunReport {
            elapsed_ns: wall_ns,
            wall_clock_ns: Some(wall_ns),
            rounds: 0,
            vprocs: num_vprocs,
            allocated_objects,
            allocated_words,
            per_vproc: outcomes.iter().map(|o| o.run).collect(),
            gc,
            traffic: TrafficStats::new(),
        }
    }

    fn empty_report(&self, vprocs: usize) -> RunReport {
        RunReport {
            elapsed_ns: 0.0,
            wall_clock_ns: Some(0.0),
            rounds: 0,
            vprocs,
            allocated_objects: 0,
            allocated_words: 0,
            per_vproc: vec![VprocRunStats::default(); vprocs],
            gc: GcStats::new(),
            traffic: TrafficStats::new(),
        }
    }
}

impl Executor for ThreadedMachine {
    fn backend(&self) -> Backend {
        Backend::Threaded
    }

    fn register_descriptor(&mut self, descriptor: Descriptor) -> DescriptorId {
        self.descriptors.register(descriptor)
    }

    fn create_channel(&mut self) -> ChannelId {
        let id = ChannelId(self.num_channels);
        self.num_channels += 1;
        id
    }

    fn spawn_root(&mut self, spec: TaskSpec) {
        self.root = Some(Task::from_spec(spec, Delivery::Discard, 0));
    }

    fn run(&mut self) -> RunReport {
        ThreadedMachine::run(self)
    }

    fn take_result(&mut self) -> Option<(Word, bool)> {
        self.result.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_heap::{i64_to_word, word_to_i64};

    fn machine(vprocs: usize) -> ThreadedMachine {
        ThreadedMachine::new(MachineConfig::small_for_tests(vprocs))
    }

    #[test]
    fn runs_a_single_task_on_a_real_thread() {
        let mut m = machine(1);
        m.spawn_root(TaskSpec::new("answer", |ctx| {
            ctx.work(10);
            TaskResult::Value(i64_to_word(42))
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((i64_to_word(42), false)));
        assert_eq!(report.total_tasks(), 1);
        assert!(report.wall_clock_ns.is_some());
    }

    #[test]
    fn empty_machine_finishes_immediately() {
        let mut m = machine(4);
        let report = m.run();
        assert_eq!(report.total_tasks(), 0);
    }

    #[test]
    fn fork_join_work_spreads_over_threads() {
        let mut m = machine(4);
        m.spawn_root(TaskSpec::new("root", |ctx| {
            let children: Vec<_> = (0..32i64)
                .map(|i| {
                    (
                        TaskSpec::new("child", move |ctx| {
                            let obj = ctx.alloc_raw(&[i64_to_word(i)]);
                            TaskResult::Value(ctx.read_raw(obj, 0))
                        }),
                        vec![],
                    )
                })
                .collect();
            ctx.fork_join(
                children,
                TaskSpec::new("sum", |ctx| {
                    let total: i64 = (0..ctx.num_values())
                        .map(|i| word_to_i64(ctx.value(i)))
                        .sum();
                    TaskResult::Value(i64_to_word(total))
                }),
                &[],
            );
            TaskResult::Unit
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((i64_to_word((0..32).sum()), false)));
        assert_eq!(report.total_tasks(), 34);
    }

    #[test]
    fn task_panic_propagates_instead_of_hanging() {
        // A panicking task must poison the machine and resurface from
        // `run()` — not leave the other three workers waiting forever.
        let result = std::panic::catch_unwind(|| {
            let mut m = machine(4);
            m.spawn_root(TaskSpec::new("root", |ctx| {
                let children: Vec<_> = (0..8i64)
                    .map(|i| {
                        (
                            TaskSpec::new("maybe-panic", move |_ctx| {
                                assert!(i != 5, "worker task exploded on purpose");
                                TaskResult::Unit
                            }),
                            vec![],
                        )
                    })
                    .collect();
                ctx.fork_join(children, TaskSpec::new("done", |_| TaskResult::Unit), &[]);
                TaskResult::Unit
            }));
            m.run();
        });
        let payload = result.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("exploded on purpose"),
            "the original panic message should propagate, got: {message:?}"
        );
    }

    #[test]
    fn sustained_allocation_runs_global_collections() {
        let mut m = machine(2);
        m.spawn_root(TaskSpec::new("allocate-a-lot", |ctx| {
            let mut list = None;
            for i in 0..4000u64 {
                let mark = ctx.root_mark();
                let value = ctx.alloc_raw(&[i]);
                let cons = ctx.alloc_vector(&[Some(value), list]);
                list = Some(ctx.keep(cons, mark));
            }
            // Walk the list to verify nothing was lost.
            let mut count = 0u64;
            let mut cursor = list;
            while let Some(cell) = cursor {
                count += 1;
                cursor = ctx.read_ptr(cell, 1);
            }
            TaskResult::Value(count)
        }));
        let report = m.run();
        assert_eq!(m.take_result(), Some((4000, false)));
        assert!(report.gc.minor_collections > 0, "minors expected");
        assert!(report.gc.global_collections > 0, "globals expected");
    }
}
