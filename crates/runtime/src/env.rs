//! The one place `MGC_*` environment overrides are parsed.
//!
//! A handful of knobs flip whole runs without touching code; every entry
//! point that honours them reads this module, so the parsing (and the
//! warning printed for an unparseable value) is identical everywhere:
//!
//! | Variable | Meaning | Accepted values |
//! |----------|---------|-----------------|
//! | `MGC_BACKEND` | Execution backend | `simulated`/`sim`, `threaded`/`threads` |
//! | `MGC_VPROCS` | Number of vprocs (threads) | a positive integer |
//! | `MGC_PLACEMENT` | Promotion-chunk NUMA placement | `node-local`, `interleave`, `first-touch`, `adaptive` |
//! | `MGC_MAX_ROUNDS` | Simulated scheduler's runaway-program round cap | a positive integer |
//! | `MGC_PAUSE_BUDGET_US` | Soft per-increment global-collection pause budget, in microseconds | a positive integer |
//! | `MGC_SERVE_SECONDS` | Serving programs' threaded-backend run duration, in seconds | a positive integer |
//! | `MGC_SERVE_RPS` | Serving programs' open-loop arrival rate, in requests per second | a positive integer |
//!
//! [`Experiment`](crate::Experiment) applies `MGC_BACKEND`, `MGC_VPROCS`,
//! `MGC_PLACEMENT`, and `MGC_PAUSE_BUDGET_US` as *defaults* — an explicit
//! [`Experiment::backend`](crate::Experiment::backend),
//! [`Experiment::vprocs`](crate::Experiment::vprocs), or
//! [`Experiment::gc_pause_budget`](crate::Experiment::gc_pause_budget) call
//! always wins — and the simulated [`Machine`](crate::Machine) reads
//! `MGC_MAX_ROUNDS` when it is built. Invalid values never abort a run:
//! they print a warning naming the knob and fall back to the caller's
//! default.

use crate::executor::Backend;
use mgc_numa::PlacementPolicy;

/// The captured `MGC_*` environment overrides. Each field is `None` when the
/// variable is unset *or* unparseable (after a warning on stderr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnvOverrides {
    /// `MGC_BACKEND`: which execution backend to run on.
    pub backend: Option<Backend>,
    /// `MGC_VPROCS`: how many vprocs (threads) to use.
    pub vprocs: Option<usize>,
    /// `MGC_PLACEMENT`: which node's pool promotion chunks are leased from.
    pub placement: Option<PlacementPolicy>,
    /// `MGC_MAX_ROUNDS`: the simulated scheduler's round cap.
    pub max_rounds: Option<u64>,
    /// `MGC_PAUSE_BUDGET_US`: the soft per-increment pause budget for
    /// global collections, in microseconds.
    pub pause_budget_us: Option<u64>,
    /// `MGC_SERVE_SECONDS`: how long a serving program runs on the threaded
    /// backend, in seconds.
    pub serve_seconds: Option<u64>,
    /// `MGC_SERVE_RPS`: a serving program's open-loop arrival rate, in
    /// requests per second.
    pub serve_rps: Option<u64>,
}

impl EnvOverrides {
    /// Captures the overrides from the process environment.
    pub fn capture() -> Self {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// Captures the overrides from an arbitrary lookup function. This is
    /// what [`EnvOverrides::capture`] calls with [`std::env::var`]; unit
    /// tests pass a closure instead so they never mutate process-global
    /// state.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        EnvOverrides {
            backend: parse_backend(lookup("MGC_BACKEND")),
            vprocs: parse_positive("MGC_VPROCS", lookup("MGC_VPROCS")),
            placement: parse_placement(lookup("MGC_PLACEMENT")),
            max_rounds: parse_positive("MGC_MAX_ROUNDS", lookup("MGC_MAX_ROUNDS")),
            pause_budget_us: parse_positive("MGC_PAUSE_BUDGET_US", lookup("MGC_PAUSE_BUDGET_US")),
            serve_seconds: parse_positive("MGC_SERVE_SECONDS", lookup("MGC_SERVE_SECONDS")),
            serve_rps: parse_positive("MGC_SERVE_RPS", lookup("MGC_SERVE_RPS")),
        }
    }
}

/// Parses an `MGC_PLACEMENT` value, warning (once per call) on garbage.
fn parse_placement(value: Option<String>) -> Option<PlacementPolicy> {
    let value = value?;
    match value.parse::<PlacementPolicy>() {
        Ok(placement) => Some(placement),
        Err(err) => {
            eprintln!(
                "warning: MGC_PLACEMENT=`{value}` is invalid ({err}); set \
                 MGC_PLACEMENT=node-local, interleave, first-touch, or adaptive — using \
                 the default"
            );
            None
        }
    }
}

/// Parses an `MGC_BACKEND` value, warning (once per call) on garbage.
fn parse_backend(value: Option<String>) -> Option<Backend> {
    let value = value?;
    match value.parse::<Backend>() {
        Ok(backend) => Some(backend),
        Err(err) => {
            eprintln!(
                "warning: MGC_BACKEND=`{value}` is invalid ({err}); set \
                 MGC_BACKEND=simulated or MGC_BACKEND=threaded — using the default"
            );
            None
        }
    }
}

/// Parses a positive integer knob, warning (naming the knob) on zero or
/// garbage.
fn parse_positive<T>(knob: &str, value: Option<String>) -> Option<T>
where
    T: std::str::FromStr + PartialOrd + From<u8>,
{
    let value = value?;
    match value.parse::<T>() {
        Ok(parsed) if parsed >= T::from(1u8) => Some(parsed),
        _ => {
            eprintln!("warning: {knob}=`{value}` is not a positive integer; using the default");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn unset_variables_yield_no_overrides() {
        let env = EnvOverrides::from_lookup(|_| None);
        assert_eq!(env, EnvOverrides::default());
        assert_eq!(env.backend, None);
        assert_eq!(env.vprocs, None);
        assert_eq!(env.placement, None);
        assert_eq!(env.max_rounds, None);
        assert_eq!(env.pause_budget_us, None);
        assert_eq!(env.serve_seconds, None);
        assert_eq!(env.serve_rps, None);
    }

    #[test]
    fn valid_values_parse() {
        let env = EnvOverrides::from_lookup(lookup(&[
            ("MGC_BACKEND", "threaded"),
            ("MGC_VPROCS", "4"),
            ("MGC_PLACEMENT", "interleave"),
            ("MGC_MAX_ROUNDS", "1000"),
            ("MGC_PAUSE_BUDGET_US", "250"),
            ("MGC_SERVE_SECONDS", "7"),
            ("MGC_SERVE_RPS", "2500"),
        ]));
        assert_eq!(env.backend, Some(Backend::Threaded));
        assert_eq!(env.vprocs, Some(4));
        assert_eq!(env.placement, Some(PlacementPolicy::Interleave));
        assert_eq!(env.max_rounds, Some(1000));
        assert_eq!(env.pause_budget_us, Some(250));
        assert_eq!(env.serve_seconds, Some(7));
        assert_eq!(env.serve_rps, Some(2500));
    }

    #[test]
    fn adaptive_placement_parses() {
        let env = EnvOverrides::from_lookup(lookup(&[("MGC_PLACEMENT", "adaptive")]));
        assert_eq!(env.placement, Some(PlacementPolicy::Adaptive));
    }

    #[test]
    fn backend_short_forms_parse() {
        let env = EnvOverrides::from_lookup(lookup(&[("MGC_BACKEND", "sim")]));
        assert_eq!(env.backend, Some(Backend::Simulated));
        let env = EnvOverrides::from_lookup(lookup(&[("MGC_BACKEND", "threads")]));
        assert_eq!(env.backend, Some(Backend::Threaded));
    }

    #[test]
    fn invalid_values_fall_back_to_none() {
        let env = EnvOverrides::from_lookup(lookup(&[
            ("MGC_BACKEND", "gpu"),
            ("MGC_VPROCS", "zero"),
            ("MGC_PLACEMENT", "everywhere"),
            ("MGC_MAX_ROUNDS", "-3"),
            ("MGC_PAUSE_BUDGET_US", "soon"),
            ("MGC_SERVE_SECONDS", "forever"),
            ("MGC_SERVE_RPS", "9.5"),
        ]));
        assert_eq!(env, EnvOverrides::default());
    }

    #[test]
    fn zero_counts_are_rejected() {
        let env = EnvOverrides::from_lookup(lookup(&[
            ("MGC_VPROCS", "0"),
            ("MGC_MAX_ROUNDS", "0"),
            ("MGC_PAUSE_BUDGET_US", "0"),
            ("MGC_SERVE_SECONDS", "0"),
            ("MGC_SERVE_RPS", "0"),
        ]));
        assert_eq!(env.vprocs, None);
        assert_eq!(env.max_rounds, None);
        assert_eq!(env.pause_budget_us, None);
        assert_eq!(env.serve_seconds, None);
        assert_eq!(env.serve_rps, None);
    }

    #[test]
    fn capture_reads_the_real_environment_without_panicking() {
        // Whatever the ambient environment holds, capture() must never
        // panic; the parsed values themselves are asserted by the
        // lookup-based tests above.
        let _ = EnvOverrides::capture();
    }
}
