//! Tasks, handles, and join cells: the implicitly-threaded parallelism layer.
//!
//! The Manticore runtime executes implicitly-threaded parallelism by pushing
//! units of work (continuations) onto a vproc-local work queue and stealing
//! from other vprocs when idle (§2.3 of the paper). This module provides the
//! equivalent machinery for the reproduction:
//!
//! * a [`Task`] is a unit of work with an explicit set of *heap roots* (the
//!   pointers it has captured) and raw input values;
//! * a [`Handle`] is a task-relative index into those roots — task bodies
//!   never hold raw heap addresses across allocation points, because any
//!   allocation can trigger a collection that moves objects;
//! * a [`JoinCell`] implements fork/join: when the last child of a fork
//!   completes, the join's continuation task becomes runnable, receiving the
//!   children's results as its inputs.
//!
//! Pointer results that cross vprocs are promoted to the global heap lazily,
//! mirroring the lazy-promotion scheme the paper uses for work stealing.

use mgc_heap::{Addr, Word};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A task-relative reference to a heap object: index `0` is the task's first
/// root, and so on. Handles stay valid across garbage collections because
/// the collector rewrites the underlying root slots in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Handle(pub(crate) usize);

impl Handle {
    /// The index of this handle in the owning task's root set.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a join cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinId(pub(crate) usize);

/// The result a task body returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskResult {
    /// No interesting result.
    Unit,
    /// A raw (non-pointer) value, e.g. a count or a packed float.
    Value(Word),
    /// A heap object, identified by one of the task's handles.
    Ptr(Handle),
}

/// The closure type executed by a task.
///
/// Bodies are `Send` because the real-threads backend moves tasks between
/// OS threads (work stealing hands a task from the victim's deque to the
/// thief's thread).
pub type TaskBody = Box<dyn FnOnce(&mut crate::ctx::TaskCtx<'_>) -> TaskResult + Send>;

/// Specification of a task to spawn: a name for diagnostics, the heap
/// objects and raw values it takes as input, and its body.
pub struct TaskSpec {
    /// Short name used in traces and statistics.
    pub name: &'static str,
    /// Heap-object inputs (resolved from the spawner's handles at spawn
    /// time). They become the new task's first roots, in order.
    pub ptr_inputs: Vec<Addr>,
    /// Raw (non-pointer) inputs.
    pub value_inputs: Vec<Word>,
    /// The body to run.
    pub body: TaskBody,
}

impl fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("ptr_inputs", &self.ptr_inputs.len())
            .field("value_inputs", &self.value_inputs.len())
            .finish()
    }
}

impl TaskSpec {
    /// Creates a task specification with no inputs.
    pub fn new(
        name: &'static str,
        body: impl FnOnce(&mut crate::ctx::TaskCtx<'_>) -> TaskResult + Send + 'static,
    ) -> Self {
        TaskSpec {
            name,
            ptr_inputs: Vec::new(),
            value_inputs: Vec::new(),
            body: Box::new(body),
        }
    }

    /// Adds a raw input value.
    pub fn with_value(mut self, value: Word) -> Self {
        self.value_inputs.push(value);
        self
    }

    /// Adds several raw input values.
    pub fn with_values(mut self, values: impl IntoIterator<Item = Word>) -> Self {
        self.value_inputs.extend(values);
        self
    }
}

/// Where a task delivers its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// Nobody is waiting for the result.
    Discard,
    /// Slot `slot` of join cell `join`.
    Join { join: JoinId, slot: usize },
}

/// A runnable unit of work sitting in a vproc's deque.
pub struct Task {
    pub(crate) name: &'static str,
    /// The task's heap roots. The collector rewrites these in place.
    pub(crate) roots: Vec<Addr>,
    /// Raw input values.
    pub(crate) values: Vec<Word>,
    pub(crate) body: TaskBody,
    pub(crate) delivery: Delivery,
    /// The vproc that created the task (used to attribute lazy-promotion
    /// costs when the task is stolen).
    pub(crate) origin_vproc: usize,
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name)
            .field("roots", &self.roots.len())
            .field("values", &self.values.len())
            .field("delivery", &self.delivery)
            .field("origin_vproc", &self.origin_vproc)
            .finish()
    }
}

impl Task {
    pub(crate) fn from_spec(spec: TaskSpec, delivery: Delivery, origin_vproc: usize) -> Self {
        Task {
            name: spec.name,
            roots: spec.ptr_inputs,
            values: spec.value_inputs,
            body: spec.body,
            delivery,
            origin_vproc,
        }
    }

    /// The task's diagnostic name.
    #[allow(dead_code)] // used by scheduler tests and debug tracing
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A pending result slot of a join cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct JoinSlot {
    pub(crate) word: Word,
    pub(crate) is_ptr: bool,
    pub(crate) filled: bool,
}

/// A fork/join synchronisation cell.
pub(crate) struct JoinCell {
    pub(crate) remaining: usize,
    pub(crate) slots: Vec<JoinSlot>,
    pub(crate) continuation: Option<Task>,
}

impl fmt::Debug for JoinCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinCell")
            .field("remaining", &self.remaining)
            .field("slots", &self.slots.len())
            .field("has_continuation", &self.continuation.is_some())
            .finish()
    }
}

impl JoinCell {
    pub(crate) fn new(children: usize, continuation: Task) -> Self {
        JoinCell {
            remaining: children,
            slots: vec![JoinSlot::default(); children],
            continuation: Some(continuation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_index_round_trip() {
        assert_eq!(Handle(3).index(), 3);
    }

    #[test]
    fn task_spec_builders() {
        let spec = TaskSpec::new("t", |_| TaskResult::Unit)
            .with_value(7)
            .with_values([8, 9]);
        assert_eq!(spec.value_inputs, vec![7, 8, 9]);
        assert_eq!(spec.name, "t");
        assert!(format!("{spec:?}").contains("TaskSpec"));
    }

    #[test]
    fn task_from_spec_carries_inputs() {
        let spec = TaskSpec::new("child", |_| TaskResult::Unit).with_value(1);
        let task = Task::from_spec(spec, Delivery::Discard, 2);
        assert_eq!(task.origin_vproc, 2);
        assert_eq!(task.values, vec![1]);
        assert_eq!(task.name(), "child");
        assert!(format!("{task:?}").contains("child"));
    }

    #[test]
    fn join_cell_starts_unfilled() {
        let cont = Task::from_spec(
            TaskSpec::new("k", |_| TaskResult::Unit),
            Delivery::Discard,
            0,
        );
        let cell = JoinCell::new(3, cont);
        assert_eq!(cell.remaining, 3);
        assert_eq!(cell.slots.len(), 3);
        assert!(cell.slots.iter().all(|s| !s.filled));
        assert!(format!("{cell:?}").contains("JoinCell"));
    }
}
