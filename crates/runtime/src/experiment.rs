//! The one front door for every run: a validated, typed experiment
//! configuration around any [`Program`].
//!
//! The paper's evaluation (§4) is a grid of *scenarios* — workload × vproc
//! count × allocation policy × heap geometry × backend. [`Experiment`] makes
//! that grid the API: pick a program, chain the dimensions you care about,
//! and [`Experiment::run`] validates the combination (into a typed
//! [`ConfigError`] instead of a mid-run panic), applies the `MGC_*`
//! environment overrides, builds the backend, and returns a [`RunRecord`] —
//! the single result format shared by the sweep JSON, the CI perf baseline,
//! and the cross-backend equivalence suite.
//!
//! # Environment overrides
//!
//! This is the **one place** the `MGC_*` variables are applied (they are
//! *parsed* in [`crate::env`]): `MGC_BACKEND` supplies the backend,
//! `MGC_VPROCS` the vproc count, `MGC_PLACEMENT` the promotion-chunk
//! placement, and `MGC_PAUSE_BUDGET_US` the global-collection pause budget
//! **when the builder left them unset** — an explicit
//! [`Experiment::backend`], [`Experiment::vprocs`],
//! [`Experiment::placement`], or [`Experiment::gc_pause_budget`] call always
//! wins, so programmatic sweeps are immune to ambient configuration.
//! (`MGC_MAX_ROUNDS` is read by the simulated [`Machine`] itself when it is
//! built, since it also applies to machines constructed without an
//! experiment.)
//!
//! # Example
//!
//! ```
//! use mgc_runtime::{Backend, Experiment, Program, Executor, TaskResult, TaskSpec};
//! use mgc_heap::i64_to_word;
//!
//! struct Double(i64);
//!
//! impl Program for Double {
//!     fn name(&self) -> &str {
//!         "double"
//!     }
//!     fn spawn(&self, executor: &mut dyn Executor) {
//!         let n = self.0;
//!         executor.spawn_root(TaskSpec::new("double", move |_ctx| {
//!             TaskResult::Value(i64_to_word(n * 2))
//!         }));
//!     }
//! }
//!
//! let record = Experiment::new(Double(21))
//!     .vprocs(2)
//!     .backend(Backend::Simulated)
//!     .run()
//!     .expect("two vprocs fit the test topology");
//! assert_eq!(record.result.map(|(word, _)| word as i64), Some(42));
//! assert!(record.simulated_ns().unwrap() > 0.0);
//! ```

use crate::channel::ChannelStats;
use crate::env::EnvOverrides;
use crate::executor::{Backend, Executor};
use crate::machine::{Machine, MachineConfig, MutatorCostModel};
use crate::program::Program;
use crate::stats::RunReport;
use crate::threaded::ThreadedMachine;
use mgc_core::GcConfig;
use mgc_heap::{HeapConfig, Word};
use mgc_numa::{AllocPolicy, PlacementPolicy, Topology};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The scheduling quantum experiments default to, in virtual nanoseconds.
///
/// Finer than the raw [`MachineConfig::new`] default so that scaled-down
/// benchmark inputs still spread across many vprocs instead of completing
/// inside a single vproc's first quantum.
pub const DEFAULT_QUANTUM_NS: f64 = 25_000.0;

/// Why an experiment configuration was rejected by validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The resolved vproc count was zero.
    ZeroVprocs,
    /// More vprocs were requested than the topology has cores.
    VprocsExceedTopology {
        /// Requested vproc count.
        vprocs: usize,
        /// Cores the topology actually has.
        cores: usize,
    },
    /// The heap geometry is too small to hold any real program (see
    /// [`mgc_heap::HeapGeometry::validate`]).
    DegenerateHeap {
        /// Which [`HeapConfig`] field is degenerate.
        field: &'static str,
        /// The rejected value.
        bytes: usize,
        /// The smallest accepted value.
        min: usize,
    },
    /// A heap-geometry field that feeds address arithmetic (the per-node
    /// span shift) is not a power of two.
    NonPowerOfTwoGeometry {
        /// Which [`HeapConfig`] field is crooked.
        field: &'static str,
        /// The rejected value.
        bytes: u64,
    },
    /// A heap-geometry field exceeds its hard ceiling (the per-node span
    /// must keep `GLOBAL_BASE + node * span + offset` inside a `u64`).
    ExcessiveHeapGeometry {
        /// Which [`HeapConfig`] field overflows.
        field: &'static str,
        /// The rejected value.
        bytes: u64,
        /// The largest accepted value.
        max: u64,
    },
    /// The scheduling quantum is zero, negative, or not finite.
    NonPositiveQuantum {
        /// The rejected value.
        quantum_ns: f64,
    },
    /// The global-collection pause budget is zero (a zero budget would mean
    /// "never do any collection work", which can only deadlock; unbounded
    /// pauses are spelled by not setting a budget at all).
    NonPositivePauseBudget {
        /// The rejected value, in microseconds.
        budget_us: u64,
    },
    /// A serving program's run duration resolved to zero seconds (nothing
    /// would be served; `MGC_SERVE_SECONDS` and the builder both demand a
    /// positive duration).
    ZeroServeSeconds,
    /// A serving program's open-loop arrival rate resolved to zero requests
    /// per second (the generator would never emit a request).
    ZeroServeRps,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroVprocs => write!(f, "at least one vproc is required"),
            ConfigError::VprocsExceedTopology { vprocs, cores } => write!(
                f,
                "{vprocs} vprocs requested but the topology has only {cores} cores \
                 (vprocs are pinned one per core)"
            ),
            ConfigError::DegenerateHeap { field, bytes, min } => write!(
                f,
                "degenerate heap geometry: {field} = {bytes} bytes is below the minimum of {min}"
            ),
            ConfigError::NonPowerOfTwoGeometry { field, bytes } => write!(
                f,
                "degenerate heap geometry: {field} = {bytes} bytes must be a power of two"
            ),
            ConfigError::ExcessiveHeapGeometry { field, bytes, max } => write!(
                f,
                "degenerate heap geometry: {field} = {bytes} bytes exceeds the maximum of {max}"
            ),
            ConfigError::NonPositiveQuantum { quantum_ns } => write!(
                f,
                "the scheduling quantum must be positive and finite, got {quantum_ns} ns"
            ),
            ConfigError::NonPositivePauseBudget { budget_us } => write!(
                f,
                "the GC pause budget must be positive, got {budget_us} us \
                 (leave it unset for unbounded pauses)"
            ),
            ConfigError::ZeroServeSeconds => write!(
                f,
                "a serving program's duration must be a positive number of seconds"
            ),
            ConfigError::ZeroServeRps => write!(
                f,
                "a serving program's arrival rate must be a positive number of requests \
                 per second"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<mgc_heap::GeometryViolation> for ConfigError {
    fn from(violation: mgc_heap::GeometryViolation) -> Self {
        use mgc_heap::GeometryViolation;
        match violation {
            GeometryViolation::BelowMinimum { field, bytes, min } => ConfigError::DegenerateHeap {
                field,
                bytes: bytes as usize,
                min: min as usize,
            },
            GeometryViolation::NotPowerOfTwo { field, bytes } => {
                ConfigError::NonPowerOfTwoGeometry { field, bytes }
            }
            GeometryViolation::AboveMaximum { field, bytes, max } => {
                ConfigError::ExcessiveHeapGeometry { field, bytes, max }
            }
        }
    }
}

/// A validated experiment configuration: the backend plus the fully resolved
/// [`MachineConfig`]. Produced by [`Experiment::validate`]; useful on its
/// own when a test needs direct access to the built machine (e.g. to verify
/// the heap after the run).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The backend the experiment will run on.
    pub backend: Backend,
    /// The resolved machine configuration (topology, vprocs, heap geometry,
    /// collector settings, cost model, quantum).
    pub machine: MachineConfig,
}

impl ExperimentConfig {
    /// Builds an executor of the configured backend.
    pub fn build_executor(&self) -> Box<dyn Executor> {
        match self.backend {
            Backend::Simulated => Box::new(Machine::new(self.machine.clone())),
            Backend::Threaded => Box::new(ThreadedMachine::new(self.machine.clone())),
        }
    }
}

/// Builder for one run of a [`Program`]: scenario dimensions in, validated
/// [`RunRecord`] out. Unset dimensions fall back to the `MGC_*` environment
/// overrides (backend, vprocs) and then to the documented defaults — see
/// [`Experiment::new`].
pub struct Experiment<P: Program> {
    program: P,
    topology: Option<Topology>,
    vprocs: Option<usize>,
    policy: Option<AllocPolicy>,
    placement: Option<PlacementPolicy>,
    backend: Option<Backend>,
    heap: Option<HeapConfig>,
    gc: Option<GcConfig>,
    pause_budget_us: Option<u64>,
    mutator_costs: Option<MutatorCostModel>,
    quantum_ns: Option<f64>,
    env: Option<EnvOverrides>,
    verify_checksum: bool,
}

impl<P: Program> std::fmt::Debug for Experiment<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("program", &self.program.name())
            .field("topology", &self.topology.as_ref().map(Topology::name))
            .field("vprocs", &self.vprocs)
            .field("policy", &self.policy)
            .field("placement", &self.placement)
            .field("backend", &self.backend)
            .field("quantum_ns", &self.quantum_ns)
            .finish_non_exhaustive()
    }
}

impl<P: Program> Experiment<P> {
    /// Starts an experiment around `program` with every dimension at its
    /// default: the two-node test topology, one vproc, local allocation, the
    /// default heap/collector configuration, [`DEFAULT_QUANTUM_NS`], and the
    /// simulated backend — each of which the `MGC_*` overrides or the
    /// builder methods below may change.
    pub fn new(program: P) -> Self {
        Experiment {
            program,
            topology: None,
            vprocs: None,
            policy: None,
            placement: None,
            backend: None,
            heap: None,
            gc: None,
            pause_budget_us: None,
            mutator_costs: None,
            quantum_ns: None,
            env: None,
            verify_checksum: true,
        }
    }

    /// Sets the machine topology (e.g. [`Topology::amd_magny_cours_48`]).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the number of vprocs. Overrides `MGC_VPROCS`.
    pub fn vprocs(mut self, vprocs: usize) -> Self {
        self.vprocs = Some(vprocs);
        self
    }

    /// Sets the physical page/chunk placement policy (§4.3 of the paper).
    /// Takes precedence over the policy inside a [`Experiment::heap`]
    /// configuration.
    pub fn policy(mut self, policy: AllocPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the promotion-chunk NUMA placement policy: which node's pool
    /// the chunks receiving promoted objects are leased from (`NodeLocal`
    /// targets the consumer — the thief's node at a steal handoff;
    /// `Interleave` round-robins; `FirstTouch` targets the promoting
    /// worker). Overrides `MGC_PLACEMENT`.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Sets the execution backend. Overrides `MGC_BACKEND`.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the heap geometry.
    pub fn heap(mut self, heap: HeapConfig) -> Self {
        self.heap = Some(heap);
        self
    }

    /// Sets the collector configuration.
    pub fn gc(mut self, gc: GcConfig) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Caps each global-collection pause at a soft budget of `budget_us`
    /// microseconds: the collection runs as a sequence of bounded increments
    /// instead of one stop-the-world phase. Takes precedence over the budget
    /// inside an [`Experiment::gc`] configuration and over
    /// `MGC_PAUSE_BUDGET_US`. A zero budget is rejected by
    /// [`Experiment::validate`] with [`ConfigError::NonPositivePauseBudget`].
    pub fn gc_pause_budget(mut self, budget_us: u64) -> Self {
        self.pause_budget_us = Some(budget_us);
        self
    }

    /// Sets the mutator cache-cost model (simulated backend).
    pub fn mutator_costs(mut self, costs: MutatorCostModel) -> Self {
        self.mutator_costs = Some(costs);
        self
    }

    /// Sets the scheduling quantum in virtual nanoseconds.
    pub fn quantum_ns(mut self, quantum_ns: f64) -> Self {
        self.quantum_ns = Some(quantum_ns);
        self
    }

    /// Supplies the environment overrides explicitly instead of capturing
    /// them from the process environment — tests use this to pin behaviour
    /// without mutating process-global state.
    pub fn env_overrides(mut self, env: EnvOverrides) -> Self {
        self.env = Some(env);
        self
    }

    /// Whether to check the result against [`Program::expected_checksum`]
    /// after the run (the default). Computing the expected value usually
    /// means running a *sequential* reference of the whole program, so hot
    /// paths that only read timings — the figure pipeline, the criterion
    /// benches — pass `false` to skip it; `checksum_ok` is then `None`.
    pub fn verify_checksum(mut self, verify: bool) -> Self {
        self.verify_checksum = verify;
        self
    }

    /// Resolves defaults and environment overrides, then validates the
    /// configuration into a typed error instead of a mid-run panic.
    pub fn validate(&self) -> Result<ExperimentConfig, ConfigError> {
        let env = self.env.unwrap_or_else(EnvOverrides::capture);
        let backend = self.backend.or(env.backend).unwrap_or(Backend::Simulated);
        let vprocs = self.vprocs.or(env.vprocs).unwrap_or(1);
        let placement = self.placement.or(env.placement).unwrap_or_default();
        let topology = self
            .topology
            .clone()
            .unwrap_or_else(Topology::dual_node_test);
        let mut heap = self.heap.unwrap_or_default();
        if let Some(policy) = self.policy {
            heap.policy = policy;
        }
        let quantum_ns = self.quantum_ns.unwrap_or(DEFAULT_QUANTUM_NS);

        if vprocs == 0 {
            return Err(ConfigError::ZeroVprocs);
        }
        let cores = topology.num_cores();
        if vprocs > cores {
            return Err(ConfigError::VprocsExceedTopology { vprocs, cores });
        }
        heap.geometry().validate().map_err(ConfigError::from)?;
        if !quantum_ns.is_finite() || quantum_ns <= 0.0 {
            return Err(ConfigError::NonPositiveQuantum { quantum_ns });
        }

        let mut gc = self.gc.unwrap_or_default();
        if let Some(budget_us) = self.pause_budget_us {
            gc.pause_budget_us = Some(budget_us);
        }
        if gc.pause_budget_us.is_none() {
            gc.pause_budget_us = env.pause_budget_us;
        }
        if let Some(0) = gc.pause_budget_us {
            return Err(ConfigError::NonPositivePauseBudget { budget_us: 0 });
        }

        Ok(ExperimentConfig {
            backend,
            machine: MachineConfig {
                topology,
                num_vprocs: vprocs,
                heap,
                placement,
                gc,
                mutator_costs: self.mutator_costs.unwrap_or_default(),
                quantum_ns,
            },
        })
    }

    /// Validates, builds the backend, spawns the program, runs it to
    /// completion, and packages everything into a [`RunRecord`].
    pub fn run(self) -> Result<RunRecord, ConfigError> {
        let config = self.validate()?;
        let mut executor = config.build_executor();
        self.program.spawn(&mut *executor);
        let report = executor.run();
        let result = executor.take_result();
        let channels = executor.channel_stats();
        // A pointer result is a heap address, not the checksum value itself
        // — comparing it against an expected checksum would be meaningless,
        // so pointer results stay unverified (`None`).
        let checksum_ok = if self.verify_checksum {
            match (self.program.expected_checksum(), result) {
                (Some(expected), Some((word, false))) => Some(expected.matches(word)),
                (Some(_), Some((_, true))) => None,
                (Some(_), None) => Some(false),
                (None, _) => None,
            }
        } else {
            None
        };
        Ok(RunRecord {
            program: self.program.name().to_string(),
            params: self.program.params_json(),
            backend: config.backend,
            config: config.machine,
            result,
            checksum_ok,
            channels,
            report,
        })
    }
}

/// Version of the flat JSON object emitted by [`RunRecord::to_json`],
/// carried in every record as its leading `schema_version` field. Records
/// that predate the field (the flat baselines written before the results
/// store existed) are implicitly version 1; the store's ingest accepts
/// exactly the versions it knows how to read and rejects anything else with
/// a typed error naming the field. Bump this when a field is added, removed,
/// or changes meaning.
pub const RUN_RECORD_SCHEMA_VERSION: u64 = 2;

/// The complete, self-describing result of one experiment run: the resolved
/// configuration, the program identity, the root result, and the full
/// [`RunReport`]. This is the one output format shared by the sweep JSON,
/// `results/BENCH_threaded.json`, the equivalence suite, and the CI
/// bench-baseline job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// The program's name ([`Program::name`]).
    pub program: String,
    /// The program's parameters as a JSON object ([`Program::params_json`]).
    pub params: String,
    /// The backend the run executed on.
    pub backend: Backend,
    /// The fully resolved machine configuration the run used.
    pub config: MachineConfig,
    /// The root task's result: the raw word and whether it is a heap
    /// pointer.
    pub result: Option<(Word, bool)>,
    /// Whether the result matched the program's expected checksum (`None`
    /// when the program declares no expectation).
    pub checksum_ok: Option<bool>,
    /// Channel and proxy statistics of the run.
    pub channels: ChannelStats,
    /// The full run report (timings, per-vproc stats, GC stats, traffic).
    pub report: RunReport,
}

impl RunRecord {
    /// Measured wall-clock nanoseconds (threaded backend only).
    pub fn wall_clock_ns(&self) -> Option<f64> {
        self.report.wall_clock_ns
    }

    /// Modelled virtual nanoseconds (simulated backend only).
    pub fn simulated_ns(&self) -> Option<f64> {
        match self.backend {
            Backend::Simulated => Some(self.report.elapsed_ns),
            Backend::Threaded => None,
        }
    }

    /// Serialises the record as one JSON object (hand-rolled: the vendored
    /// `serde` shim does not serialise). This is the schema the CI
    /// bench-baseline job asserts on; every key is declared exactly once in
    /// the `JsonFields` calls below, so the emitted schema cannot drift
    /// from the field list.
    pub fn to_json(&self) -> String {
        let pauses = self.report.pause_stats();
        let mut json = JsonFields::new();
        json.raw("schema_version", RUN_RECORD_SCHEMA_VERSION);
        json.string("program", &self.program);
        json.raw("params", &self.params);
        json.string("backend", self.backend);
        json.raw("vprocs", self.config.num_vprocs);
        json.string("topology", self.config.topology.name());
        json.string("policy", self.config.heap.policy);
        json.string("placement", self.config.placement);
        json.raw("chunk_size_bytes", self.config.heap.chunk_size_bytes);
        json.raw("local_heap_bytes", self.config.heap.local_heap_bytes);
        json.ns("quantum_ns", self.config.quantum_ns);
        json.raw("eager_publication", self.config.gc.eager_publication);
        json.opt_ns("wall_clock_ns", self.wall_clock_ns());
        json.opt_ns("simulated_ns", self.simulated_ns());
        match self.result {
            Some((word, _)) => json.raw("checksum", format_args!("\"{word:#x}\"")),
            None => json.raw("checksum", "null"),
        }
        match self.checksum_ok {
            Some(ok) => json.raw("checksum_ok", ok),
            None => json.raw("checksum_ok", "null"),
        }
        json.raw("tasks", self.report.total_tasks());
        json.raw("allocated_objects", self.report.allocated_objects);
        json.raw("minor_collections", self.report.gc.minor_collections);
        json.raw("major_collections", self.report.gc.major_collections);
        json.raw("global_collections", self.report.gc.global_collections);
        json.raw("promotions", self.report.gc.promotions);
        json.raw("steals", self.report.total_steals());
        json.raw("steals_same_node", self.report.steals_same_node());
        json.raw("steals_cross_node", self.report.steals_cross_node());
        json.raw("promoted_bytes", self.report.total_promoted_bytes());
        json.raw("promoted_bytes_local", self.report.promoted_bytes_local());
        json.raw("promoted_bytes_remote", self.report.promoted_bytes_remote());
        json.raw("promotions_at_steal", self.report.promotions_at_steal());
        json.raw("promotions_at_publish", self.report.promotions_at_publish());
        json.raw("placement_switches", self.report.placement_switches());
        json.raw(
            "placement_decisions",
            placement_decisions_json(&self.report.placement_decisions),
        );
        json.raw("node_bindings", node_bindings_json(&self.report.per_vproc));
        json.raw("channel_sends", self.channels.sends);
        json.raw("channel_receives", self.channels.receives);
        match self.config.gc.pause_budget_us {
            Some(us) => json.raw("pause_budget_us", us),
            None => json.raw("pause_budget_us", "null"),
        }
        json.raw("pause_count", pauses.count);
        json.ns("pause_max_ns", pauses.max_ns);
        json.ns("pause_p50_ns", pauses.percentile(50.0));
        json.ns("pause_p99_ns", pauses.percentile(99.0));
        json.ns(
            "global_pause_max_ns",
            self.report.global_pause_stats().max_ns,
        );
        let latency = self.report.latency_stats();
        json.raw("requests_served", self.report.requests_served());
        json.raw(
            "throughput_rps",
            format_args!("{:.3}", self.report.throughput_rps()),
        );
        json.ns("latency_p50_ns", latency.percentile(50.0));
        json.ns("latency_p99_ns", latency.percentile(99.0));
        json.ns("latency_p999_ns", latency.percentile(99.9));
        json.ns("latency_max_ns", latency.max_ns);
        json.finish()
    }
}

/// Builds the flat JSON object behind [`RunRecord::to_json`]: callers add
/// `"key": value` pairs one at a time and the separators are handled here,
/// so a field can neither lose its key nor desync from its neighbours.
struct JsonFields {
    out: String,
}

impl JsonFields {
    fn new() -> Self {
        JsonFields {
            out: String::from("{"),
        }
    }

    /// Appends `"key": value` with `value` already valid JSON (numbers,
    /// booleans, `null`, or pre-serialised objects).
    fn raw(&mut self, key: &str, value: impl std::fmt::Display) {
        if self.out.len() > 1 {
            self.out.push_str(", ");
        }
        let _ = write!(self.out, "\"{key}\": {value}");
    }

    /// Appends a JSON string field, escaping the rendered value.
    fn string(&mut self, key: &str, value: impl std::fmt::Display) {
        self.raw(key, format_args!("\"{}\"", escape_json(&value.to_string())));
    }

    /// Appends a nanosecond-scale quantity rounded to whole units.
    fn ns(&mut self, key: &str, value: f64) {
        self.raw(key, format_args!("{value:.0}"));
    }

    /// Appends an optional nanosecond-scale quantity (`null` when absent).
    fn opt_ns(&mut self, key: &str, value: Option<f64>) {
        match value {
            Some(v) => self.ns(key, v),
            None => self.raw(key, "null"),
        }
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Serialises the adaptive decision trail as a JSON array (empty under the
/// static placement policies).
fn placement_decisions_json(decisions: &[crate::stats::VprocPlacementDecision]) -> String {
    let mut out = String::from("[");
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"vproc\": {}, \"at_promotion\": {}, \"from\": \"{}\", \"to\": \"{}\", \
             \"remote_permille\": {}, \"reason\": \"{}\"}}",
            d.vproc,
            d.decision.at_promotion,
            d.decision.from,
            d.decision.to,
            d.decision.remote_permille,
            d.decision.reason.label(),
        );
    }
    out.push(']');
    out
}

/// Serialises the per-vproc node-binding outcomes (`"pinned"` where the
/// worker thread achieved real OS affinity, `"tagged"` otherwise).
fn node_bindings_json(per_vproc: &[crate::stats::VprocRunStats]) -> String {
    let mut out = String::from("[");
    for (i, v) in per_vproc.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(if v.node_binding_pinned {
            "\"pinned\""
        } else {
            "\"tagged\""
        });
    }
    out.push(']');
    out
}

/// Serialises a slice of records as a JSON array, one record per line (the
/// format of `results/BENCH_threaded.json`).
pub fn run_records_json(records: &[RunRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        let _ = write!(out, "  {}", record.to_json());
        let _ = writeln!(out, "{}", if i + 1 < records.len() { "," } else { "" });
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for inclusion inside JSON double quotes.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Checksum;
    use crate::task::{TaskResult, TaskSpec};
    use mgc_heap::i64_to_word;

    /// A minimal program: one root task returning a constant.
    struct Constant(i64);

    impl Program for Constant {
        fn name(&self) -> &str {
            "constant"
        }

        fn spawn(&self, executor: &mut dyn Executor) {
            let value = self.0;
            executor.spawn_root(TaskSpec::new("constant", move |ctx| {
                ctx.work(10);
                TaskResult::Value(i64_to_word(value))
            }));
        }

        fn expected_checksum(&self) -> Option<Checksum> {
            Some(Checksum::I64(self.0))
        }

        fn params_json(&self) -> String {
            format!("{{\"value\": {}}}", self.0)
        }
    }

    fn pinned(program: Constant) -> Experiment<Constant> {
        // Pin the environment so ambient MGC_* variables cannot skew the
        // validation tests.
        Experiment::new(program).env_overrides(EnvOverrides::default())
    }

    #[test]
    fn zero_vprocs_is_a_typed_error() {
        let err = pinned(Constant(1)).vprocs(0).validate().unwrap_err();
        assert_eq!(err, ConfigError::ZeroVprocs);
        assert!(err.to_string().contains("at least one vproc"));
    }

    #[test]
    fn vprocs_beyond_topology_capacity_are_rejected() {
        // The dual-node test topology has 4 cores.
        let err = pinned(Constant(1)).vprocs(5).validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::VprocsExceedTopology {
                vprocs: 5,
                cores: 4
            }
        );
        assert!(err.to_string().contains("only 4 cores"));
    }

    #[test]
    fn degenerate_chunk_size_is_rejected() {
        let heap = HeapConfig {
            chunk_size_bytes: 64,
            ..HeapConfig::small_for_tests()
        };
        let err = pinned(Constant(1)).heap(heap).validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::DegenerateHeap {
                field: "chunk_size_bytes",
                bytes: 64,
                min: 1024
            }
        );
    }

    #[test]
    fn degenerate_local_heap_is_rejected() {
        let heap = HeapConfig {
            local_heap_bytes: 512,
            ..HeapConfig::small_for_tests()
        };
        let err = pinned(Constant(1)).heap(heap).validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::DegenerateHeap {
                field: "local_heap_bytes",
                bytes: 512,
                min: 4096
            }
        );
        assert!(err.to_string().contains("degenerate heap geometry"));
    }

    #[test]
    fn crooked_node_span_is_rejected() {
        // Not a power of two: the addr→node shift would be meaningless.
        let heap = HeapConfig {
            node_span_bytes: (1 << 30) + 512,
            ..HeapConfig::small_for_tests()
        };
        let err = pinned(Constant(1)).heap(heap).validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::NonPowerOfTwoGeometry {
                field: "node_span_bytes",
                bytes: (1 << 30) + 512,
            }
        );
        assert!(err.to_string().contains("power of two"));

        // Above the ceiling: band arithmetic would overflow u64.
        let heap = HeapConfig {
            node_span_bytes: 1 << 50,
            ..HeapConfig::small_for_tests()
        };
        let err = pinned(Constant(1)).heap(heap).validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::ExcessiveHeapGeometry {
                field: "node_span_bytes",
                bytes: 1 << 50,
                max: 1 << mgc_heap::MAX_NODE_SPAN_SHIFT,
            }
        );
        assert!(err.to_string().contains("exceeds the maximum"));

        // Below one chunk: the band could never map anything.
        let heap = HeapConfig {
            node_span_bytes: 1024,
            ..HeapConfig::small_for_tests()
        };
        let err = pinned(Constant(1)).heap(heap).validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::DegenerateHeap {
                field: "node_span_bytes",
                bytes: 1024,
                min: 4096,
            }
        );
    }

    #[test]
    fn non_positive_quantum_is_rejected() {
        let err = pinned(Constant(1)).quantum_ns(0.0).validate().unwrap_err();
        assert_eq!(err, ConfigError::NonPositiveQuantum { quantum_ns: 0.0 });
        let err = pinned(Constant(1))
            .quantum_ns(f64::NAN)
            .validate()
            .unwrap_err();
        assert!(matches!(err, ConfigError::NonPositiveQuantum { .. }));
    }

    #[test]
    fn defaults_resolve_to_the_documented_values() {
        let config = pinned(Constant(1)).validate().expect("defaults are valid");
        assert_eq!(config.backend, Backend::Simulated);
        assert_eq!(config.machine.num_vprocs, 1);
        assert_eq!(config.machine.topology.name(), "test-dual-node");
        assert_eq!(config.machine.heap.policy, AllocPolicy::Local);
        assert_eq!(config.machine.placement, PlacementPolicy::NodeLocal);
        assert_eq!(config.machine.quantum_ns, DEFAULT_QUANTUM_NS);
    }

    #[test]
    fn env_overrides_fill_unset_dimensions_only() {
        let env = EnvOverrides {
            backend: Some(Backend::Threaded),
            vprocs: Some(3),
            placement: Some(PlacementPolicy::Interleave),
            max_rounds: None,
            pause_budget_us: Some(500),
            serve_seconds: None,
            serve_rps: None,
        };
        let config = Experiment::new(Constant(1))
            .env_overrides(env)
            .validate()
            .expect("env values are valid");
        assert_eq!(config.backend, Backend::Threaded);
        assert_eq!(config.machine.num_vprocs, 3);
        assert_eq!(config.machine.placement, PlacementPolicy::Interleave);
        assert_eq!(config.machine.gc.pause_budget_us, Some(500));

        // Explicit builder calls always beat the environment.
        let config = Experiment::new(Constant(1))
            .env_overrides(env)
            .backend(Backend::Simulated)
            .vprocs(2)
            .placement(PlacementPolicy::FirstTouch)
            .gc_pause_budget(125)
            .validate()
            .expect("explicit values are valid");
        assert_eq!(config.backend, Backend::Simulated);
        assert_eq!(config.machine.num_vprocs, 2);
        assert_eq!(config.machine.placement, PlacementPolicy::FirstTouch);
        assert_eq!(config.machine.gc.pause_budget_us, Some(125));
    }

    #[test]
    fn pause_budget_resolution_and_validation() {
        // Unset everywhere: the resolved config stays unbounded.
        let config = pinned(Constant(1)).validate().unwrap();
        assert_eq!(config.machine.gc.pause_budget_us, None);

        // The builder knob beats a budget carried inside a GcConfig.
        let gc = GcConfig {
            pause_budget_us: Some(1_000),
            ..GcConfig::small_for_tests()
        };
        let config = pinned(Constant(1))
            .gc(gc)
            .gc_pause_budget(250)
            .validate()
            .unwrap();
        assert_eq!(config.machine.gc.pause_budget_us, Some(250));

        // Without the builder knob the GcConfig budget survives.
        let config = pinned(Constant(1)).gc(gc).validate().unwrap();
        assert_eq!(config.machine.gc.pause_budget_us, Some(1_000));

        // A zero budget is a typed error, not a silent hang.
        let err = pinned(Constant(1))
            .gc_pause_budget(0)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::NonPositivePauseBudget { budget_us: 0 });
        assert!(err.to_string().contains("pause budget"));
    }

    #[test]
    fn policy_setter_overrides_heap_config_policy() {
        let heap = HeapConfig {
            policy: AllocPolicy::Interleaved,
            ..HeapConfig::default()
        };
        let config = pinned(Constant(1))
            .heap(heap)
            .policy(AllocPolicy::SocketZero)
            .validate()
            .unwrap();
        assert_eq!(config.machine.heap.policy, AllocPolicy::SocketZero);

        // Without the explicit policy call the heap's own policy survives.
        let config = pinned(Constant(1)).heap(heap).validate().unwrap();
        assert_eq!(config.machine.heap.policy, AllocPolicy::Interleaved);
    }

    #[test]
    fn run_produces_a_checked_record() {
        let record = pinned(Constant(17))
            .vprocs(2)
            .run()
            .expect("the configuration is valid");
        assert_eq!(record.program, "constant");
        assert_eq!(record.result, Some((i64_to_word(17), false)));
        assert_eq!(record.checksum_ok, Some(true));
        assert_eq!(record.backend, Backend::Simulated);
        assert!(record.simulated_ns().unwrap() > 0.0);
        assert_eq!(record.wall_clock_ns(), None);
        assert_eq!(record.report.total_tasks(), 1);
    }

    #[test]
    fn verify_checksum_false_skips_the_reference() {
        let record = pinned(Constant(17))
            .verify_checksum(false)
            .run()
            .expect("the configuration is valid");
        assert_eq!(record.result, Some((i64_to_word(17), false)));
        assert_eq!(record.checksum_ok, None);
    }

    #[test]
    fn pointer_results_are_not_compared_against_checksums() {
        /// Returns a heap pointer as its root result while declaring a
        /// value-level expectation: the pointer's address must not be
        /// compared against it.
        struct PointerResult;

        impl Program for PointerResult {
            fn name(&self) -> &str {
                "pointer-result"
            }

            fn spawn(&self, executor: &mut dyn Executor) {
                executor.spawn_root(TaskSpec::new("pointer-result", |ctx| {
                    let obj = ctx.alloc_raw(&[i64_to_word(9)]);
                    TaskResult::Ptr(obj)
                }));
            }

            fn expected_checksum(&self) -> Option<Checksum> {
                Some(Checksum::I64(9))
            }
        }

        let record = Experiment::new(PointerResult)
            .env_overrides(EnvOverrides::default())
            .run()
            .expect("the configuration is valid");
        let (_, is_ptr) = record.result.expect("a pointer result is produced");
        assert!(is_ptr);
        assert_eq!(
            record.checksum_ok, None,
            "a heap address must never be checked against a value checksum"
        );
    }

    #[test]
    fn record_json_carries_the_schema_fields() {
        let record = pinned(Constant(5)).run().unwrap();
        let json = record.to_json();
        for key in [
            "\"schema_version\": 2",
            "\"program\": \"constant\"",
            "\"params\": {\"value\": 5}",
            "\"backend\": \"simulated\"",
            "\"vprocs\": 1",
            "\"topology\": \"test-dual-node\"",
            "\"policy\": \"local\"",
            "\"placement\": \"node-local\"",
            "\"quantum_ns\": 25000",
            "\"wall_clock_ns\": null",
            "\"simulated_ns\": ",
            "\"checksum_ok\": true",
            "\"tasks\": 1",
            "\"promoted_bytes\": ",
            "\"promoted_bytes_local\": ",
            "\"promoted_bytes_remote\": ",
            "\"steals_same_node\": ",
            "\"steals_cross_node\": ",
            "\"promotions_at_steal\": ",
            "\"promotions_at_publish\": ",
            "\"placement_switches\": 0",
            "\"placement_decisions\": []",
            "\"node_bindings\": [\"tagged\"]",
            "\"pause_budget_us\": null",
            "\"pause_count\": ",
            "\"pause_max_ns\": ",
            "\"pause_p50_ns\": ",
            "\"pause_p99_ns\": ",
            "\"global_pause_max_ns\": ",
            "\"requests_served\": 0",
            "\"throughput_rps\": 0.000",
            "\"latency_p50_ns\": 0",
            "\"latency_p99_ns\": 0",
            "\"latency_p999_ns\": 0",
            "\"latency_max_ns\": 0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let array = run_records_json(&[record.clone(), record]);
        assert!(array.starts_with("[\n"));
        assert!(array.trim_end().ends_with(']'));
        assert_eq!(array.matches("\"program\"").count(), 2);
    }

    #[test]
    fn record_json_echoes_the_pause_budget() {
        let record = pinned(Constant(5)).gc_pause_budget(250).run().unwrap();
        let json = record.to_json();
        assert!(
            json.contains("\"pause_budget_us\": 250"),
            "budget missing from {json}"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak"), "line\\nbreak");
    }
}
