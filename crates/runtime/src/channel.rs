//! CML-style channels and object proxies (paper §2.1, §3.1).
//!
//! Manticore's explicitly-threaded layer provides Concurrent ML primitives;
//! sending a value to another vproc requires promoting it to the global heap
//! first, because the no-cross-heap-pointer invariants forbid direct
//! references between local heaps. *Object proxies* are the special objects
//! the runtime uses to let global-heap structures (such as a channel's wait
//! queue) refer back to vproc-local state.
//!
//! The reproduction models channels as asynchronous mailboxes: `send`
//! promotes the message and enqueues its global address; `recv` dequeues.
//! This captures exactly the memory-system behaviour the paper cares about
//! (promotion volume and global-heap traffic); the synchronous rendezvous of
//! real CML is orthogonal to the collector and is not reproduced.

use mgc_heap::Addr;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The raw index of the channel.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an object proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProxyId(pub(crate) usize);

impl ProxyId {
    /// The raw index of the proxy.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A proxy standing in for a vproc-local object referenced from global
/// runtime structures. Resolving a proxy from a vproc other than its owner
/// forces promotion of the underlying object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Proxy {
    /// The vproc whose local heap holds the object.
    pub owner: usize,
    /// The object's current address (local until promoted).
    pub target: Addr,
    /// Whether the proxy has been resolved and promoted.
    pub promoted: bool,
}

/// Internal channel state: a FIFO of promoted (global-heap) messages.
#[derive(Debug, Default)]
pub(crate) struct ChannelState {
    pub queue: VecDeque<Addr>,
    pub sends: u64,
    pub receives: u64,
}

/// Per-run channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Messages sent across all channels.
    pub sends: u64,
    /// Messages received across all channels.
    pub receives: u64,
    /// Proxies created.
    pub proxies_created: u64,
    /// Proxies resolved from a vproc other than their owner (forcing
    /// promotion).
    pub proxies_promoted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_expose_indices() {
        assert_eq!(ChannelId(4).index(), 4);
        assert_eq!(ProxyId(2).index(), 2);
    }

    #[test]
    fn channel_state_defaults_empty() {
        let st = ChannelState::default();
        assert!(st.queue.is_empty());
        assert_eq!(st.sends, 0);
    }
}
