//! The open program interface: anything that can spawn work onto an
//! [`Executor`] can be run through an [`Experiment`](crate::Experiment).
//!
//! The paper's benchmarks (in `mgc-workloads`) are [`Program`]
//! implementations, but so is any user-defined scenario: implement the
//! trait, hand the program to [`Experiment::new`](crate::Experiment::new),
//! and every backend, topology, placement policy, and heap geometry is
//! available without new plumbing.

use crate::executor::Executor;
use mgc_heap::{word_to_f64, word_to_i64, Word};
use serde::{Deserialize, Serialize};

/// The expected result of a program, used by equivalence tests to check a
/// run produced the right answer.
///
/// Integer checksums must match bit-for-bit. Floating-point checksums are
/// compared with a relative tolerance of `1e-6` — parallel runs fold in
/// deterministic child order, but the *reference* value is usually computed
/// by a differently-associated sequential loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Checksum {
    /// An exact integer result.
    I64(i64),
    /// A floating-point result, compared with relative tolerance `1e-6`.
    F64(f64),
}

impl Checksum {
    /// Whether the raw result word of a finished run matches this checksum.
    pub fn matches(&self, word: Word) -> bool {
        match *self {
            Checksum::I64(expected) => word_to_i64(word) == expected,
            Checksum::F64(expected) => {
                let got = word_to_f64(word);
                got.is_finite() && (got - expected).abs() <= 1e-6 * expected.abs().max(1.0)
            }
        }
    }
}

impl std::fmt::Display for Checksum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Checksum::I64(v) => write!(f, "{v}"),
            Checksum::F64(v) => write!(f, "{v}"),
        }
    }
}

/// A program that can run on any execution backend.
///
/// Implementations register descriptors, create channels, and spawn the root
/// task in [`Program::spawn`]; the machinery around the run — building the
/// backend, validating the configuration, applying `MGC_*` overrides, and
/// packaging the result as a [`RunRecord`](crate::RunRecord) — belongs to
/// [`Experiment`](crate::Experiment).
///
/// ```
/// use mgc_runtime::{Checksum, Experiment, Program, Executor, TaskResult, TaskSpec};
/// use mgc_heap::i64_to_word;
///
/// struct FortyTwo;
///
/// impl Program for FortyTwo {
///     fn name(&self) -> &str {
///         "forty-two"
///     }
///
///     fn spawn(&self, executor: &mut dyn Executor) {
///         executor.spawn_root(TaskSpec::new("forty-two", |_ctx| {
///             TaskResult::Value(i64_to_word(42))
///         }));
///     }
///
///     fn expected_checksum(&self) -> Option<Checksum> {
///         Some(Checksum::I64(42))
///     }
/// }
///
/// let record = Experiment::new(FortyTwo).vprocs(1).run().unwrap();
/// assert_eq!(record.checksum_ok, Some(true));
/// ```
pub trait Program {
    /// A stable human-readable name, used in reports and JSON records.
    fn name(&self) -> &str;

    /// Spawns the program onto an executor (descriptor registration, channel
    /// creation, and the root task). Called exactly once per run, before
    /// [`Executor::run`].
    fn spawn(&self, executor: &mut dyn Executor);

    /// The result a correct run must produce, if one is known. Equivalence
    /// tests compare the finished run's root result against this; the
    /// default is `None` (no cheap reference value exists). Implementations
    /// may run a sequential reference of the whole program to produce the
    /// value — callers that only read timings skip it via
    /// [`Experiment::verify_checksum(false)`](crate::Experiment::verify_checksum).
    fn expected_checksum(&self) -> Option<Checksum> {
        None
    }

    /// The program's parameters as a JSON object, recorded verbatim in
    /// [`RunRecord`](crate::RunRecord) JSON so sweep outputs say exactly
    /// what ran. The default is an empty object.
    fn params_json(&self) -> String {
        "{}".to_string()
    }
}

impl Program for Box<dyn Program> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn spawn(&self, executor: &mut dyn Executor) {
        (**self).spawn(executor)
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        (**self).expected_checksum()
    }

    fn params_json(&self) -> String {
        (**self).params_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_heap::{f64_to_word, i64_to_word};

    #[test]
    fn integer_checksums_are_exact() {
        let c = Checksum::I64(7);
        assert!(c.matches(i64_to_word(7)));
        assert!(!c.matches(i64_to_word(8)));
        assert_eq!(c.to_string(), "7");
    }

    #[test]
    fn float_checksums_use_relative_tolerance() {
        let c = Checksum::F64(1000.0);
        assert!(c.matches(f64_to_word(1000.0)));
        assert!(c.matches(f64_to_word(1000.0005)));
        assert!(!c.matches(f64_to_word(1001.0)));
        assert!(!c.matches(f64_to_word(f64::NAN)));
    }

    #[test]
    fn boxed_programs_delegate() {
        struct Named;
        impl Program for Named {
            fn name(&self) -> &str {
                "named"
            }
            fn spawn(&self, _executor: &mut dyn Executor) {}
        }
        let boxed: Box<dyn Program> = Box::new(Named);
        assert_eq!(boxed.name(), "named");
        assert_eq!(boxed.expected_checksum(), None);
        assert_eq!(boxed.params_json(), "{}");
    }
}
