//! The task execution context: the API a program (workload) uses.
//!
//! Task bodies never hold raw heap addresses across allocation points —
//! any allocation may trigger a collection that moves objects. Instead they
//! hold [`Handle`]s, which index the task's root set; the collector rewrites
//! the root set in place, so handles stay valid for the task's lifetime.
//!
//! Besides allocation and field access, the context exposes:
//!
//! * [`TaskCtx::work`] — charge pure compute to the simulated clock;
//! * [`TaskCtx::spawn`] / [`TaskCtx::fork_join`] — implicitly-threaded
//!   parallelism over the vproc deques (stolen work is promoted lazily);
//! * [`TaskCtx::send`] / [`TaskCtx::recv`] — CML-style message passing
//!   (messages are promoted to the global heap);
//! * [`TaskCtx::create_proxy`] / [`TaskCtx::resolve_proxy`] — object proxies
//!   for global structures that need to reference vproc-local objects.
//!
//! One `TaskCtx` type serves **both** execution backends (see
//! [`Executor`](crate::Executor)): on the simulated [`Machine`]
//! (crate::Machine) every operation charges the NUMA cost model; on the
//! [`ThreadedMachine`](crate::ThreadedMachine) the same operations hit the
//! worker thread's own heap directly and data published to other threads
//! (spawned tasks, fork/join continuations, messages) is promoted to the
//! shared global heap at publication time.

use crate::channel::{ChannelId, ProxyId};
use crate::machine::RuntimeState;
use crate::task::{Delivery, Handle, JoinCell, Task, TaskResult, TaskSpec};
use crate::threaded::{PromoteWhy, WorkerState};
use mgc_heap::{f64_to_word, word_to_f64, Addr, DescriptorId, GcHeap, Word};

/// How one field of a mixed-type object is initialised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldInit {
    /// A pointer field referencing another heap object (or null).
    Ptr(Option<Handle>),
    /// A raw 64-bit value.
    Raw(Word),
    /// A raw floating-point value.
    F64(f64),
}

/// Which backend is executing the task.
enum CtxState<'a> {
    /// The discrete-event simulation: one driver thread, cost model.
    Sim(&'a mut RuntimeState),
    /// A real worker thread of the threaded backend.
    Threaded(&'a mut WorkerState),
}

/// The execution context handed to every task body.
pub struct TaskCtx<'a> {
    state: CtxState<'a>,
    vproc: usize,
    roots: &'a mut Vec<Addr>,
    values: &'a [Word],
    delivery_taken: &'a mut bool,
    delivery: Delivery,
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx")
            .field("vproc", &self.vproc)
            .field("roots", &self.roots.len())
            .field("values", &self.values.len())
            .finish()
    }
}

impl<'a> TaskCtx<'a> {
    pub(crate) fn new(
        state: &'a mut RuntimeState,
        vproc: usize,
        roots: &'a mut Vec<Addr>,
        values: &'a [Word],
        delivery_taken: &'a mut bool,
        delivery: Delivery,
    ) -> Self {
        TaskCtx {
            state: CtxState::Sim(state),
            vproc,
            roots,
            values,
            delivery_taken,
            delivery,
        }
    }

    pub(crate) fn new_threaded(
        worker: &'a mut WorkerState,
        roots: &'a mut Vec<Addr>,
        values: &'a [Word],
        delivery_taken: &'a mut bool,
        delivery: Delivery,
    ) -> Self {
        let vproc = worker.vproc;
        TaskCtx {
            state: CtxState::Threaded(worker),
            vproc,
            roots,
            values,
            delivery_taken,
            delivery,
        }
    }

    // ------------------------------------------------------------------
    // Identity and inputs
    // ------------------------------------------------------------------

    /// The vproc this task is running on.
    pub fn vproc(&self) -> usize {
        self.vproc
    }

    /// Number of vprocs in the machine.
    pub fn num_vprocs(&self) -> usize {
        match &self.state {
            CtxState::Sim(state) => state.num_vprocs(),
            CtxState::Threaded(worker) => worker.num_vprocs(),
        }
    }

    /// The `i`-th pointer input of this task (its `i`-th root).
    ///
    /// For a fork/join continuation, the children's pointer results follow
    /// the continuation's own pointer inputs, in child order.
    pub fn input(&self, i: usize) -> Handle {
        assert!(
            i < self.roots.len(),
            "task has only {} roots",
            self.roots.len()
        );
        Handle(i)
    }

    /// Number of pointer inputs / live handles.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// The `i`-th raw input value. For a fork/join continuation, the
    /// children's value results follow the continuation's own value inputs.
    pub fn value(&self, i: usize) -> Word {
        self.values[i]
    }

    /// The `i`-th raw input, interpreted as an `f64`.
    pub fn value_f64(&self, i: usize) -> f64 {
        word_to_f64(self.values[i])
    }

    /// Number of raw input values.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    // ------------------------------------------------------------------
    // Compute cost
    // ------------------------------------------------------------------

    /// Charges `ops` machine operations of pure compute (arithmetic,
    /// branches) to this vproc's virtual clock. On the threaded backend
    /// real time passes instead, so this is a no-op.
    pub fn work(&mut self, ops: u64) {
        match &mut self.state {
            CtxState::Sim(state) => state.charge_work(self.vproc, ops),
            CtxState::Threaded(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Time and latency
    // ------------------------------------------------------------------

    /// This vproc's current time in nanoseconds: deterministic virtual time
    /// on the simulated backend (the machine clock plus the compute charged
    /// so far this round), wall-clock time since the machine's start on the
    /// threaded backend. Monotone over a task's execution on both; readings
    /// from different vprocs share one time axis, which is what lets an
    /// open-loop arrival schedule and end-to-end latency samples make sense
    /// machine-wide.
    pub fn now_ns(&mut self) -> f64 {
        match &self.state {
            CtxState::Sim(state) => state.now_ns(self.vproc),
            CtxState::Threaded(worker) => worker.now_ns(),
        }
    }

    /// Blocks this vproc until [`now_ns`](Self::now_ns) reaches
    /// `target_ns` — the open-loop load generator's pacing primitive.
    /// On the simulated backend the gap is charged as idle virtual time (so
    /// the wait is free of real time and fully deterministic); on the
    /// threaded backend the worker polls the wall clock, servicing steal
    /// requests and pending global collections at every poll so waiting
    /// never stalls the rest of the machine. Returns immediately when the
    /// target is already past.
    pub fn wait_until_ns(&mut self, target_ns: f64) {
        match &mut self.state {
            CtxState::Sim(state) => state.wait_until_ns(self.vproc, target_ns),
            CtxState::Threaded(worker) => worker.wait_until_ns(target_ns, self.roots),
        }
    }

    /// Records one end-to-end request latency of `ns` nanoseconds into this
    /// vproc's [`LatencyStats`](crate::LatencyStats) series. Serving
    /// programs call this once per completed request; the per-vproc series
    /// merge into the run-wide latency histogram that
    /// [`RunReport::latency_stats`](crate::RunReport::latency_stats),
    /// `requests_served`, and `throughput_rps` report from.
    pub fn record_latency_ns(&mut self, ns: f64) {
        match &mut self.state {
            CtxState::Sim(state) => state.vprocs[self.vproc].stats.latency.record(ns),
            CtxState::Threaded(worker) => worker.stats.latency.record(ns),
        }
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    fn reserve_nursery(&mut self, payload_words: usize) {
        match &mut self.state {
            CtxState::Sim(state) => state.reserve_nursery(self.vproc, self.roots, payload_words),
            CtxState::Threaded(worker) => worker.reserve_nursery(self.roots, payload_words),
        }
    }

    fn charge_alloc(&mut self, bytes: usize) {
        if let CtxState::Sim(state) = &mut self.state {
            state.charge_alloc(self.vproc, bytes);
        }
    }

    fn charge_access(&mut self, addr: Addr, bytes: usize) {
        if let CtxState::Sim(state) = &mut self.state {
            state.charge_access(self.vproc, addr, bytes);
        }
    }

    /// Allocates a raw-data object and returns a handle to it.
    pub fn alloc_raw(&mut self, payload: &[Word]) -> Handle {
        self.reserve_nursery(payload.len());
        let addr = match &mut self.state {
            CtxState::Sim(state) => {
                state.alloc_reserved(self.vproc, |heap, vproc| heap.alloc_raw(vproc, payload))
            }
            CtxState::Threaded(worker) => worker
                .heap
                .alloc_raw(payload)
                .expect("allocation failed after reserving nursery space"),
        };
        self.charge_alloc((payload.len() + 1) * 8);
        self.push_root(addr)
    }

    /// Allocates a raw-data object holding `f64` values.
    pub fn alloc_f64_slice(&mut self, values: &[f64]) -> Handle {
        let words: Vec<Word> = values.iter().map(|&v| f64_to_word(v)).collect();
        self.alloc_raw(&words)
    }

    /// Allocates a vector of pointers; `None` entries become null.
    pub fn alloc_vector(&mut self, elements: &[Option<Handle>]) -> Handle {
        // Reserve first: a collection here may move the referenced objects,
        // so handles are resolved to addresses only afterwards.
        self.reserve_nursery(elements.len());
        let words: Vec<Word> = elements
            .iter()
            .copied()
            .map(|h| match h {
                Some(handle) => self.resolve(handle).raw(),
                None => 0,
            })
            .collect();
        let addr = match &mut self.state {
            CtxState::Sim(state) => {
                state.alloc_reserved(self.vproc, |heap, vproc| heap.alloc_vector(vproc, &words))
            }
            CtxState::Threaded(worker) => worker
                .heap
                .alloc_vector(&words)
                .expect("allocation failed after reserving nursery space"),
        };
        self.charge_alloc((words.len() + 1) * 8);
        self.push_root(addr)
    }

    /// Allocates a mixed-type object laid out according to `descriptor`.
    ///
    /// # Panics
    ///
    /// Panics if the field kinds disagree with the registered descriptor
    /// (pointer fields must be `FieldInit::Ptr`).
    pub fn alloc_mixed(&mut self, descriptor: DescriptorId, fields: &[FieldInit]) -> Handle {
        // Reserve first: a collection here may move the referenced objects,
        // so handles are resolved to addresses only afterwards.
        self.reserve_nursery(fields.len());
        let words: Vec<Word> = fields
            .iter()
            .copied()
            .map(|f| match f {
                FieldInit::Ptr(Some(handle)) => self.resolve(handle).raw(),
                FieldInit::Ptr(None) => 0,
                FieldInit::Raw(w) => w,
                FieldInit::F64(v) => f64_to_word(v),
            })
            .collect();
        let addr = match &mut self.state {
            CtxState::Sim(state) => state.alloc_reserved(self.vproc, |heap, vproc| {
                heap.alloc_mixed(vproc, descriptor, &words)
            }),
            CtxState::Threaded(worker) => worker
                .heap
                .alloc_mixed(descriptor, &words)
                .expect("allocation failed after reserving nursery space"),
        };
        self.charge_alloc((words.len() + 1) * 8);
        self.push_root(addr)
    }

    // ------------------------------------------------------------------
    // Field access
    // ------------------------------------------------------------------

    fn heap_read_field(&self, addr: Addr, index: usize) -> Word {
        match &self.state {
            CtxState::Sim(state) => state.heap.read_field(addr, index),
            CtxState::Threaded(worker) => worker.heap.read_field(addr, index),
        }
    }

    fn heap_object_bytes(&self, addr: Addr) -> usize {
        match &self.state {
            CtxState::Sim(state) => state.heap.object_bytes(addr),
            CtxState::Threaded(worker) => worker.heap.object_bytes(addr),
        }
    }

    /// Reads a raw field of the object behind `handle`.
    pub fn read_raw(&mut self, handle: Handle, index: usize) -> Word {
        let addr = self.resolve(handle);
        self.charge_access(addr, 8);
        self.heap_read_field(addr, index)
    }

    /// Reads a raw field as an `f64`.
    pub fn read_f64(&mut self, handle: Handle, index: usize) -> f64 {
        word_to_f64(self.read_raw(handle, index))
    }

    /// Reads a pointer field and registers the target as a new root,
    /// returning its handle (or `None` for a null field).
    pub fn read_ptr(&mut self, handle: Handle, index: usize) -> Option<Handle> {
        let addr = self.resolve(handle);
        self.charge_access(addr, 8);
        let word = self.heap_read_field(addr, index);
        if word == 0 {
            None
        } else {
            Some(self.push_root(Addr::new(word)))
        }
    }

    /// Reads the whole payload of a raw object as words, charging a single
    /// bulk access (the workloads use this for rope leaves).
    pub fn read_words(&mut self, handle: Handle) -> Vec<Word> {
        let addr = self.resolve(handle);
        let bytes = self.heap_object_bytes(addr);
        self.charge_access(addr, bytes);
        match &self.state {
            CtxState::Sim(state) => state.heap.payload(addr),
            CtxState::Threaded(worker) => worker.heap.payload(addr),
        }
    }

    /// Reads the whole payload of a raw object as `f64`s.
    pub fn read_f64s(&mut self, handle: Handle) -> Vec<f64> {
        self.read_words(handle)
            .into_iter()
            .map(word_to_f64)
            .collect()
    }

    /// The number of payload words of the object behind `handle`.
    pub fn len(&mut self, handle: Handle) -> usize {
        let addr = self.resolve(handle);
        let header = match &self.state {
            CtxState::Sim(state) => state.heap.header_of(addr),
            CtxState::Threaded(worker) => worker.heap.header_of(addr),
        };
        header.len_words as usize
    }

    /// True if the object behind `handle` has no payload (never the case for
    /// objects allocated through this API).
    pub fn is_empty(&mut self, handle: Handle) -> bool {
        self.len(handle) == 0
    }

    // ------------------------------------------------------------------
    // Root management
    // ------------------------------------------------------------------

    /// A mark of the current number of roots; combined with
    /// [`TaskCtx::truncate_roots`] it lets loops discard intermediate
    /// handles so the root set does not grow without bound.
    pub fn root_mark(&self) -> usize {
        self.roots.len()
    }

    /// Drops every root registered after `mark`. Handles issued after the
    /// mark become invalid.
    ///
    /// On the threaded backend this is also a safe point: loops that shed
    /// intermediate roots here (rather than at allocations) would otherwise
    /// never answer steal requests or a pending stop-the-world, and a long
    /// task would serialise the whole machine.
    pub fn truncate_roots(&mut self, mark: usize) {
        self.roots.truncate(mark);
        if let CtxState::Threaded(worker) = &mut self.state {
            worker.safe_point(self.roots);
        }
    }

    /// Re-registers the object behind `handle` so it survives a
    /// [`TaskCtx::truncate_roots`] call with an earlier mark, returning the
    /// new handle.
    pub fn keep(&mut self, handle: Handle, mark: usize) -> Handle {
        let addr = self.resolve(handle);
        self.roots.truncate(mark);
        self.push_root(addr)
    }

    /// Resolves a handle to the current address of its object, following any
    /// forwarding pointers left behind by promotions and updating the root
    /// slot so later accesses are direct.
    fn resolve(&mut self, handle: Handle) -> Addr {
        let resolved = match &self.state {
            CtxState::Sim(state) => state.resolve_addr(self.roots[handle.index()]),
            CtxState::Threaded(worker) => worker.resolve_addr(self.roots[handle.index()]),
        };
        self.roots[handle.index()] = resolved;
        resolved
    }

    fn push_root(&mut self, addr: Addr) -> Handle {
        self.roots.push(addr);
        Handle(self.roots.len() - 1)
    }

    // ------------------------------------------------------------------
    // Parallelism
    // ------------------------------------------------------------------

    /// Spawns an independent task (no result delivery) on this vproc's
    /// deque, where it can be stolen by idle vprocs.
    pub fn spawn(&mut self, mut spec: TaskSpec, ptr_inputs: &[Handle]) {
        spec.ptr_inputs = ptr_inputs.iter().map(|h| self.resolve(*h)).collect();
        let task = Task::from_spec(spec, Delivery::Discard, self.vproc);
        match &mut self.state {
            CtxState::Sim(state) => state.push_task(self.vproc, task),
            CtxState::Threaded(worker) => worker.push_task(task),
        }
    }

    /// Forks `children` and schedules `continuation` to run when all of them
    /// have completed. The children's results are appended to the
    /// continuation's inputs in child order: pointer results after its own
    /// pointer inputs, value results after its own value inputs.
    ///
    /// The current task's pending result delivery (if it was itself a child
    /// of a fork) is transferred to the continuation, continuation-passing
    /// style; the current body's return value is then ignored.
    pub fn fork_join(
        &mut self,
        children: Vec<(TaskSpec, Vec<Handle>)>,
        continuation: TaskSpec,
        continuation_inputs: &[Handle],
    ) {
        assert!(
            !children.is_empty(),
            "fork_join requires at least one child"
        );
        let mut cont_spec = continuation;
        cont_spec.ptr_inputs = continuation_inputs
            .iter()
            .map(|h| self.resolve(*h))
            .collect();
        let mut cont_task = Task::from_spec(cont_spec, self.delivery, self.vproc);
        *self.delivery_taken = true;

        // Resolve every child's pointer inputs before touching the backend,
        // so the borrow of `self.roots` ends first.
        let resolved_children: Vec<(TaskSpec, Vec<Addr>)> = children
            .into_iter()
            .map(|(spec, inputs)| {
                let addrs: Vec<Addr> = inputs.iter().map(|h| self.resolve(*h)).collect();
                (spec, addrs)
            })
            .collect();

        match &mut self.state {
            CtxState::Sim(state) => {
                let join = state.new_join(JoinCell::new(resolved_children.len(), cont_task));
                for (slot, (mut spec, addrs)) in resolved_children.into_iter().enumerate() {
                    spec.ptr_inputs = addrs;
                    let task = Task::from_spec(spec, Delivery::Join { join, slot }, self.vproc);
                    state.push_task(self.vproc, task);
                }
            }
            CtxState::Threaded(worker) => {
                // The continuation lives in the machine-global join table and
                // may run on any worker: its roots are promoted now, by
                // their owner. (Child tasks stay private — and local — until
                // they are actually stolen.)
                worker.publish_roots(&mut cont_task.roots, PromoteWhy::Publish);
                let join = worker.new_join(JoinCell::new(resolved_children.len(), cont_task));
                for (slot, (mut spec, addrs)) in resolved_children.into_iter().enumerate() {
                    spec.ptr_inputs = addrs;
                    let task = Task::from_spec(spec, Delivery::Join { join, slot }, worker.vproc);
                    worker.push_task(task);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Explicit concurrency (CML-style)
    // ------------------------------------------------------------------

    /// Sends the object behind `message` on `channel`. The message is
    /// promoted to the global heap (§3.1) so any vproc may receive it.
    pub fn send(&mut self, channel: ChannelId, message: Handle) {
        let addr = self.resolve(message);
        match &mut self.state {
            CtxState::Sim(state) => state.channel_send(self.vproc, channel, addr),
            CtxState::Threaded(worker) => worker.channel_send(channel, addr),
        }
    }

    /// Receives the oldest message from `channel`, if any.
    pub fn recv(&mut self, channel: ChannelId) -> Option<Handle> {
        let addr = match &mut self.state {
            CtxState::Sim(state) => state.channel_recv(self.vproc, channel)?,
            CtxState::Threaded(worker) => worker.channel_recv(channel)?,
        };
        Some(self.push_root(addr))
    }

    /// Creates an object proxy for a local object, so that global runtime
    /// structures can refer to it without violating the heap invariants.
    pub fn create_proxy(&mut self, handle: Handle) -> ProxyId {
        let addr = self.resolve(handle);
        match &mut self.state {
            CtxState::Sim(state) => state.create_proxy(self.vproc, addr),
            CtxState::Threaded(worker) => worker.create_proxy(addr),
        }
    }

    /// Resolves a proxy. Resolving from a vproc other than the owner forces
    /// the underlying object to be promoted to the global heap.
    pub fn resolve_proxy(&mut self, proxy: ProxyId) -> Handle {
        let addr = match &mut self.state {
            CtxState::Sim(state) => state.resolve_proxy(self.vproc, proxy),
            CtxState::Threaded(worker) => worker.resolve_proxy(proxy),
        };
        self.push_root(addr)
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    /// Convenience constructor for returning a pointer result.
    pub fn result_ptr(&self, handle: Handle) -> TaskResult {
        TaskResult::Ptr(handle)
    }

    /// Convenience constructor for returning an `f64` result.
    pub fn result_f64(&self, value: f64) -> TaskResult {
        TaskResult::Value(f64_to_word(value))
    }
}
