//! The simulated machine: configuration, the runtime state shared with task
//! contexts, and the discrete-event scheduler that drives vprocs, garbage
//! collection, and the NUMA cost model.
//!
//! This is one of **two** execution backends (see
//! [`Executor`](crate::Executor)): the [`Machine`] here executes every vproc
//! from a single driver thread and charges costs through the memory model;
//! [`ThreadedMachine`](crate::ThreadedMachine) runs each vproc on a real OS
//! thread and measures wall-clock time instead. Both share the task model,
//! the work-stealing deques, and the channel machinery.
//!
//! On this backend execution proceeds in *rounds*. In each round every vproc
//! runs tasks (stealing when its own deque is empty) until it has
//! accumulated roughly one scheduling quantum of virtual work; the round's
//! elapsed time is then computed by the bottleneck memory model of
//! `mgc-numa`, so that vprocs competing for the same memory controller or
//! interconnect link slow each other down exactly as the paper's machines
//! do. Garbage collections run inside the round of the vproc that triggered
//! them (minor/major) or as a stop-the-world round of their own (global
//! collections).

use crate::channel::{ChannelId, ChannelState, ChannelStats, Proxy, ProxyId};
use crate::ctx::TaskCtx;
use crate::stats::{RunReport, VprocPlacementDecision, VprocRunStats};
use crate::task::{Delivery, JoinCell, Task, TaskResult, TaskSpec};
use crate::threaded::PromoteWhy;
use crate::vproc::VProc;
use mgc_core::{Collector, GcConfig};
use mgc_heap::{Addr, Descriptor, DescriptorId, Heap, HeapConfig, HeapError, Word};
use mgc_numa::{
    AdaptiveController, AllocPolicy, MemoryModel, PlacementPolicy, Topology, Traffic, TrafficStats,
    VprocRoundCost,
};
use serde::{Deserialize, Serialize};

/// Fixed scheduling overhead charged per executed task, in nanoseconds.
const TASK_OVERHEAD_NS: f64 = 400.0;
/// Fixed cost of a steal attempt that succeeds (deque synchronisation).
const STEAL_OVERHEAD_NS: f64 = 1_200.0;
/// Default hard cap on scheduling rounds, to turn runaway programs into
/// test failures instead of hangs. Override with the `MGC_MAX_ROUNDS`
/// environment variable.
const MAX_ROUNDS: u64 = 50_000_000;

/// The effective round cap: `MGC_MAX_ROUNDS` when set (parsed by
/// [`crate::env::EnvOverrides`], the one place `MGC_*` variables are
/// interpreted), otherwise [`MAX_ROUNDS`]. Only `MGC_MAX_ROUNDS` is looked
/// up here — a machine is built per run, and warning about unrelated knobs
/// (`MGC_BACKEND`/`MGC_VPROCS`) on every construction would spam stderr.
fn round_limit_from_env() -> u64 {
    crate::env::EnvOverrides::from_lookup(|key| {
        (key == "MGC_MAX_ROUNDS")
            .then(|| std::env::var(key).ok())
            .flatten()
    })
    .max_rounds
    .unwrap_or(MAX_ROUNDS)
}

/// Cache behaviour of mutator memory accesses.
///
/// The local heap is sized to fit in the node's L3 cache (§3.1), so most
/// mutator accesses to it are cache hits and never reach DRAM; accesses to
/// the global heap miss much more often. These rates determine what fraction
/// of the touched bytes is charged to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutatorCostModel {
    /// Fraction of local-heap bytes that reach DRAM.
    pub local_heap_miss_rate: f64,
    /// Fraction of global-heap bytes that reach DRAM.
    pub global_heap_miss_rate: f64,
    /// Fraction of freshly allocated bytes that reach DRAM (write-back of
    /// evicted nursery lines).
    pub alloc_miss_rate: f64,
}

impl Default for MutatorCostModel {
    fn default() -> Self {
        MutatorCostModel {
            local_heap_miss_rate: 0.10,
            global_heap_miss_rate: 0.65,
            alloc_miss_rate: 0.25,
        }
    }
}

/// Configuration of a simulated machine run.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// The machine topology (e.g. [`Topology::amd_magny_cours_48`]).
    pub topology: Topology,
    /// Number of vprocs (threads) to use.
    pub num_vprocs: usize,
    /// Heap geometry.
    pub heap: HeapConfig,
    /// Promotion-chunk NUMA placement: which node's pool the chunks that
    /// receive promoted objects are leased from (`NodeLocal` targets the
    /// consumer — the thief at a steal handoff; `Interleave` round-robins;
    /// `FirstTouch` targets the promoting vproc).
    pub placement: PlacementPolicy,
    /// Collector configuration.
    pub gc: GcConfig,
    /// Mutator cache model.
    pub mutator_costs: MutatorCostModel,
    /// Scheduling quantum in virtual nanoseconds.
    pub quantum_ns: f64,
}

impl MachineConfig {
    /// Creates a configuration for `num_vprocs` vprocs on `topology` with
    /// default heap, collector, and cost parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_vprocs` is zero.
    pub fn new(topology: Topology, num_vprocs: usize) -> Self {
        assert!(num_vprocs > 0, "at least one vproc is required");
        MachineConfig {
            topology,
            num_vprocs,
            heap: HeapConfig::default(),
            placement: PlacementPolicy::default(),
            gc: GcConfig::default(),
            mutator_costs: MutatorCostModel::default(),
            quantum_ns: 200_000.0,
        }
    }

    /// Sets the promotion-chunk placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the physical page/chunk placement policy (§4.3 of the paper).
    pub fn with_policy(mut self, policy: AllocPolicy) -> Self {
        self.heap.policy = policy;
        self
    }

    /// Sets the heap configuration.
    pub fn with_heap(mut self, heap: HeapConfig) -> Self {
        self.heap = heap;
        self
    }

    /// Sets the collector configuration.
    pub fn with_gc(mut self, gc: GcConfig) -> Self {
        self.gc = gc;
        self
    }

    /// A small configuration for unit tests: the two-node test topology,
    /// tiny heaps, and aggressive GC thresholds.
    pub fn small_for_tests(num_vprocs: usize) -> Self {
        MachineConfig {
            topology: Topology::dual_node_test(),
            num_vprocs,
            heap: HeapConfig::small_for_tests(),
            placement: PlacementPolicy::default(),
            gc: GcConfig::small_for_tests(),
            mutator_costs: MutatorCostModel::default(),
            quantum_ns: 50_000.0,
        }
    }
}

/// Mutable runtime state shared between the scheduler and task contexts.
pub(crate) struct RuntimeState {
    pub(crate) heap: Heap,
    pub(crate) collector: Collector,
    pub(crate) vprocs: Vec<VProc>,
    pub(crate) joins: Vec<Option<JoinCell>>,
    pub(crate) channels: Vec<ChannelState>,
    pub(crate) proxies: Vec<Proxy>,
    pub(crate) channel_stats: ChannelStats,
    pub(crate) topology: Topology,
    pub(crate) mutator_costs: MutatorCostModel,
    pub(crate) traffic: TrafficStats,
    pub(crate) ns_per_op: f64,
    /// The machine's virtual clock as of the **start** of the current round
    /// (the scheduler advances the real clock only at round close). A vproc's
    /// mid-round "now" is this base plus the compute it has charged so far
    /// this round — monotone, deterministic, and good enough for open-loop
    /// arrival schedules and latency sampling.
    pub(crate) clock_base_ns: f64,
    pub(crate) root_result: Option<(Word, bool)>,
    /// One hysteresis controller per vproc under
    /// [`PlacementPolicy::Adaptive`]; `None` under the static policies.
    pub(crate) adaptive: Option<Vec<AdaptiveController>>,
}

impl std::fmt::Debug for RuntimeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeState")
            .field("vprocs", &self.vprocs.len())
            .field("joins", &self.joins.iter().filter(|j| j.is_some()).count())
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl RuntimeState {
    pub(crate) fn num_vprocs(&self) -> usize {
        self.vprocs.len()
    }

    pub(crate) fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    // ------------------------------------------------------------------
    // Cost charging
    // ------------------------------------------------------------------

    /// Charges `ops` machine operations of pure compute to `vproc`.
    pub(crate) fn charge_work(&mut self, vproc: usize, ops: u64) {
        let ns = ops as f64 * self.ns_per_op;
        self.vprocs[vproc].round_cost.add_cpu_ns(ns);
    }

    /// `vproc`'s current virtual time: the machine clock at the start of the
    /// round plus the compute this vproc has charged so far within it.
    /// Monotone over a vproc's execution and fully deterministic.
    pub(crate) fn now_ns(&self, vproc: usize) -> f64 {
        self.clock_base_ns + self.vprocs[vproc].round_cost.cpu_ns
    }

    /// Advances `vproc`'s virtual time to `target_ns` by charging the gap as
    /// idle compute — how an open-loop load generator waits out an arrival
    /// gap on the simulated backend. A no-op when the target is already past.
    pub(crate) fn wait_until_ns(&mut self, vproc: usize, target_ns: f64) {
        let now = self.now_ns(vproc);
        if target_ns > now {
            self.vprocs[vproc].round_cost.add_cpu_ns(target_ns - now);
        }
    }

    /// Charges a mutator access of `bytes` bytes at `addr` by `vproc`,
    /// applying the cache model.
    pub(crate) fn charge_access(&mut self, vproc: usize, addr: Addr, bytes: usize) {
        if addr.is_null() || bytes == 0 {
            return;
        }
        let target_node = self.heap.node_of(addr);
        let miss_rate = if self.heap.is_local(addr) {
            self.mutator_costs.local_heap_miss_rate
        } else {
            self.mutator_costs.global_heap_miss_rate
        };
        self.charge_traffic(vproc, target_node, bytes, miss_rate);
        // Touching data costs a couple of instructions per word even on a
        // cache hit.
        self.charge_work(vproc, (bytes as u64 / 8).max(1));
    }

    /// Charges the allocation of `bytes` fresh bytes by `vproc`.
    pub(crate) fn charge_alloc(&mut self, vproc: usize, bytes: usize) {
        let node = self.heap.local(vproc).node();
        let miss = self.mutator_costs.alloc_miss_rate;
        self.charge_traffic(vproc, node, bytes, miss);
        self.charge_work(vproc, (bytes as u64 / 8).max(1) * 2);
    }

    /// Resolves the adaptive controller's mode into `vproc`'s effective
    /// placement for the promotion work about to run. No-op under the
    /// static policies.
    fn adaptive_pre_promotion(&mut self, vproc: usize) {
        if let Some(controllers) = self.adaptive.as_mut() {
            let mode = controllers[vproc].placement_for_next_promotion();
            self.heap.set_effective_placement(vproc, mode.as_policy());
        }
    }

    /// Feeds one promotion operation's ledger split back into `vproc`'s
    /// adaptive controller. No-op under the static policies.
    fn adaptive_record(&mut self, vproc: usize, local_bytes: u64, remote_bytes: u64) {
        if let Some(controllers) = self.adaptive.as_mut() {
            controllers[vproc].record_promotion(local_bytes, remote_bytes);
        }
    }

    fn charge_traffic(&mut self, vproc: usize, node: mgc_numa::NodeId, bytes: usize, rate: f64) {
        let dram_bytes = (bytes as f64 * rate).ceil() as u64;
        if dram_bytes == 0 {
            return;
        }
        let accesses = dram_bytes / 64;
        self.vprocs[vproc]
            .round_cost
            .add_traffic(node, Traffic::new(dram_bytes, accesses));
        let class = self.topology.access_class(self.vprocs[vproc].node, node);
        self.traffic.record_mutator(class, dram_bytes);
    }

    fn charge_gc_cost(&mut self, vproc: usize, cost: &mgc_core::GcCost) {
        cost.apply_to(&mut self.vprocs[vproc].round_cost);
        let src = self.vprocs[vproc].node;
        for (node, &bytes) in cost.bytes_to_node.iter().enumerate() {
            if bytes > 0 {
                let class = self
                    .topology
                    .access_class(src, mgc_numa::NodeId::new(node as u16));
                self.traffic.record_gc(class, bytes);
            }
        }
    }

    // ------------------------------------------------------------------
    // Root management and collections
    // ------------------------------------------------------------------

    /// Collects every root the runtime knows about for `vproc`: the supplied
    /// extra roots (the running task), every task waiting in the vproc's
    /// deque, every filled pointer slot of every join cell, and every queued
    /// channel message.
    fn gather_roots(&self, vproc: usize, extra: &[Addr]) -> Vec<Addr> {
        let mut roots: Vec<Addr> = Vec::with_capacity(extra.len() + 16);
        roots.extend_from_slice(extra);
        self.vprocs[vproc].deque.with_tasks(|tasks| {
            for task in tasks.iter() {
                roots.extend_from_slice(&task.roots);
            }
        });
        for join in self.joins.iter().flatten() {
            for slot in &join.slots {
                if slot.filled && slot.is_ptr {
                    roots.push(Addr::new(slot.word));
                }
            }
            if let Some(cont) = &join.continuation {
                roots.extend_from_slice(&cont.roots);
            }
        }
        for channel in &self.channels {
            roots.extend(channel.queue.iter().copied());
        }
        for proxy in &self.proxies {
            roots.push(proxy.target);
        }
        if let Some((word, true)) = self.root_result {
            roots.push(Addr::new(word));
        }
        roots
    }

    /// Writes the (possibly rewritten) roots back into the structures they
    /// were gathered from, in exactly the same order.
    fn scatter_roots(&mut self, vproc: usize, extra: &mut [Addr], roots: &[Addr]) {
        let mut cursor = 0;
        for slot in extra.iter_mut() {
            *slot = roots[cursor];
            cursor += 1;
        }
        self.vprocs[vproc].deque.with_tasks(|tasks| {
            for task in tasks.iter_mut() {
                for slot in task.roots.iter_mut() {
                    *slot = roots[cursor];
                    cursor += 1;
                }
            }
        });
        for join in self.joins.iter_mut().flatten() {
            for slot in join.slots.iter_mut() {
                if slot.filled && slot.is_ptr {
                    slot.word = roots[cursor].raw();
                    cursor += 1;
                }
            }
            if let Some(cont) = &mut join.continuation {
                for slot in cont.roots.iter_mut() {
                    *slot = roots[cursor];
                    cursor += 1;
                }
            }
        }
        for channel in self.channels.iter_mut() {
            for slot in channel.queue.iter_mut() {
                *slot = roots[cursor];
                cursor += 1;
            }
        }
        for proxy in self.proxies.iter_mut() {
            proxy.target = roots[cursor];
            cursor += 1;
        }
        if let Some((word, true)) = self.root_result {
            let _ = word;
            self.root_result = Some((roots[cursor].raw(), true));
            cursor += 1;
        }
        debug_assert_eq!(cursor, roots.len());
    }

    /// Runs a local (minor, possibly major) collection for `vproc`, with the
    /// running task's roots supplied in `extra`.
    pub(crate) fn local_gc(&mut self, vproc: usize, extra: &mut [Addr]) {
        let mut roots = self.gather_roots(vproc, extra);
        self.adaptive_pre_promotion(vproc);
        let outcome = self
            .collector
            .collect_local(&mut self.heap, vproc, &mut roots);
        self.scatter_roots(vproc, extra, &roots);
        self.charge_gc_cost(vproc, &outcome.cost);
        // A local collection's major phase promotes for the collecting
        // vproc's own benefit: the consumer is the vproc itself.
        let (local, remote) = outcome.promoted_split(self.heap.promotion_target(vproc));
        self.adaptive_record(vproc, local, remote);
        let stats = &mut self.vprocs[vproc].stats;
        stats.promoted_bytes_local += local;
        stats.promoted_bytes_remote += remote;
        // One virtual pause per local collection, classified by the heaviest
        // phase that ran.
        let pause = outcome.cost.cpu_ns;
        self.vprocs[vproc].stats.pauses.record(pause);
        let stats = self.collector.vproc_stats_mut(vproc);
        if outcome.triggered_major {
            stats.major_pauses.record(pause);
        } else {
            stats.minor_pauses.record(pause);
        }
        if outcome.needs_global {
            self.collector.request_global();
        }
    }

    /// Makes sure the vproc's nursery can hold an object of `payload_words`
    /// payload words, running a local collection if it cannot. Callers must
    /// resolve handles to addresses only *after* this returns, because the
    /// collection may move objects.
    ///
    /// # Panics
    ///
    /// Panics if the object cannot fit even in an empty nursery (workloads
    /// must chunk large arrays into rope leaves, as Manticore does).
    pub(crate) fn reserve_nursery(
        &mut self,
        vproc: usize,
        extra: &mut [Addr],
        payload_words: usize,
    ) {
        let needed = payload_words + 1;
        if self.heap.local(vproc).nursery_free_words() >= needed {
            return;
        }
        self.local_gc(vproc, extra);
        assert!(
            self.heap.local(vproc).nursery_free_words() >= needed,
            "an object of {payload_words} payload words does not fit in the nursery even after \
             a collection — build large arrays as rope leaves"
        );
    }

    /// Allocates in the nursery after a [`RuntimeState::reserve_nursery`]
    /// call made room.
    ///
    /// # Panics
    ///
    /// Panics if allocation fails despite the reservation.
    pub(crate) fn alloc_reserved<F>(&mut self, vproc: usize, alloc: F) -> Addr
    where
        F: FnOnce(&mut Heap, usize) -> Result<Addr, HeapError>,
    {
        match alloc(&mut self.heap, vproc) {
            Ok(addr) => addr,
            Err(e) => panic!("allocation failed after reserving nursery space: {e}"),
        }
    }

    /// Follows forwarding pointers left by promotions so stale references
    /// converge on the surviving copy of an object.
    pub(crate) fn resolve_addr(&self, mut addr: Addr) -> Addr {
        if addr.is_null() {
            return addr;
        }
        while let Some(forwarded) = self.heap.forwarded_to(addr) {
            addr = forwarded;
        }
        addr
    }

    /// Promotes `addr` if it lives in a local heap other than `target_vproc`'s,
    /// charging the owning vproc (lazy promotion, §3.1). `why` attributes
    /// the promotion — work actually stolen vs data published to a
    /// machine-global structure — in the owner's run statistics. Returns the
    /// address to use from `target_vproc`.
    pub(crate) fn promote_for(&mut self, target_vproc: usize, addr: Addr, why: PromoteWhy) -> Addr {
        let addr = self.resolve_addr(addr);
        if addr.is_null() || !self.heap.is_local(addr) {
            return addr;
        }
        let owner = self
            .heap
            .space_of(addr)
            .vproc()
            .expect("local addresses always have an owner");
        if owner == target_vproc {
            return addr;
        }
        // The promoted graph is about to be consumed by `target_vproc`:
        // point the owner's promotion chunks at the consumer's node for the
        // duration (honoured under `NodeLocal` placement).
        let consumer = self.vprocs[target_vproc].node;
        self.heap.set_promotion_target(owner, consumer);
        self.adaptive_pre_promotion(owner);
        let (new, outcome) = self.collector.promote(&mut self.heap, owner, addr);
        self.heap.reset_promotion_target(owner);
        self.charge_gc_cost(owner, &outcome.cost);
        let (local, remote) = outcome.promoted_split(consumer);
        self.adaptive_record(owner, local, remote);
        let stats = &mut self.vprocs[owner].stats;
        stats.lazy_promotions += 1;
        stats.promoted_bytes_local += local;
        stats.promoted_bytes_remote += remote;
        match why {
            PromoteWhy::Steal => {
                stats.promotions_at_steal += 1;
                stats.promoted_bytes_at_steal += outcome.promoted_bytes;
            }
            PromoteWhy::Publish => {
                stats.promotions_at_publish += 1;
                stats.promoted_bytes_at_publish += outcome.promoted_bytes;
            }
        }
        new
    }

    /// Promotes `addr` to the global heap if it still lives in any local
    /// heap, charging the owning vproc. Used for pointers held in
    /// machine-global structures (join cells, channels, proxies) before a
    /// global collection, whose per-vproc root sets only cover vproc-local
    /// structures.
    pub(crate) fn ensure_global(&mut self, addr: Addr) -> Addr {
        let addr = self.resolve_addr(addr);
        if addr.is_null() || !self.heap.is_local(addr) {
            return addr;
        }
        let owner = self
            .heap
            .space_of(addr)
            .vproc()
            .expect("local addresses always have an owner");
        let (new, outcome) = self.collector.promote(&mut self.heap, owner, addr);
        self.charge_gc_cost(owner, &outcome.cost);
        new
    }

    /// Moves every pointer held in a machine-global structure into the
    /// global heap, so the per-vproc root sets of a global collection are
    /// complete.
    pub(crate) fn globalise_shared_roots(&mut self) {
        let mut joins = std::mem::take(&mut self.joins);
        for join in joins.iter_mut().flatten() {
            for slot in join.slots.iter_mut() {
                if slot.filled && slot.is_ptr {
                    slot.word = self.ensure_global(Addr::new(slot.word)).raw();
                }
            }
            if let Some(cont) = &mut join.continuation {
                for root in cont.roots.iter_mut() {
                    *root = self.ensure_global(*root);
                }
            }
        }
        self.joins = joins;

        let mut channels = std::mem::take(&mut self.channels);
        for channel in channels.iter_mut() {
            for slot in channel.queue.iter_mut() {
                *slot = self.ensure_global(*slot);
            }
        }
        self.channels = channels;

        let mut proxies = std::mem::take(&mut self.proxies);
        for proxy in proxies.iter_mut() {
            proxy.target = self.ensure_global(proxy.target);
        }
        self.proxies = proxies;

        if let Some((word, true)) = self.root_result {
            let promoted = self.ensure_global(Addr::new(word));
            self.root_result = Some((promoted.raw(), true));
        }
    }

    // ------------------------------------------------------------------
    // Task plumbing
    // ------------------------------------------------------------------

    pub(crate) fn push_task(&mut self, vproc: usize, task: Task) {
        self.vprocs[vproc].push(task);
    }

    pub(crate) fn new_join(&mut self, cell: JoinCell) -> crate::task::JoinId {
        for (i, slot) in self.joins.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(cell);
                return crate::task::JoinId(i);
            }
        }
        self.joins.push(Some(cell));
        crate::task::JoinId(self.joins.len() - 1)
    }

    /// Records a task's result. If this completes a join, the continuation
    /// becomes runnable on `vproc` with the children's results appended to
    /// its inputs (pointer results promoted as needed).
    pub(crate) fn deliver(&mut self, vproc: usize, delivery: Delivery, word: Word, is_ptr: bool) {
        match delivery {
            Delivery::Discard => {}
            Delivery::Join { join, slot } => {
                let finished = {
                    let cell = self.joins[join.0]
                        .as_mut()
                        .expect("join cell outlives its children");
                    let s = &mut cell.slots[slot];
                    s.word = word;
                    s.is_ptr = is_ptr;
                    s.filled = true;
                    cell.remaining -= 1;
                    cell.remaining == 0
                };
                if finished {
                    let cell = self.joins[join.0].take().expect("join cell present");
                    let mut continuation = cell.continuation.expect("continuation present");
                    // The continuation runs on whichever vproc completed the
                    // join last, which may differ from the vproc that forked
                    // it. Its pointer inputs (and the children's pointer
                    // results) must not reference another vproc's local heap,
                    // so they are promoted lazily here — the same lazy
                    // promotion the paper applies to stolen work.
                    let mut roots = std::mem::take(&mut continuation.roots);
                    for root in roots.iter_mut() {
                        *root = self.promote_for(vproc, *root, PromoteWhy::Publish);
                    }
                    continuation.roots = roots;
                    for slot in &cell.slots {
                        if slot.is_ptr {
                            let addr =
                                self.promote_for(vproc, Addr::new(slot.word), PromoteWhy::Publish);
                            continuation.roots.push(addr);
                        } else {
                            continuation.values.push(slot.word);
                        }
                    }
                    self.vprocs[vproc].push(continuation);
                }
            }
        }
    }

    /// Attempts to steal a task for `thief`, promoting the stolen task's
    /// roots (lazy promotion on steal). Victim selection is locality-first:
    /// the fullest deque **on the thief's own node** wins; only when every
    /// same-node victim is empty does the thief reach across nodes for the
    /// fullest remote deque.
    pub(crate) fn try_steal(&mut self, thief: usize) -> Option<Task> {
        let thief_node = self.vprocs[thief].node;
        let fullest = |state: &RuntimeState, same_node: bool| {
            (0..state.vprocs.len())
                .filter(|&v| v != thief)
                .filter(|&v| (state.vprocs[v].node == thief_node) == same_node)
                .filter(|&v| !state.vprocs[v].deque.is_empty())
                .max_by_key(|&v| state.vprocs[v].deque.len())
        };
        let victim = fullest(self, true).or_else(|| fullest(self, false))?;
        let mut task = self.vprocs[victim].steal_from()?;
        for root in task.roots.iter_mut() {
            *root = self.promote_for(thief, *root, PromoteWhy::Steal);
        }
        let stats = &mut self.vprocs[thief].stats;
        stats.steals += 1;
        if self.vprocs[victim].node == thief_node {
            self.vprocs[thief].stats.steals_same_node += 1;
        } else {
            self.vprocs[thief].stats.steals_cross_node += 1;
        }
        self.vprocs[thief].round_cost.add_cpu_ns(STEAL_OVERHEAD_NS);
        Some(task)
    }

    // ------------------------------------------------------------------
    // Channels and proxies
    // ------------------------------------------------------------------

    pub(crate) fn channel_send(&mut self, vproc: usize, channel: ChannelId, message: Addr) {
        // Messages crossing vprocs must live in the global heap (§3.1): the
        // sender promotes its own data.
        let message = if self.heap.is_local(message) {
            let owner = self.heap.space_of(message).vproc().unwrap_or(vproc);
            self.adaptive_pre_promotion(owner);
            let (new, outcome) = self.collector.promote(&mut self.heap, owner, message);
            self.charge_gc_cost(owner, &outcome.cost);
            let (local, remote) = outcome.promoted_split(self.vprocs[owner].node);
            self.adaptive_record(owner, local, remote);
            let stats = &mut self.vprocs[owner].stats;
            stats.lazy_promotions += 1;
            stats.promotions_at_publish += 1;
            stats.promoted_bytes_at_publish += outcome.promoted_bytes;
            stats.promoted_bytes_local += local;
            stats.promoted_bytes_remote += remote;
            new
        } else {
            message
        };
        self.channels[channel.0].queue.push_back(message);
        self.channels[channel.0].sends += 1;
        self.channel_stats.sends += 1;
    }

    pub(crate) fn channel_recv(&mut self, vproc: usize, channel: ChannelId) -> Option<Addr> {
        let message = self.channels[channel.0].queue.pop_front()?;
        self.channels[channel.0].receives += 1;
        self.channel_stats.receives += 1;
        // Reading the message pulls it across the interconnect.
        let bytes = self.heap.object_bytes(message);
        self.charge_access(vproc, message, bytes);
        Some(message)
    }

    pub(crate) fn create_proxy(&mut self, owner: usize, target: Addr) -> ProxyId {
        self.proxies.push(Proxy {
            owner,
            target,
            promoted: false,
        });
        self.channel_stats.proxies_created += 1;
        ProxyId(self.proxies.len() - 1)
    }

    pub(crate) fn resolve_proxy(&mut self, vproc: usize, proxy: ProxyId) -> Addr {
        let entry = self.proxies[proxy.0];
        if vproc == entry.owner || !self.heap.is_local(entry.target) {
            return entry.target;
        }
        // Resolving from another vproc forces promotion of the target.
        let addr = self.promote_for(vproc, entry.target, PromoteWhy::Publish);
        let entry = &mut self.proxies[proxy.0];
        entry.target = addr;
        entry.promoted = true;
        self.channel_stats.proxies_promoted += 1;
        addr
    }
}

/// The simulated NUMA machine executing a program under the Manticore GC.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    model: MemoryModel,
    state: RuntimeState,
    clock_ns: f64,
    rounds: u64,
    round_limit: u64,
}

impl Machine {
    /// Builds a machine from a configuration: vprocs are pinned to cores
    /// spread sparsely across the nodes (§2.2), local heaps and the global
    /// heap are created under the configured placement policy, and the
    /// collector is initialised.
    pub fn new(config: MachineConfig) -> Self {
        let topology = config.topology.clone();
        let cores = topology.spread_cores(config.num_vprocs);
        let nodes: Vec<_> = cores.iter().map(|&c| topology.node_of_core(c)).collect();
        let mut heap = Heap::new(config.heap, &nodes, topology.num_nodes());
        heap.set_placement(config.placement);
        let mut collector = Collector::new(config.gc, config.num_vprocs, topology.num_nodes());
        if !config.gc.chunk_node_affinity {
            // propagated to the heap lazily by the global collection; nothing
            // to do here, but keep the collector aware.
            let _ = &mut collector;
        }
        let vprocs: Vec<VProc> = cores
            .iter()
            .enumerate()
            .map(|(i, &core)| {
                VProc::new(i, core, topology.node_of_core(core), topology.num_nodes())
            })
            .collect();
        let ns_per_op = 1.0 / topology.core_ghz();
        let model = MemoryModel::new(topology.clone());
        Machine {
            state: RuntimeState {
                heap,
                collector,
                vprocs,
                joins: Vec::new(),
                channels: Vec::new(),
                proxies: Vec::new(),
                channel_stats: ChannelStats::default(),
                topology,
                mutator_costs: config.mutator_costs,
                traffic: TrafficStats::new(),
                ns_per_op,
                clock_base_ns: 0.0,
                root_result: None,
                adaptive: (config.placement == PlacementPolicy::Adaptive).then(|| {
                    (0..config.num_vprocs)
                        .map(|_| AdaptiveController::new())
                        .collect()
                }),
            },
            model,
            config,
            clock_ns: 0.0,
            rounds: 0,
            round_limit: round_limit_from_env(),
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The heap (for inspection in tests and examples).
    pub fn heap(&self) -> &Heap {
        &self.state.heap
    }

    /// The collector (for inspection in tests and examples).
    pub fn collector(&self) -> &Collector {
        &self.state.collector
    }

    /// Channel statistics for the run so far.
    pub fn channel_stats(&self) -> ChannelStats {
        self.state.channel_stats
    }

    /// Registers a mixed-object descriptor (the compiler would have emitted
    /// it; programs register their record layouts before running).
    pub fn register_descriptor(&mut self, descriptor: Descriptor) -> DescriptorId {
        self.state.heap.register_descriptor(descriptor)
    }

    /// Creates a channel.
    pub fn create_channel(&mut self) -> ChannelId {
        self.state.channels.push(ChannelState::default());
        ChannelId(self.state.channels.len() - 1)
    }

    /// Spawns the program's root task on vproc 0. Its result (if any) can be
    /// read with [`Machine::take_result`] after [`Machine::run`].
    pub fn spawn_root(&mut self, spec: TaskSpec) {
        let task = Task::from_spec(spec, Delivery::Discard, 0);
        self.state.vprocs[0].push(task);
    }

    /// The root task's result: the raw word and whether it is a heap pointer.
    pub fn take_result(&mut self) -> Option<(Word, bool)> {
        self.state.root_result.take()
    }

    /// Runs until every deque is empty and no joins are pending, returning
    /// the run report.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the internal round limit (a runaway
    /// loop) or deadlocks with unfinished joins.
    pub fn run(&mut self) -> RunReport {
        loop {
            let mut any_work = false;
            for vproc in 0..self.state.num_vprocs() {
                loop {
                    let serial = self
                        .model
                        .serial_cost_ns(&self.state.vprocs[vproc].round_cost);
                    if serial >= self.config.quantum_ns {
                        break;
                    }
                    let task = match self.state.vprocs[vproc].pop_local() {
                        Some(task) => Some(task),
                        None => self.state.try_steal(vproc),
                    };
                    match task {
                        Some(task) => {
                            self.run_task(vproc, task);
                            any_work = true;
                        }
                        None => break,
                    }
                }
            }

            if self.state.collector.global_pending()
                || self.state.collector.needs_global(&self.state.heap)
            {
                self.run_global_gc();
                any_work = true;
            }

            self.close_round();

            if !any_work {
                let pending_join = self.state.joins.iter().any(Option::is_some);
                assert!(
                    !pending_join,
                    "deadlock: joins are pending but no vproc has runnable work"
                );
                break;
            }
            assert!(
                self.rounds < self.round_limit,
                "round limit of {} exceeded; the program appears to run forever \
                 (set the MGC_MAX_ROUNDS environment variable to raise the cap)",
                self.round_limit
            );
        }
        self.report()
    }

    fn run_task(&mut self, vproc: usize, mut task: Task) {
        let mut roots = std::mem::take(&mut task.roots);
        let values = std::mem::take(&mut task.values);
        let delivery = task.delivery;
        let body = task.body;
        let mut delivery_taken = false;
        let result = {
            let mut ctx = TaskCtx::new(
                &mut self.state,
                vproc,
                &mut roots,
                &values,
                &mut delivery_taken,
                delivery,
            );
            body(&mut ctx)
        };
        self.state.vprocs[vproc].stats.tasks_run += 1;
        self.state.vprocs[vproc]
            .round_cost
            .add_cpu_ns(TASK_OVERHEAD_NS);
        if delivery_taken {
            return;
        }
        let (word, is_ptr) = match result {
            TaskResult::Unit => (0, false),
            TaskResult::Value(w) => (w, false),
            TaskResult::Ptr(handle) => (self.state.resolve_addr(roots[handle.index()]).raw(), true),
        };
        match delivery {
            Delivery::Discard => {
                // The root task's result is remembered for the caller; any
                // pointer is promoted so it survives subsequent collections.
                if word != 0 || is_ptr {
                    let word = if is_ptr {
                        self.state.promote_for_root(word)
                    } else {
                        word
                    };
                    self.state.root_result = Some((word, is_ptr));
                }
            }
            other => self.state.deliver(vproc, other, word, is_ptr),
        }
    }

    fn run_global_gc(&mut self) {
        let num_vprocs = self.state.num_vprocs();
        // Machine-global structures may hold pointers into any vproc's local
        // heap; promote those first so that each vproc's root set below only
        // needs to cover its own structures.
        self.state.globalise_shared_roots();
        // Gather per-vproc root sets: the running tasks are all quiescent at
        // this point (safe point), so the deques, joins, and channels hold
        // every root.
        let mut roots_per_vproc: Vec<Vec<Addr>> = Vec::with_capacity(num_vprocs);
        for vproc in 0..num_vprocs {
            // Machine-global structures (joins, channels, proxies, the root
            // result) are handed to vproc 0 only, so they are traced once.
            let extra: Vec<Addr> = Vec::new();
            if vproc == 0 {
                roots_per_vproc.push(self.state.gather_roots(0, &extra));
            } else {
                let roots: Vec<Addr> = self.state.vprocs[vproc].deque.with_tasks(|tasks| {
                    tasks.iter().flat_map(|t| t.roots.iter().copied()).collect()
                });
                roots_per_vproc.push(roots);
            }
        }

        let outcome = self
            .state
            .collector
            .global(&mut self.state.heap, &mut roots_per_vproc);

        // Scatter the rewritten roots back.
        for vproc in (1..num_vprocs).rev() {
            let roots = &roots_per_vproc[vproc];
            self.state.vprocs[vproc].deque.with_tasks(|tasks| {
                let mut cursor = 0;
                for task in tasks.iter_mut() {
                    for slot in task.roots.iter_mut() {
                        *slot = roots[cursor];
                        cursor += 1;
                    }
                }
                debug_assert_eq!(cursor, roots.len());
            });
        }
        let mut extra: Vec<Addr> = Vec::new();
        self.state.scatter_roots(0, &mut extra, &roots_per_vproc[0]);

        // The sequential collector attributes one virtual cost per vproc.
        // With a pause budget configured, model the threaded backend's
        // incremental shape: the cost is sliced into equal increments no
        // longer than the budget, each recorded as its own pause (the bound
        // is exact here — virtual increments carry no ramp-down slack).
        // Total virtual time is unchanged either way.
        let budget_ns = self.config.gc.pause_budget_us.map(|us| us as f64 * 1e3);
        for (vproc, cost) in outcome.per_vproc_cost.iter().enumerate() {
            self.state.charge_gc_cost(vproc, cost);
            let increments = match budget_ns {
                Some(budget) if budget > 0.0 => (cost.cpu_ns / budget).ceil().max(1.0),
                _ => 1.0,
            };
            let slice = cost.cpu_ns / increments;
            for _ in 0..increments as u64 {
                self.state.vprocs[vproc].stats.pauses.record(slice);
                self.state
                    .collector
                    .vproc_stats_mut(vproc)
                    .global_pauses
                    .record(slice);
            }
        }
        // The pending flag is satisfied by this collection.
        self.state.collector_clear_pending();
    }

    fn close_round(&mut self) {
        let num_nodes = self.state.num_nodes();
        let costs: Vec<VprocRoundCost> = self
            .state
            .vprocs
            .iter_mut()
            .map(|vp| vp.take_round_cost(num_nodes))
            .collect();
        if costs.iter().all(VprocRoundCost::is_idle) {
            return;
        }
        let breakdown = self.model.round_duration(&costs);
        self.clock_ns += breakdown.duration_ns;
        self.state.clock_base_ns = self.clock_ns;
        self.rounds += 1;
        for (vproc, cost) in costs.iter().enumerate() {
            self.state.vprocs[vproc].stats.busy_ns += self.model.serial_cost_ns(cost);
        }
    }

    fn report(&self) -> RunReport {
        let (allocated_objects, allocated_words) = (0..self.state.num_vprocs())
            .map(|v| self.state.heap.local(v).stats())
            .fold((0, 0), |(objs, words), s| {
                (
                    objs + s.nursery_allocated_objects,
                    words + s.nursery_allocated_words,
                )
            });
        let mut per_vproc: Vec<VprocRunStats> =
            self.state.vprocs.iter().map(|vp| vp.stats).collect();
        let mut placement_decisions = Vec::new();
        if let Some(controllers) = &self.state.adaptive {
            for (vproc, controller) in controllers.iter().enumerate() {
                per_vproc[vproc].placement_switches = controller.switches();
                placement_decisions.extend(
                    controller
                        .decisions()
                        .iter()
                        .map(|&decision| VprocPlacementDecision { vproc, decision }),
                );
            }
        }
        RunReport {
            elapsed_ns: self.clock_ns,
            wall_clock_ns: None,
            rounds: self.rounds,
            vprocs: self.state.num_vprocs(),
            allocated_objects,
            allocated_words,
            per_vproc,
            gc: self.state.collector.aggregate_stats(),
            traffic: self.state.traffic,
            placement_decisions,
        }
    }

    /// Total virtual time elapsed so far, in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }
}

impl crate::executor::Executor for Machine {
    fn backend(&self) -> crate::executor::Backend {
        crate::executor::Backend::Simulated
    }

    fn register_descriptor(&mut self, descriptor: Descriptor) -> DescriptorId {
        Machine::register_descriptor(self, descriptor)
    }

    fn create_channel(&mut self) -> ChannelId {
        Machine::create_channel(self)
    }

    fn spawn_root(&mut self, spec: TaskSpec) {
        Machine::spawn_root(self, spec)
    }

    fn run(&mut self) -> RunReport {
        Machine::run(self)
    }

    fn take_result(&mut self) -> Option<(Word, bool)> {
        Machine::take_result(self)
    }

    fn channel_stats(&self) -> ChannelStats {
        Machine::channel_stats(self)
    }
}

impl RuntimeState {
    fn promote_for_root(&mut self, word: Word) -> Word {
        let addr = Addr::new(word);
        if !self.heap.is_local(addr) {
            return word;
        }
        let owner = self.heap.space_of(addr).vproc().unwrap_or(0);
        let (new, outcome) = self.collector.promote(&mut self.heap, owner, addr);
        self.charge_gc_cost(owner, &outcome.cost);
        new.raw()
    }

    fn collector_clear_pending(&mut self) {
        // `Collector` exposes `request_global` but clears the flag itself when
        // a global collection runs; recreate the behaviour by checking and
        // resetting through a fresh request cycle.
        if self.collector.global_pending() {
            self.collector.clear_global_pending();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskResult;
    use mgc_heap::i64_to_word;

    #[test]
    fn machine_construction_spreads_vprocs() {
        let machine = Machine::new(MachineConfig::small_for_tests(2));
        assert_eq!(machine.heap().num_vprocs(), 2);
        // Two vprocs on a two-node machine land on different nodes.
        assert_ne!(
            machine.heap().local(0).node(),
            machine.heap().local(1).node()
        );
    }

    #[test]
    fn run_single_task_produces_result() {
        let mut machine = Machine::new(MachineConfig::small_for_tests(1));
        machine.spawn_root(TaskSpec::new("answer", |ctx| {
            ctx.work(10);
            TaskResult::Value(i64_to_word(42))
        }));
        let report = machine.run();
        assert_eq!(machine.take_result(), Some((i64_to_word(42), false)));
        assert_eq!(report.total_tasks(), 1);
        assert!(report.elapsed_ns > 0.0);
    }

    #[test]
    fn empty_machine_runs_to_completion() {
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        let report = machine.run();
        assert_eq!(report.total_tasks(), 0);
        assert_eq!(report.elapsed_ns, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one vproc")]
    fn zero_vprocs_rejected() {
        let _ = MachineConfig::new(Topology::dual_node_test(), 0);
    }
}
