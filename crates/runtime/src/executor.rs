//! The execution-backend interface.
//!
//! A program (a tree of [`TaskSpec`]s) can run on either backend:
//!
//! * [`Machine`](crate::Machine) — the discrete-event **simulated** backend:
//!   one driver thread executes every vproc and charges costs through the
//!   NUMA memory model, reproducing the paper's figures without the paper's
//!   hardware;
//! * [`ThreadedMachine`](crate::ThreadedMachine) — the **threaded** backend:
//!   each vproc is a real OS thread, local collections are genuinely
//!   lock-free, and global collections are a real stop-the-world barrier.
//!   Its clock is the wall clock.
//!
//! Workloads are written against this trait so every benchmark runs — and
//! can be cross-checked — on both.

use crate::channel::{ChannelId, ChannelStats};
use crate::stats::RunReport;
use crate::task::TaskSpec;
use mgc_heap::{Descriptor, DescriptorId, Word};
use std::fmt;
use std::str::FromStr;

/// Which execution backend to run a program on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The discrete-event simulation driven by the NUMA cost model.
    Simulated,
    /// One OS thread per vproc; real time, real synchronisation.
    Threaded,
}

impl Backend {
    /// Every backend, for sweeps.
    pub const ALL: [Backend; 2] = [Backend::Simulated, Backend::Threaded];

    /// The lower-case label used by `--backend` flags and reports.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Simulated => "simulated",
            Backend::Threaded => "threaded",
        }
    }

    /// The `MGC_BACKEND` environment override: `simulated` (or `sim`) /
    /// `threaded` (or `threads`). Parsed by
    /// [`crate::env::EnvOverrides`] — the one place `MGC_*` variables are
    /// interpreted. Returns `None` when the variable is unset; an
    /// unparseable value warns (naming the knob) and falls back to `None`
    /// so the caller's default applies.
    pub fn from_env() -> Option<Backend> {
        crate::env::EnvOverrides::capture().backend
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "simulated" | "sim" => Ok(Backend::Simulated),
            "threaded" | "threads" => Ok(Backend::Threaded),
            other => Err(format!(
                "unknown backend `{other}` (expected `simulated` or `threaded`)"
            )),
        }
    }
}

/// What a program needs from an execution backend: descriptor registration,
/// channel creation, spawning the root task, running to completion, and
/// reading the root task's result.
pub trait Executor {
    /// Which backend this is.
    fn backend(&self) -> Backend;

    /// Registers a mixed-object descriptor (before the program runs).
    fn register_descriptor(&mut self, descriptor: Descriptor) -> DescriptorId;

    /// Creates a channel (before the program runs).
    fn create_channel(&mut self) -> ChannelId;

    /// Spawns the program's root task on vproc 0.
    fn spawn_root(&mut self, spec: TaskSpec);

    /// Runs until every deque is empty and no joins are pending.
    fn run(&mut self) -> RunReport;

    /// The root task's result: the raw word and whether it is a heap
    /// pointer.
    fn take_result(&mut self) -> Option<(Word, bool)>;

    /// Channel and proxy statistics of the completed run.
    fn channel_stats(&self) -> ChannelStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(backend.label().parse::<Backend>().unwrap(), backend);
        }
        assert_eq!("sim".parse::<Backend>().unwrap(), Backend::Simulated);
        assert_eq!("threads".parse::<Backend>().unwrap(), Backend::Threaded);
        assert!("gpu".parse::<Backend>().is_err());
        assert_eq!(Backend::Threaded.to_string(), "threaded");
    }
}
