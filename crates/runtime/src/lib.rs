//! The Manticore-style runtime: vprocs, work stealing, CML-style channels,
//! and the discrete-event NUMA machine driver.
//!
//! This crate turns the collector of `mgc-core` and the heap of `mgc-heap`
//! into a runnable system, mirroring §2 of *Garbage Collection for Multicore
//! NUMA Machines*:
//!
//! * a [`Machine`] hosts one vproc per requested thread, pinned to cores
//!   spread sparsely across the NUMA nodes;
//! * programs are trees of [`TaskSpec`]s executed over vproc-local deques
//!   with work stealing; data captured by stolen work is promoted to the
//!   global heap lazily;
//! * explicit concurrency is available through channels (messages are
//!   promoted on send) and object proxies;
//! * every unit of mutator and collector work is charged to a per-round cost
//!   vector, and the `mgc-numa` bottleneck model converts each round into
//!   elapsed virtual time — which is how the speedup curves of the paper's
//!   evaluation are reproduced without a 48-core machine.
//!
//! # Example
//!
//! ```
//! use mgc_runtime::{Machine, MachineConfig, TaskSpec, TaskResult};
//! use mgc_heap::i64_to_word;
//!
//! let mut machine = Machine::new(MachineConfig::small_for_tests(2));
//! machine.spawn_root(TaskSpec::new("hello", |ctx| {
//!     let obj = ctx.alloc_raw(&[i64_to_word(41)]);
//!     let value = ctx.read_raw(obj, 0) + 1;
//!     TaskResult::Value(value)
//! }));
//! let report = machine.run();
//! assert_eq!(machine.take_result(), Some((42, false)));
//! assert!(report.elapsed_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod ctx;
mod machine;
mod stats;
mod task;
mod vproc;

pub use channel::{ChannelId, ChannelStats, ProxyId};
pub use ctx::{FieldInit, TaskCtx};
pub use machine::{Machine, MachineConfig, MutatorCostModel};
pub use stats::{RunReport, VprocRunStats};
pub use task::{Handle, TaskResult, TaskSpec};
