//! The Manticore-style runtime: vprocs, work stealing, CML-style channels,
//! and two execution backends for the same task programs.
//!
//! This crate turns the collector of `mgc-core` and the heap of `mgc-heap`
//! into a runnable system, mirroring §2 of *Garbage Collection for Multicore
//! NUMA Machines*:
//!
//! * programs are trees of [`TaskSpec`]s executed over vproc-local deques
//!   with work stealing; data that escapes a vproc is promoted to the
//!   global heap;
//! * explicit concurrency is available through channels (messages are
//!   promoted on send) and object proxies;
//! * the **simulated** backend ([`Machine`]) drives every vproc from one
//!   thread and charges each unit of mutator and collector work to a
//!   per-round cost vector; the `mgc-numa` bottleneck model converts each
//!   round into elapsed virtual time — which is how the speedup curves of
//!   the paper's evaluation are reproduced without a 48-core machine;
//! * the **threaded** backend ([`ThreadedMachine`]) runs each vproc on a
//!   real OS thread: local collections are genuinely lock-free and global
//!   collections are a real stop-the-world ramp-down barrier. Its clock is
//!   the wall clock.
//!
//! The [`Executor`] trait abstracts over the two; workloads written against
//! it run — and can be cross-checked — on both.
//!
//! The front door for running anything is the [`Experiment`] builder over
//! the open [`Program`] trait: pick a program, chain the scenario dimensions
//! (topology, vprocs, placement policy, backend, heap geometry, collector
//! settings), and get back a validated, self-describing [`RunRecord`].
//!
//! # Example
//!
//! ```
//! use mgc_runtime::{Experiment, Program, Executor, TaskSpec, TaskResult};
//! use mgc_heap::i64_to_word;
//!
//! struct Hello;
//!
//! impl Program for Hello {
//!     fn name(&self) -> &str {
//!         "hello"
//!     }
//!     fn spawn(&self, executor: &mut dyn Executor) {
//!         executor.spawn_root(TaskSpec::new("hello", |ctx| {
//!             let obj = ctx.alloc_raw(&[i64_to_word(41)]);
//!             let value = ctx.read_raw(obj, 0) + 1;
//!             TaskResult::Value(value)
//!         }));
//!     }
//! }
//!
//! let record = Experiment::new(Hello).vprocs(2).run().unwrap();
//! assert_eq!(record.result, Some((42, false)));
//! assert!(record.report.elapsed_ns > 0.0);
//! ```
//!
//! The raw machine API remains available when a test needs direct access to
//! the built backend:
//!
//! ```
//! use mgc_runtime::{Machine, MachineConfig, TaskSpec, TaskResult};
//! use mgc_heap::i64_to_word;
//!
//! let mut machine = Machine::new(MachineConfig::small_for_tests(2));
//! machine.spawn_root(TaskSpec::new("hello", |_ctx| {
//!     TaskResult::Value(i64_to_word(42))
//! }));
//! let report = machine.run();
//! assert_eq!(machine.take_result(), Some((42, false)));
//! assert!(report.elapsed_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod ctx;
pub mod env;
mod executor;
mod experiment;
mod machine;
mod program;
mod stats;
mod task;
mod threaded;
mod vproc;

pub use channel::{ChannelId, ChannelStats, ProxyId};
pub use ctx::{FieldInit, TaskCtx};
pub use env::EnvOverrides;
pub use executor::{Backend, Executor};
pub use experiment::{
    run_records_json, ConfigError, Experiment, ExperimentConfig, RunRecord, DEFAULT_QUANTUM_NS,
    RUN_RECORD_SCHEMA_VERSION,
};
pub use machine::{Machine, MachineConfig, MutatorCostModel};
// Re-exported so backend users can tune the collector (e.g. the
// `eager_publication` ablation) without depending on `mgc-core` directly.
pub use mgc_core::GcConfig;
// Re-exported so experiment callers can pick the promotion-chunk placement
// without depending on `mgc-numa` directly.
pub use mgc_numa::PlacementPolicy;
pub use program::{Checksum, Program};
pub use stats::{LatencyStats, RunReport, VprocRunStats};
pub use task::{Handle, TaskResult, TaskSpec};
pub use threaded::ThreadedMachine;
