//! Virtual processors (vprocs), their work-stealing deques, and the
//! threaded backend's steal-request mailboxes.
//!
//! A vproc is the runtime's abstraction of a computational resource (§2.2 of
//! the paper): it is pinned to a physical core, owns a local heap and a
//! work-stealing deque, and accumulates the cost of the work it performs
//! during the current scheduling round.
//!
//! The two execution backends queue work differently:
//!
//! * the **simulated** machine uses the [`WorkDeque`], a mutex-guarded
//!   double-ended queue locked uncontended from the single driver thread;
//! * the **threaded** machine splits each vproc's deque into a *private end*
//!   (a plain `VecDeque` owned by the worker thread — push and pop take no
//!   lock at all) and a *published end*: the [`StealMailbox`]. A thief never
//!   touches a victim's queue; it posts a [`StealRequest`] to the victim's
//!   mailbox and the victim hands a task over (promoting only that task's
//!   roots — the paper's lazy promotion-on-steal) at its next safe point.

use crate::stats::VprocRunStats;
use crate::task::Task;
use mgc_numa::{CoreId, NodeId, VprocRoundCost};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A mutex-guarded work-stealing deque of [`Task`]s, used by the
/// **simulated** execution backend only (the threaded backend's deques are
/// split into a worker-private `VecDeque` and a [`StealMailbox`]).
///
/// The owner pushes and pops at the back (LIFO — the most recently spawned,
/// most cache-friendly work); thieves steal from the front (FIFO — the
/// oldest, typically largest unit of work). The single driver thread locks
/// it uncontended for a handful of instructions per operation.
#[derive(Debug, Default)]
pub(crate) struct WorkDeque {
    inner: Mutex<VecDeque<Task>>,
}

impl WorkDeque {
    pub(crate) fn new() -> Self {
        WorkDeque::default()
    }

    /// Pushes a task on the owner's end.
    pub(crate) fn push(&self, task: Task) {
        self.inner.lock().expect("deque poisoned").push_back(task);
    }

    /// Pops a task from the owner's end (LIFO).
    pub(crate) fn pop_local(&self) -> Option<Task> {
        self.inner.lock().expect("deque poisoned").pop_back()
    }

    /// Steals a task from the thief-facing end (FIFO).
    pub(crate) fn steal(&self) -> Option<Task> {
        self.inner.lock().expect("deque poisoned").pop_front()
    }

    /// Number of queued tasks.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// True if no task is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with exclusive access to the queued tasks (used by the
    /// collectors to gather and rewrite the roots of queued work).
    pub(crate) fn with_tasks<R>(&self, f: impl FnOnce(&mut VecDeque<Task>) -> R) -> R {
        f(&mut self.inner.lock().expect("deque poisoned"))
    }
}

// ----------------------------------------------------------------------
// The threaded backend's steal-request mailbox.
// ----------------------------------------------------------------------

/// How long a thief blocks on one wait slice before re-checking the abort
/// conditions (victim panic, pending global collection, program exit).
pub(crate) const STEAL_WAIT_SLICE: Duration = Duration::from_micros(50);

/// Wait slices before a thief gives up on an unserved request and tries
/// another victim. Bounds the latency of a thief stuck behind a victim
/// running one long task.
pub(crate) const STEAL_PATIENCE_SLICES: u32 = 40;

/// The response side of one steal request.
#[derive(Debug, Default)]
pub(crate) enum StealResponse {
    /// Posted, not yet looked at by the victim.
    #[default]
    Pending,
    /// The victim handed a task over (its roots already promoted).
    Filled(Task),
    /// The victim had no stealable work (or a collection is pending).
    Declined,
    /// The thief gave up (timeout, pending collection, or machine poison)
    /// before the victim looked; the victim must keep its task.
    Cancelled,
}

/// One steal request: a single-use rendezvous cell between a thief and a
/// victim. The thief allocates it, posts it to the victim's mailbox, and
/// blocks on `cv`; the victim transitions `Pending → Filled/Declined` under
/// the lock, so a task is handed over exactly once or not at all — even when
/// the thief concurrently cancels (`Pending → Cancelled`).
#[derive(Debug, Default)]
pub(crate) struct StealRequest {
    /// The requesting thief's vproc id, so the victim can place the stolen
    /// task's promoted roots on the thief's node (`NodeLocal` placement)
    /// and attribute the steal's locality.
    thief: usize,
    state: Mutex<StealResponse>,
    cv: Condvar,
}

impl StealRequest {
    pub(crate) fn new(thief: usize) -> Arc<Self> {
        Arc::new(StealRequest {
            thief,
            ..StealRequest::default()
        })
    }

    /// The requesting thief's vproc id.
    pub(crate) fn thief(&self) -> usize {
        self.thief
    }

    /// Victim side: atomically claims the request if it is still pending.
    /// Returns `false` when the thief already cancelled.
    pub(crate) fn try_fill(&self, task: Task) -> Result<(), Task> {
        let mut state = self.state.lock().expect("steal request poisoned");
        match *state {
            StealResponse::Pending => {
                *state = StealResponse::Filled(task);
                self.cv.notify_all();
                Ok(())
            }
            StealResponse::Cancelled => Err(task),
            _ => unreachable!("a steal request is resolved exactly once"),
        }
    }

    /// Victim side: declines the request (no stealable work). A no-op when
    /// the thief already cancelled.
    pub(crate) fn decline(&self) {
        let mut state = self.state.lock().expect("steal request poisoned");
        if matches!(*state, StealResponse::Pending) {
            *state = StealResponse::Declined;
            self.cv.notify_all();
        }
    }

    /// True if the request has not been resolved or cancelled yet.
    pub(crate) fn is_pending(&self) -> bool {
        matches!(
            *self.state.lock().expect("steal request poisoned"),
            StealResponse::Pending
        )
    }

    /// Thief side: waits for the victim's answer in bounded slices.
    /// `should_abort` is polled between slices (machine poison, a pending
    /// global collection, program termination); when it fires — or after
    /// [`STEAL_PATIENCE_SLICES`] slices — the request is cancelled and
    /// `None` is returned. A thief therefore **never hangs** on a victim
    /// that panicked or will never answer.
    pub(crate) fn wait(&self, mut should_abort: impl FnMut() -> bool) -> Option<Task> {
        let mut state = self.state.lock().expect("steal request poisoned");
        let mut slices = 0u32;
        loop {
            match std::mem::replace(&mut *state, StealResponse::Cancelled) {
                StealResponse::Filled(task) => return Some(task),
                StealResponse::Declined => return None,
                StealResponse::Pending => {
                    if should_abort() || slices >= STEAL_PATIENCE_SLICES {
                        // Leave the `Cancelled` we just swapped in.
                        return None;
                    }
                    *state = StealResponse::Pending;
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(state, STEAL_WAIT_SLICE)
                        .expect("steal request poisoned");
                    state = guard;
                    slices += 1;
                }
                StealResponse::Cancelled => {
                    unreachable!("only the waiting thief cancels its own request")
                }
            }
        }
    }
}

/// The published end of a threaded vproc's split deque: a queue of steal
/// requests from thieves, plus a lock-free hint of how much private work the
/// owner currently has (so thieves pick victims without taking any lock).
#[derive(Debug, Default)]
pub(crate) struct StealMailbox {
    requests: Mutex<VecDeque<Arc<StealRequest>>>,
    /// Count of posted-but-not-taken requests, maintained alongside the
    /// queue so the owner's per-allocation safe-point check is a single
    /// atomic load instead of a mutex acquisition. Incremented *before* the
    /// push (so it never undercounts a queued request relative to a
    /// successful pop) and decremented only on an actual pop.
    pending: AtomicUsize,
    /// Owner-published length of the private deque (`Release` stores by the
    /// owner, `Acquire` loads by thieves). Purely a heuristic: a stale hint
    /// costs a declined request, never correctness.
    work_hint: AtomicUsize,
}

impl StealMailbox {
    pub(crate) fn new() -> Self {
        StealMailbox::default()
    }

    /// Thief side: posts a request.
    pub(crate) fn post(&self, request: Arc<StealRequest>) {
        self.pending.fetch_add(1, Ordering::Release);
        self.requests
            .lock()
            .expect("steal mailbox poisoned")
            .push_back(request);
    }

    /// Victim side: takes the oldest unanswered request, if any.
    pub(crate) fn take_request(&self) -> Option<Arc<StealRequest>> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let taken = self
            .requests
            .lock()
            .expect("steal mailbox poisoned")
            .pop_front();
        if taken.is_some() {
            self.pending.fetch_sub(1, Ordering::Release);
        }
        taken
    }

    /// True if a request is queued. A lock-free check: the owner calls this
    /// at *every* allocation-time safe point, so it must cost one atomic
    /// load, not a mutex round trip. A momentarily stale answer is fine —
    /// the next safe point re-checks.
    pub(crate) fn has_requests(&self) -> bool {
        self.pending.load(Ordering::Acquire) > 0
    }

    /// Owner side: publishes the current private-deque length.
    pub(crate) fn publish_work_hint(&self, len: usize) {
        self.work_hint.store(len, Ordering::Release);
    }

    /// Thief side: the victim's last published private-deque length.
    pub(crate) fn work_hint(&self) -> usize {
        self.work_hint.load(Ordering::Acquire)
    }
}

/// Per-vproc scheduler state of the simulated machine.
pub(crate) struct VProc {
    pub(crate) id: usize,
    pub(crate) core: CoreId,
    pub(crate) node: NodeId,
    pub(crate) deque: WorkDeque,
    pub(crate) round_cost: VprocRoundCost,
    pub(crate) stats: VprocRunStats,
}

impl fmt::Debug for VProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VProc")
            .field("id", &self.id)
            .field("core", &self.core)
            .field("node", &self.node)
            .field("queued_tasks", &self.deque.len())
            .finish()
    }
}

impl VProc {
    pub(crate) fn new(id: usize, core: CoreId, node: NodeId, num_nodes: usize) -> Self {
        VProc {
            id,
            core,
            node,
            deque: WorkDeque::new(),
            round_cost: VprocRoundCost::new(core, num_nodes),
            stats: VprocRunStats::default(),
        }
    }

    /// Pushes a task on the owner's end of the deque.
    pub(crate) fn push(&mut self, task: Task) {
        self.deque.push(task);
    }

    /// Pops a task from the owner's end of the deque (LIFO: the most recently
    /// spawned work, which is the most cache- and locality-friendly).
    pub(crate) fn pop_local(&mut self) -> Option<Task> {
        self.deque.pop_local()
    }

    /// Steals a task from the thief-facing end of the deque (FIFO: the
    /// oldest, typically largest, unit of work).
    pub(crate) fn steal_from(&mut self) -> Option<Task> {
        self.deque.steal()
    }

    /// Takes the accumulated round cost, leaving an empty one behind.
    pub(crate) fn take_round_cost(&mut self, num_nodes: usize) -> VprocRoundCost {
        std::mem::replace(
            &mut self.round_cost,
            VprocRoundCost::new(self.core, num_nodes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Delivery, TaskResult, TaskSpec};

    fn task(name: &'static str) -> Task {
        Task::from_spec(
            TaskSpec::new(name, |_| TaskResult::Unit),
            Delivery::Discard,
            0,
        )
    }

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let mut vp = VProc::new(0, CoreId::new(0), NodeId::new(0), 2);
        vp.push(task("a"));
        vp.push(task("b"));
        vp.push(task("c"));
        assert_eq!(vp.pop_local().unwrap().name(), "c");
        assert_eq!(vp.steal_from().unwrap().name(), "a");
        assert_eq!(vp.pop_local().unwrap().name(), "b");
        assert!(vp.pop_local().is_none());
        assert!(vp.steal_from().is_none());
    }

    #[test]
    fn round_cost_take_resets() {
        let mut vp = VProc::new(1, CoreId::new(3), NodeId::new(1), 4);
        vp.round_cost.add_cpu_ns(100.0);
        let taken = vp.take_round_cost(4);
        assert_eq!(taken.cpu_ns, 100.0);
        assert_eq!(vp.round_cost.cpu_ns, 0.0);
        assert_eq!(vp.round_cost.core, CoreId::new(3));
    }

    #[test]
    fn debug_shows_queue_length() {
        let mut vp = VProc::new(0, CoreId::new(0), NodeId::new(0), 1);
        vp.push(task("x"));
        assert!(format!("{vp:?}").contains("queued_tasks: 1"));
    }

    #[test]
    fn deque_is_shareable_across_threads() {
        let deque = std::sync::Arc::new(WorkDeque::new());
        deque.push(task("steal-me"));
        let thief = {
            let deque = deque.clone();
            std::thread::spawn(move || deque.steal().map(|t| t.name()))
        };
        assert_eq!(thief.join().unwrap(), Some("steal-me"));
        assert!(deque.is_empty());
        deque.with_tasks(|tasks| assert!(tasks.is_empty()));
    }

    fn tagged_task(tag: u64) -> Task {
        Task::from_spec(
            TaskSpec::new("stress", |_| TaskResult::Unit).with_value(tag),
            Delivery::Discard,
            0,
        )
    }

    #[test]
    fn steal_request_fill_decline_and_cancel_transitions() {
        // Fill wins over a later decline attempt (decline is then a no-op).
        let request = StealRequest::new(0);
        assert!(request.is_pending());
        request.try_fill(tagged_task(7)).unwrap();
        assert!(!request.is_pending());
        let task = request.wait(|| false).expect("filled request yields task");
        assert_eq!(task.values, vec![7]);

        // Decline resolves the wait with `None`.
        let request = StealRequest::new(0);
        request.decline();
        assert!(request.wait(|| false).is_none());

        // A cancelled request rejects a late fill, handing the task back.
        let request = StealRequest::new(0);
        assert!(request.wait(|| true).is_none(), "abort cancels immediately");
        let rejected = request.try_fill(tagged_task(9)).unwrap_err();
        assert_eq!(rejected.values, vec![9]);
        request.decline(); // late decline on a cancelled request is a no-op
    }

    #[test]
    fn steal_wait_times_out_when_the_victim_never_answers() {
        // The victim "panicked": nobody will ever resolve the request. The
        // thief must return within its bounded patience instead of hanging.
        let request = StealRequest::new(0);
        let start = std::time::Instant::now();
        assert!(request.wait(|| false).is_none());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the wait must be bounded"
        );
    }

    /// The satellite stress test: one victim + N thieves exchange steal
    /// requests under contention; every task is handed over exactly once.
    #[test]
    fn steal_mailbox_one_victim_many_thieves_loses_no_tasks() {
        const THIEVES: usize = 4;
        const TASKS: u64 = 400;

        let mailbox = Arc::new(StealMailbox::new());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let victim = {
            let mailbox = Arc::clone(&mailbox);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut private: VecDeque<Task> = (0..TASKS).map(tagged_task).collect();
                mailbox.publish_work_hint(private.len());
                let mut kept: Vec<u64> = Vec::new();
                loop {
                    while let Some(request) = mailbox.take_request() {
                        match private.pop_front() {
                            Some(task) => {
                                if let Err(task) = request.try_fill(task) {
                                    // The thief cancelled: keep the task.
                                    private.push_front(task);
                                }
                            }
                            None => request.decline(),
                        }
                        mailbox.publish_work_hint(private.len());
                    }
                    // The victim also runs tasks of its own, contending with
                    // the handoff path.
                    if let Some(task) = private.pop_back() {
                        kept.push(task.values[0]);
                        mailbox.publish_work_hint(private.len());
                    } else {
                        break;
                    }
                }
                done.store(true, Ordering::Release);
                // Drain late requests so no thief waits a full timeout.
                while let Some(request) = mailbox.take_request() {
                    request.decline();
                }
                kept
            })
        };

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let mailbox = Arc::clone(&mailbox);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut stolen: Vec<u64> = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        if mailbox.work_hint() == 0 {
                            std::thread::yield_now();
                            continue;
                        }
                        let request = StealRequest::new(0);
                        mailbox.post(Arc::clone(&request));
                        if let Some(task) = request.wait(|| done.load(Ordering::Acquire)) {
                            stolen.push(task.values[0]);
                        }
                    }
                    // Requests posted right before `done` flipped are drained
                    // and declined by the victim; a cancelled request never
                    // swallows a task (`try_fill` hands it back).
                    stolen
                })
            })
            .collect();

        let mut seen = victim.join().expect("victim panicked");
        for thief in thieves {
            seen.extend(thief.join().expect("thief panicked"));
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..TASKS).collect::<Vec<_>>(),
            "every task must be run exactly once, by the victim or a thief"
        );
    }
}
