//! Virtual processors (vprocs) and their work-stealing deques.
//!
//! A vproc is the runtime's abstraction of a computational resource (§2.2 of
//! the paper): it is pinned to a physical core, owns a local heap and a
//! work-stealing deque, and accumulates the cost of the work it performs
//! during the current scheduling round.
//!
//! The deque itself is the [`WorkDeque`]: a mutex-guarded double-ended queue
//! shared by both execution backends. The simulated machine locks it
//! uncontended from its single driver thread; the real-threads backend locks
//! it from the owning worker (LIFO end) and from thieves (FIFO end). No
//! `unsafe` lock-free structure is needed — the lock is held for a handful
//! of instructions per operation.

use crate::stats::VprocRunStats;
use crate::task::Task;
use mgc_numa::{CoreId, NodeId, VprocRoundCost};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// A mutex-guarded work-stealing deque of [`Task`]s, shared between the
/// simulated and the threaded execution backends.
///
/// The owner pushes and pops at the back (LIFO — the most recently spawned,
/// most cache-friendly work); thieves steal from the front (FIFO — the
/// oldest, typically largest unit of work).
#[derive(Debug, Default)]
pub(crate) struct WorkDeque {
    inner: Mutex<VecDeque<Task>>,
}

impl WorkDeque {
    pub(crate) fn new() -> Self {
        WorkDeque::default()
    }

    /// Pushes a task on the owner's end.
    pub(crate) fn push(&self, task: Task) {
        self.inner.lock().expect("deque poisoned").push_back(task);
    }

    /// Pops a task from the owner's end (LIFO).
    pub(crate) fn pop_local(&self) -> Option<Task> {
        self.inner.lock().expect("deque poisoned").pop_back()
    }

    /// Steals a task from the thief-facing end (FIFO).
    pub(crate) fn steal(&self) -> Option<Task> {
        self.inner.lock().expect("deque poisoned").pop_front()
    }

    /// Number of queued tasks.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// True if no task is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` with exclusive access to the queued tasks (used by the
    /// collectors to gather and rewrite the roots of queued work).
    pub(crate) fn with_tasks<R>(&self, f: impl FnOnce(&mut VecDeque<Task>) -> R) -> R {
        f(&mut self.inner.lock().expect("deque poisoned"))
    }
}

/// Per-vproc scheduler state of the simulated machine.
pub(crate) struct VProc {
    pub(crate) id: usize,
    pub(crate) core: CoreId,
    pub(crate) node: NodeId,
    pub(crate) deque: WorkDeque,
    pub(crate) round_cost: VprocRoundCost,
    pub(crate) stats: VprocRunStats,
}

impl fmt::Debug for VProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VProc")
            .field("id", &self.id)
            .field("core", &self.core)
            .field("node", &self.node)
            .field("queued_tasks", &self.deque.len())
            .finish()
    }
}

impl VProc {
    pub(crate) fn new(id: usize, core: CoreId, node: NodeId, num_nodes: usize) -> Self {
        VProc {
            id,
            core,
            node,
            deque: WorkDeque::new(),
            round_cost: VprocRoundCost::new(core, num_nodes),
            stats: VprocRunStats::default(),
        }
    }

    /// Pushes a task on the owner's end of the deque.
    pub(crate) fn push(&mut self, task: Task) {
        self.deque.push(task);
    }

    /// Pops a task from the owner's end of the deque (LIFO: the most recently
    /// spawned work, which is the most cache- and locality-friendly).
    pub(crate) fn pop_local(&mut self) -> Option<Task> {
        self.deque.pop_local()
    }

    /// Steals a task from the thief-facing end of the deque (FIFO: the
    /// oldest, typically largest, unit of work).
    pub(crate) fn steal_from(&mut self) -> Option<Task> {
        self.deque.steal()
    }

    /// Takes the accumulated round cost, leaving an empty one behind.
    pub(crate) fn take_round_cost(&mut self, num_nodes: usize) -> VprocRoundCost {
        std::mem::replace(
            &mut self.round_cost,
            VprocRoundCost::new(self.core, num_nodes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Delivery, TaskResult, TaskSpec};

    fn task(name: &'static str) -> Task {
        Task::from_spec(
            TaskSpec::new(name, |_| TaskResult::Unit),
            Delivery::Discard,
            0,
        )
    }

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let mut vp = VProc::new(0, CoreId::new(0), NodeId::new(0), 2);
        vp.push(task("a"));
        vp.push(task("b"));
        vp.push(task("c"));
        assert_eq!(vp.pop_local().unwrap().name(), "c");
        assert_eq!(vp.steal_from().unwrap().name(), "a");
        assert_eq!(vp.pop_local().unwrap().name(), "b");
        assert!(vp.pop_local().is_none());
        assert!(vp.steal_from().is_none());
    }

    #[test]
    fn round_cost_take_resets() {
        let mut vp = VProc::new(1, CoreId::new(3), NodeId::new(1), 4);
        vp.round_cost.add_cpu_ns(100.0);
        let taken = vp.take_round_cost(4);
        assert_eq!(taken.cpu_ns, 100.0);
        assert_eq!(vp.round_cost.cpu_ns, 0.0);
        assert_eq!(vp.round_cost.core, CoreId::new(3));
    }

    #[test]
    fn debug_shows_queue_length() {
        let mut vp = VProc::new(0, CoreId::new(0), NodeId::new(0), 1);
        vp.push(task("x"));
        assert!(format!("{vp:?}").contains("queued_tasks: 1"));
    }

    #[test]
    fn deque_is_shareable_across_threads() {
        let deque = std::sync::Arc::new(WorkDeque::new());
        deque.push(task("steal-me"));
        let thief = {
            let deque = deque.clone();
            std::thread::spawn(move || deque.steal().map(|t| t.name()))
        };
        assert_eq!(thief.join().unwrap(), Some("steal-me"));
        assert!(deque.is_empty());
        deque.with_tasks(|tasks| assert!(tasks.is_empty()));
    }
}
