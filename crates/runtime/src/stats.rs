//! Run-level statistics and reports.

use mgc_core::{GcStats, Histogram, PauseStats};
use mgc_numa::{PlacementDecision, TrafficStats};
use serde::{Deserialize, Serialize};

/// A summary of the end-to-end request latencies a serving program recorded
/// via [`TaskCtx::record_latency_ns`](crate::TaskCtx::record_latency_ns).
///
/// This is the shared log2-bucket [`Histogram`] under a latency-flavoured
/// name — the same tested code as [`PauseStats`], so pause and latency
/// percentiles have identical semantics and merge the same way across
/// vprocs.
pub type LatencyStats = Histogram;

/// Statistics for one vproc over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VprocRunStats {
    /// Tasks executed by this vproc.
    pub tasks_run: u64,
    /// Tasks this vproc stole from other vprocs.
    pub steals: u64,
    /// Steals whose victim lived on this vproc's NUMA node.
    pub steals_same_node: u64,
    /// Steals whose victim lived on another NUMA node (only reached after
    /// same-node victims came up empty, or via the starvation escape hatch).
    pub steals_cross_node: u64,
    /// Objects promoted because work or results crossed vprocs.
    pub lazy_promotions: u64,
    /// Steal requests this vproc serviced as a victim by handing a task
    /// over (threaded backend only).
    pub steal_requests_served: u64,
    /// Steal requests this vproc declined because its private deque was
    /// empty (threaded backend only).
    pub steal_requests_declined: u64,
    /// Promotion operations performed because work was actually stolen
    /// (the stolen task's roots).
    pub promotions_at_steal: u64,
    /// Promotion operations performed because data was published to a
    /// machine-global structure (continuations, delivered results, channel
    /// messages, proxies).
    pub promotions_at_publish: u64,
    /// Bytes promoted by steal-driven promotions.
    pub promoted_bytes_at_steal: u64,
    /// Bytes promoted by publication-driven promotions.
    pub promoted_bytes_at_publish: u64,
    /// Bytes this vproc promoted into chunks on the consumer's node (the
    /// thief's node for steal promotions, the promoting vproc's own node
    /// for publications and major-collection promotions).
    pub promoted_bytes_local: u64,
    /// Bytes this vproc promoted into chunks on some other node — the
    /// cross-node traffic the `NodeLocal` placement minimises.
    pub promoted_bytes_remote: u64,
    /// Effective-mode switches made by this vproc's adaptive placement
    /// controller (always zero under the static policies).
    pub placement_switches: u64,
    /// Whether this vproc's worker thread achieved a real OS-level NUMA pin
    /// ([`NodeBinding::Pinned`](mgc_numa::NodeBinding)) rather than the
    /// deterministic tagged fallback. Always `false` on the simulated
    /// backend, which has no threads to pin.
    pub node_binding_pinned: bool,
    /// Virtual nanoseconds this vproc spent busy (compute + memory + GC).
    pub busy_ns: f64,
    /// Every mutator-visible pause this vproc experienced — minor, major,
    /// and each global-collection increment — as one series. The
    /// kind-classified split lives in the aggregated
    /// [`GcStats`](mgc_core::GcStats).
    pub pauses: PauseStats,
    /// End-to-end latencies of the requests this vproc completed, recorded
    /// by serving programs via
    /// [`TaskCtx::record_latency_ns`](crate::TaskCtx::record_latency_ns)
    /// (empty for batch programs that never record one).
    pub latency: LatencyStats,
}

/// The result of running a program on either execution backend.
///
/// The simulated machine reports virtual time in `elapsed_ns` and leaves
/// `wall_clock_ns` empty; the real-threads backend reports the measured
/// wall-clock duration in **both** (its only notion of time is the real
/// one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total time of the run, in nanoseconds: virtual time on the simulated
    /// backend, wall-clock time on the threaded backend.
    pub elapsed_ns: f64,
    /// Measured wall-clock nanoseconds (threaded backend only).
    pub wall_clock_ns: Option<f64>,
    /// Number of scheduling rounds executed (simulated backend only).
    pub rounds: u64,
    /// Number of vprocs used.
    pub vprocs: usize,
    /// Total objects allocated in vproc nurseries.
    pub allocated_objects: u64,
    /// Total words allocated in vproc nurseries.
    pub allocated_words: u64,
    /// Per-vproc scheduling statistics.
    pub per_vproc: Vec<VprocRunStats>,
    /// Aggregated collector statistics.
    pub gc: GcStats,
    /// Machine-wide traffic statistics by locality class.
    pub traffic: TrafficStats,
    /// Every adaptive placement decision made during the run, attributed to
    /// the vproc whose controller made it (empty under static policies).
    pub placement_decisions: Vec<VprocPlacementDecision>,
}

/// One adaptive placement decision, attributed to the vproc whose
/// controller made it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VprocPlacementDecision {
    /// The vproc whose controller switched.
    pub vproc: usize,
    /// The switch itself: when, from/to which mode, and why.
    pub decision: PlacementDecision,
}

impl RunReport {
    /// Total virtual time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns / 1e9
    }

    /// Total tasks executed across all vprocs.
    pub fn total_tasks(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.tasks_run).sum()
    }

    /// Total steals across all vprocs.
    pub fn total_steals(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.steals).sum()
    }

    /// Total steals whose victim was on the thief's node.
    pub fn steals_same_node(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.steals_same_node).sum()
    }

    /// Total steals that crossed NUMA nodes.
    pub fn steals_cross_node(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.steals_cross_node).sum()
    }

    /// Total adaptive placement-mode switches across all vprocs (zero under
    /// the static policies).
    pub fn placement_switches(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.placement_switches).sum()
    }

    /// Total bytes promoted into chunks on the consumer's node.
    pub fn promoted_bytes_local(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.promoted_bytes_local).sum()
    }

    /// Total bytes promoted into chunks on a node other than the
    /// consumer's — the cross-node traffic `NodeLocal` placement minimises.
    pub fn promoted_bytes_remote(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.promoted_bytes_remote).sum()
    }

    /// Total bytes promoted to the global heap by major collections and
    /// explicit promotions (the quantity lazy promotion minimises).
    pub fn total_promoted_bytes(&self) -> u64 {
        self.gc.major_promoted_bytes + self.gc.promotion_bytes
    }

    /// Total promotion operations that happened because work was stolen.
    pub fn promotions_at_steal(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.promotions_at_steal).sum()
    }

    /// Total promotion operations that happened because data was published
    /// to a machine-global structure.
    pub fn promotions_at_publish(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.promotions_at_publish).sum()
    }

    /// Total bytes promoted because work was actually stolen.
    pub fn promoted_bytes_at_steal(&self) -> u64 {
        self.per_vproc
            .iter()
            .map(|v| v.promoted_bytes_at_steal)
            .sum()
    }

    /// Total bytes promoted because data was published to a machine-global
    /// structure.
    pub fn promoted_bytes_at_publish(&self) -> u64 {
        self.per_vproc
            .iter()
            .map(|v| v.promoted_bytes_at_publish)
            .sum()
    }

    /// Total steal requests served by victims (threaded backend only).
    pub fn steal_requests_served(&self) -> u64 {
        self.per_vproc.iter().map(|v| v.steal_requests_served).sum()
    }

    /// Total steal requests declined by victims (threaded backend only).
    pub fn steal_requests_declined(&self) -> u64 {
        self.per_vproc
            .iter()
            .map(|v| v.steal_requests_declined)
            .sum()
    }

    /// Fraction of total virtual time spent in garbage collection.
    pub fn gc_fraction(&self) -> f64 {
        if self.elapsed_ns == 0.0 {
            return 0.0;
        }
        (self.gc.total_pause_ns() / self.vprocs as f64) / self.elapsed_ns
    }

    /// Every pause of every kind across every vproc, merged into one
    /// machine-wide series — what the report's p50/p99/max pause numbers
    /// are computed from.
    pub fn pause_stats(&self) -> PauseStats {
        self.gc.all_pauses()
    }

    /// The largest single mutator-visible pause of the run, in nanoseconds.
    pub fn max_pause_ns(&self) -> f64 {
        self.pause_stats().max_ns
    }

    /// Pauses for global-collection increments only — the series a pause
    /// budget bounds.
    pub fn global_pause_stats(&self) -> PauseStats {
        self.gc.global_pauses
    }

    /// Every recorded request latency across every vproc, merged into one
    /// machine-wide series — what a serving run's p50/p99/p999 numbers are
    /// computed from. Empty for batch programs.
    pub fn latency_stats(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for v in &self.per_vproc {
            all.merge(&v.latency);
        }
        all
    }

    /// Number of requests served (latency samples recorded) across all
    /// vprocs. Zero for batch programs.
    pub fn requests_served(&self) -> u64 {
        self.latency_stats().count
    }

    /// Requests served per second of run time (zero when no requests were
    /// served or the run recorded no elapsed time).
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed_seconds();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests_served() as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let report = RunReport {
            elapsed_ns: 2e9,
            wall_clock_ns: None,
            rounds: 10,
            vprocs: 2,
            allocated_objects: 0,
            allocated_words: 0,
            per_vproc: vec![
                VprocRunStats {
                    tasks_run: 5,
                    steals: 1,
                    lazy_promotions: 2,
                    promotions_at_steal: 1,
                    promotions_at_publish: 1,
                    busy_ns: 1e9,
                    ..VprocRunStats::default()
                },
                VprocRunStats {
                    tasks_run: 3,
                    busy_ns: 0.5e9,
                    ..VprocRunStats::default()
                },
            ],
            gc: GcStats::default(),
            traffic: TrafficStats::default(),
            placement_decisions: Vec::new(),
        };
        assert_eq!(report.elapsed_seconds(), 2.0);
        assert_eq!(report.total_tasks(), 8);
        assert_eq!(report.total_steals(), 1);
        assert_eq!(report.gc_fraction(), 0.0);
        assert_eq!(report.promotions_at_steal(), 1);
        assert_eq!(report.promotions_at_publish(), 1);
        assert_eq!(report.total_promoted_bytes(), 0);
        assert!(report.pause_stats().is_empty());
        assert_eq!(report.max_pause_ns(), 0.0);
    }

    #[test]
    fn pause_accessors_read_the_merged_gc_series() {
        let mut gc = GcStats::default();
        gc.minor_pauses.record(1_000.0);
        gc.major_pauses.record(5_000.0);
        gc.global_pauses.record(20_000.0);
        gc.global_pauses.record(8_000.0);
        let report = RunReport {
            elapsed_ns: 1e9,
            wall_clock_ns: None,
            rounds: 0,
            vprocs: 1,
            allocated_objects: 0,
            allocated_words: 0,
            per_vproc: vec![VprocRunStats::default()],
            gc,
            traffic: TrafficStats::default(),
            placement_decisions: Vec::new(),
        };
        assert_eq!(report.pause_stats().count, 4);
        assert!((report.max_pause_ns() - 20_000.0).abs() < 1e-9);
        assert_eq!(report.global_pause_stats().count, 2);
        assert!((report.gc_fraction() - 34_000.0 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn latency_accessors_merge_per_vproc_series() {
        let mut a = VprocRunStats::default();
        a.latency.record(1_000.0);
        a.latency.record(3_000.0);
        let mut b = VprocRunStats::default();
        b.latency.record(9_000.0);
        let report = RunReport {
            elapsed_ns: 2e9,
            wall_clock_ns: None,
            rounds: 0,
            vprocs: 2,
            allocated_objects: 0,
            allocated_words: 0,
            per_vproc: vec![a, b],
            gc: GcStats::default(),
            traffic: TrafficStats::default(),
            placement_decisions: Vec::new(),
        };
        assert_eq!(report.requests_served(), 3);
        assert!((report.latency_stats().max_ns - 9_000.0).abs() < 1e-9);
        assert!((report.throughput_rps() - 1.5).abs() < 1e-9);

        // Batch programs record nothing: zero served, zero throughput.
        let batch = RunReport {
            per_vproc: vec![VprocRunStats::default()],
            ..report
        };
        assert_eq!(batch.requests_served(), 0);
        assert_eq!(batch.throughput_rps(), 0.0);
    }
}
