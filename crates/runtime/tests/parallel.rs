//! Integration tests for the runtime: fork/join parallelism, work stealing
//! with lazy promotion, channels, proxies, and GC under allocation pressure
//! — on both execution backends.
//!
//! The threaded tests honour `MGC_VPROCS` (the CI threaded-smoke job runs
//! them with `MGC_VPROCS=4 --test-threads=1` under a job timeout, so a
//! deadlock in the stop-the-world barrier fails fast instead of hanging).

use mgc_heap::{i64_to_word, word_to_i64, HeapConfig};
use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Executor, Machine, MachineConfig, TaskResult, TaskSpec, ThreadedMachine};

fn machine(vprocs: usize) -> Machine {
    Machine::new(MachineConfig::small_for_tests(vprocs))
}

/// Thread count for the threaded-backend tests; override with `MGC_VPROCS`
/// (parsed by `mgc_runtime::env`, the one place `MGC_*` knobs are
/// interpreted).
fn threaded_vprocs() -> usize {
    mgc_runtime::EnvOverrides::capture().vprocs.unwrap_or(4)
}

fn threaded_machine() -> ThreadedMachine {
    ThreadedMachine::new(MachineConfig::small_for_tests(threaded_vprocs()))
}

#[test]
fn fork_join_sums_child_values() {
    let mut m = machine(2);
    m.spawn_root(TaskSpec::new("root", |ctx| {
        let children: Vec<_> = (0..8i64)
            .map(|i| {
                (
                    TaskSpec::new("child", move |ctx| {
                        ctx.work(100);
                        TaskResult::Value(i64_to_word(i * i))
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("sum", |ctx| {
                let total: i64 = (0..ctx.num_values())
                    .map(|i| word_to_i64(ctx.value(i)))
                    .sum();
                TaskResult::Value(i64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
    let report = m.run();
    let expected: i64 = (0..8).map(|i| i * i).sum();
    assert_eq!(m.take_result(), Some((i64_to_word(expected), false)));
    // 1 root + 8 children + 1 continuation.
    assert_eq!(report.total_tasks(), 10);
}

#[test]
fn nested_fork_join_builds_a_tree_sum() {
    // Recursive divide-and-conquer sum over a range, exercising deep
    // continuation chains.
    fn sum_range(lo: i64, hi: i64) -> TaskSpec {
        TaskSpec::new("sum-range", move |ctx| {
            if hi - lo <= 4 {
                ctx.work((hi - lo) as u64);
                return TaskResult::Value(i64_to_word((lo..hi).sum()));
            }
            let mid = (lo + hi) / 2;
            ctx.fork_join(
                vec![(sum_range(lo, mid), vec![]), (sum_range(mid, hi), vec![])],
                TaskSpec::new("combine", |ctx| {
                    let a = word_to_i64(ctx.value(0));
                    let b = word_to_i64(ctx.value(1));
                    TaskResult::Value(i64_to_word(a + b))
                }),
                &[],
            );
            TaskResult::Unit
        })
    }

    for vprocs in [1, 2, 4] {
        let mut m = machine(vprocs);
        m.spawn_root(sum_range(0, 1000));
        m.run();
        assert_eq!(
            m.take_result(),
            Some((i64_to_word((0..1000).sum()), false)),
            "vprocs = {vprocs}"
        );
    }
}

#[test]
fn pointer_results_cross_vprocs_via_promotion() {
    let mut m = machine(4);
    m.spawn_root(TaskSpec::new("root", |ctx| {
        let children: Vec<_> = (0..16i64)
            .map(|i| {
                (
                    TaskSpec::new("make-box", move |ctx| {
                        // Heavy enough that one child exceeds the scheduling
                        // quantum, so the other vprocs steal the rest, and
                        // allocation-heavy enough that collections happen on
                        // whichever vproc runs this.
                        ctx.work(200_000);
                        let mark = ctx.root_mark();
                        for _ in 0..50 {
                            ctx.alloc_raw(&[0xfeed; 16]);
                            ctx.truncate_roots(mark);
                        }
                        let boxed = ctx.alloc_raw(&[i64_to_word(i), i64_to_word(i * 2)]);
                        TaskResult::Ptr(boxed)
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("sum-boxes", |ctx| {
                let mut total = 0i64;
                for i in 0..ctx.num_roots() {
                    let handle = ctx.input(i);
                    total += word_to_i64(ctx.read_raw(handle, 0));
                    total += word_to_i64(ctx.read_raw(handle, 1));
                }
                TaskResult::Value(i64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
    let report = m.run();
    let expected: i64 = (0..16).map(|i| i + 2 * i).sum();
    assert_eq!(m.take_result(), Some((i64_to_word(expected), false)));
    // With 4 vprocs and only vproc 0 seeded, work must have been stolen.
    assert!(report.total_steals() > 0, "expected work stealing to occur");
    // No invariant violations survived the run.
    assert!(mgc_heap::verify_heap(m.heap()).is_empty());
}

#[test]
fn heavy_allocation_triggers_all_collection_kinds() {
    let mut cfg = MachineConfig::small_for_tests(2);
    cfg.heap = HeapConfig::small_for_tests();
    let mut m = Machine::new(cfg);
    m.spawn_root(TaskSpec::new("allocate-a-lot", |ctx| {
        // Keep a growing list alive so data survives minors, ages to old,
        // gets promoted by majors, and eventually forces a global GC.
        let mut list = None;
        for i in 0..4000u64 {
            let mark = ctx.root_mark();
            let cell = ctx.alloc_vector(&[list, None]);
            let value = ctx.alloc_raw(&[i]);
            // Rebuild the cons cell with the value attached.
            let cons = ctx.alloc_vector(&[Some(value), list]);
            let _ = cell;
            list = Some(ctx.keep(cons, mark));
        }
        TaskResult::Unit
    }));
    let report = m.run();
    assert!(report.gc.minor_collections > 0, "minors expected");
    assert!(report.gc.major_collections > 0, "majors expected");
    assert!(report.gc.global_collections > 0, "globals expected");
    assert!(report.gc.total_moved_bytes() > 0);
    assert!(mgc_heap::verify_heap(m.heap()).is_empty());
}

#[test]
fn channels_promote_messages_and_deliver_in_order() {
    let mut m = machine(2);
    let channel = m.create_channel();
    m.spawn_root(TaskSpec::new("producer-consumer", move |ctx| {
        for i in 0..5i64 {
            let msg = ctx.alloc_raw(&[i64_to_word(i)]);
            ctx.send(channel, msg);
        }
        let mut received = 0i64;
        let mut sum = 0i64;
        while let Some(msg) = ctx.recv(channel) {
            sum += word_to_i64(ctx.read_raw(msg, 0));
            received += 1;
        }
        assert_eq!(received, 5);
        TaskResult::Value(i64_to_word(sum))
    }));
    m.run();
    assert_eq!(m.take_result(), Some((i64_to_word((0..5).sum()), false)));
    let stats = m.channel_stats();
    assert_eq!(stats.sends, 5);
    assert_eq!(stats.receives, 5);
    // Messages live in the global heap after sending.
    assert!(mgc_heap::verify_heap(m.heap()).is_empty());
}

#[test]
fn proxies_promote_only_when_resolved_remotely() {
    let mut m = machine(2);
    m.spawn_root(TaskSpec::new("proxy-demo", |ctx| {
        let local = ctx.alloc_raw(&[i64_to_word(77)]);
        let proxy = ctx.create_proxy(local);
        // Resolving on the owner does not promote.
        let same = ctx.resolve_proxy(proxy);
        assert_eq!(word_to_i64(ctx.read_raw(same, 0)), 77);
        TaskResult::Unit
    }));
    m.run();
    let stats = m.channel_stats();
    assert_eq!(stats.proxies_created, 1);
    assert_eq!(stats.proxies_promoted, 0);
}

#[test]
fn speedup_improves_with_more_vprocs_for_independent_work() {
    // A perfectly parallel compute-heavy workload must get faster (in virtual
    // time) as vprocs are added — the core property behind Figures 4 and 5.
    let elapsed = |vprocs: usize| {
        let mut m = Machine::new(MachineConfig::new(Topology::intel_xeon_32(), vprocs));
        m.spawn_root(TaskSpec::new("fanout", |ctx| {
            let children: Vec<_> = (0..64)
                .map(|_| {
                    (
                        TaskSpec::new("crunch", |ctx| {
                            ctx.work(2_000_000);
                            TaskResult::Unit
                        }),
                        vec![],
                    )
                })
                .collect();
            ctx.fork_join(children, TaskSpec::new("done", |_| TaskResult::Unit), &[]);
            TaskResult::Unit
        }));
        m.run().elapsed_ns
    };
    let t1 = elapsed(1);
    let t8 = elapsed(8);
    let t32 = elapsed(32);
    assert!(
        t8 < t1 * 0.3,
        "8 vprocs should be well over 3x faster: {t1} vs {t8}"
    );
    assert!(t32 < t8, "32 vprocs should beat 8: {t8} vs {t32}");
}

#[test]
fn socket_zero_policy_is_slower_under_memory_pressure() {
    // Streaming through heap data with every page on node 0 must cost more
    // virtual time than with local placement (the Figure 5 vs Figure 7 gap).
    let elapsed = |policy: AllocPolicy| {
        let mut cfg = MachineConfig::new(Topology::amd_magny_cours_48(), 16).with_policy(policy);
        cfg.gc.verify_after_gc = false;
        let mut m = Machine::new(cfg);
        m.spawn_root(TaskSpec::new("spread", |ctx| {
            let children: Vec<_> = (0..16)
                .map(|_| {
                    (
                        TaskSpec::new("stream", |ctx| {
                            let mark = ctx.root_mark();
                            for _ in 0..200 {
                                let leaf = ctx.alloc_raw(&[1u64; 512]);
                                let data = ctx.read_words(leaf);
                                ctx.work(data.len() as u64);
                                ctx.truncate_roots(mark);
                            }
                            TaskResult::Unit
                        }),
                        vec![],
                    )
                })
                .collect();
            ctx.fork_join(children, TaskSpec::new("done", |_| TaskResult::Unit), &[]);
            TaskResult::Unit
        }));
        m.run().elapsed_ns
    };
    let local = elapsed(AllocPolicy::Local);
    let socket0 = elapsed(AllocPolicy::SocketZero);
    assert!(
        socket0 > local,
        "socket-zero placement should be slower: local={local} socket0={socket0}"
    );
}

// ----------------------------------------------------------------------
// The same programs on the real-threads backend.
// ----------------------------------------------------------------------

#[test]
fn threaded_nested_fork_join_builds_a_tree_sum() {
    fn sum_range(lo: i64, hi: i64) -> TaskSpec {
        TaskSpec::new("sum-range", move |ctx| {
            if hi - lo <= 4 {
                ctx.work((hi - lo) as u64);
                return TaskResult::Value(i64_to_word((lo..hi).sum()));
            }
            let mid = (lo + hi) / 2;
            ctx.fork_join(
                vec![(sum_range(lo, mid), vec![]), (sum_range(mid, hi), vec![])],
                TaskSpec::new("combine", |ctx| {
                    let a = word_to_i64(ctx.value(0));
                    let b = word_to_i64(ctx.value(1));
                    TaskResult::Value(i64_to_word(a + b))
                }),
                &[],
            );
            TaskResult::Unit
        })
    }

    let mut m = threaded_machine();
    m.spawn_root(sum_range(0, 1000));
    m.run();
    assert_eq!(m.take_result(), Some((i64_to_word((0..1000).sum()), false)));
}

#[test]
fn threaded_pointer_results_cross_threads_via_promotion() {
    let mut m = threaded_machine();
    m.spawn_root(TaskSpec::new("root", |ctx| {
        let children: Vec<_> = (0..16i64)
            .map(|i| {
                (
                    TaskSpec::new("make-box", move |ctx| {
                        let mark = ctx.root_mark();
                        for _ in 0..50 {
                            ctx.alloc_raw(&[0xfeed; 16]);
                            ctx.truncate_roots(mark);
                        }
                        let boxed = ctx.alloc_raw(&[i64_to_word(i), i64_to_word(i * 2)]);
                        TaskResult::Ptr(boxed)
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("sum-boxes", |ctx| {
                let mut total = 0i64;
                for i in 0..ctx.num_roots() {
                    let handle = ctx.input(i);
                    total += word_to_i64(ctx.read_raw(handle, 0));
                    total += word_to_i64(ctx.read_raw(handle, 1));
                }
                TaskResult::Value(i64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
    let report = m.run();
    let expected: i64 = (0..16).map(|i| i + 2 * i).sum();
    assert_eq!(m.take_result(), Some((i64_to_word(expected), false)));
    // Every pointer result was promoted when it was delivered.
    assert!(report.gc.promotions > 0, "expected publication promotions");
}

#[test]
fn threaded_heavy_allocation_triggers_all_collection_kinds() {
    let mut m = threaded_machine();
    m.spawn_root(TaskSpec::new("allocate-a-lot", |ctx| {
        let mut list = None;
        for i in 0..4000u64 {
            let mark = ctx.root_mark();
            let value = ctx.alloc_raw(&[i]);
            let cons = ctx.alloc_vector(&[Some(value), list]);
            list = Some(ctx.keep(cons, mark));
        }
        // Walk the list back and verify the values survived every
        // collection kind.
        let mut sum = 0u64;
        let mut cursor = list;
        while let Some(cell) = cursor {
            let value = ctx.read_ptr(cell, 0).expect("cons cells hold a value");
            sum += ctx.read_raw(value, 0);
            cursor = ctx.read_ptr(cell, 1);
        }
        TaskResult::Value(sum)
    }));
    let report = m.run();
    assert_eq!(m.take_result(), Some(((0..4000).sum::<u64>(), false)));
    assert!(report.gc.minor_collections > 0, "minors expected");
    assert!(report.gc.major_collections > 0, "majors expected");
    assert!(report.gc.global_collections > 0, "globals expected");
}

#[test]
fn threaded_channels_deliver_messages_in_order() {
    let mut m = threaded_machine();
    let channel = m.create_channel();
    m.spawn_root(TaskSpec::new("producer-consumer", move |ctx| {
        for i in 0..5i64 {
            let msg = ctx.alloc_raw(&[i64_to_word(i)]);
            ctx.send(channel, msg);
        }
        let mut received = 0i64;
        let mut sum = 0i64;
        while let Some(msg) = ctx.recv(channel) {
            sum += word_to_i64(ctx.read_raw(msg, 0));
            received += 1;
        }
        assert_eq!(received, 5);
        TaskResult::Value(i64_to_word(sum))
    }));
    m.run();
    assert_eq!(m.take_result(), Some((i64_to_word((0..5).sum()), false)));
    let stats = m.channel_stats();
    assert_eq!(stats.sends, 5);
    assert_eq!(stats.receives, 5);
}

#[test]
fn threaded_parallel_allocation_pressure_survives_global_collections() {
    // Many children allocate hard at the same time, so global collections
    // genuinely overlap running mutators on other threads — the scenario
    // the ramp-down barrier must survive (this is the CI deadlock canary).
    let mut m = threaded_machine();
    m.spawn_root(TaskSpec::new("pressure-root", |ctx| {
        let children: Vec<_> = (0..16u64)
            .map(|seed| {
                (
                    TaskSpec::new("pressure", move |ctx| {
                        let mut kept = None;
                        for i in 0..600u64 {
                            let mark = ctx.root_mark();
                            let value = ctx.alloc_raw(&[seed * 10_000 + i; 8]);
                            let cons = ctx.alloc_vector(&[Some(value), kept]);
                            kept = Some(ctx.keep(cons, mark));
                        }
                        // Count the list to prove nothing was lost.
                        let mut count = 0u64;
                        let mut cursor = kept;
                        while let Some(cell) = cursor {
                            count += 1;
                            cursor = ctx.read_ptr(cell, 1);
                        }
                        TaskResult::Value(count)
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("sum", |ctx| {
                let total: u64 = (0..ctx.num_values()).map(|i| ctx.value(i)).sum();
                TaskResult::Value(total)
            }),
            &[],
        );
        TaskResult::Unit
    }));
    let report = m.run();
    assert_eq!(m.take_result(), Some((16 * 600, false)));
    assert!(report.gc.global_collections > 0, "globals expected");
    if threaded_vprocs() > 1 {
        assert!(report.total_steals() > 0, "expected work stealing");
    }
}
