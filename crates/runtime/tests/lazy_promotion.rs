//! Property test for the lazy promotion-on-steal protocol: for random
//! fork/join spawn trees, the threaded backend's explicit-promotion volume
//! under lazy promotion is never larger than under the eager-publication
//! ablation (the pre-refactor promote-at-push behaviour).
//!
//! The argument is set inclusion: publications (continuation roots,
//! delivered results) are identical in both modes, and the graphs promoted
//! at steal time are a subset of the graphs eager mode promotes at push
//! time — the mutator language is mutation-free, so a task's reachable
//! graph is the same at push and at steal.

use mgc_runtime::{
    Executor, GcConfig, MachineConfig, RunReport, TaskResult, TaskSpec, ThreadedMachine,
};
use proptest::prelude::*;

/// A recursive fork/join tree: every node allocates a payload object in its
/// nursery and hands it to each child as a pointer input, so stealing a
/// child forces the promotion of the parent's object graph.
fn tree_task(depth: u8, fanout: u8, payload_words: u8, seed: u64) -> TaskSpec {
    TaskSpec::new("tree-node", move |ctx| {
        let words: Vec<u64> = (0..u64::from(payload_words) + 1)
            .map(|i| seed.wrapping_add(i))
            .collect();
        let obj = ctx.alloc_raw(&words);
        if depth == 0 {
            return TaskResult::Value(ctx.read_raw(obj, 0));
        }
        let children: Vec<_> = (0..fanout)
            .map(|i| {
                (
                    tree_task(
                        depth - 1,
                        fanout,
                        payload_words,
                        seed.wrapping_mul(31).wrapping_add(u64::from(i)),
                    ),
                    vec![obj],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("tree-sum", |ctx| {
                let total: u64 = (0..ctx.num_values())
                    .map(|i| ctx.value(i))
                    .fold(0, u64::wrapping_add);
                TaskResult::Value(total)
            }),
            &[],
        );
        TaskResult::Unit
    })
}

fn run_tree(
    vprocs: usize,
    eager: bool,
    depth: u8,
    fanout: u8,
    payload_words: u8,
    seed: u64,
) -> (RunReport, Option<(u64, bool)>) {
    let config = MachineConfig::small_for_tests(vprocs).with_gc(GcConfig {
        eager_publication: eager,
        ..GcConfig::small_for_tests()
    });
    let mut machine = ThreadedMachine::new(config);
    machine.spawn_root(tree_task(depth, fanout, payload_words, seed));
    let report = machine.run();
    let result = machine.take_result();
    (report, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lazy_promotion_volume_is_bounded_by_eager_publication(
        depth in 1u8..4,
        fanout in 1u8..4,
        payload_words in 1u8..12,
        seed in any::<u64>(),
        vprocs in 1usize..4,
    ) {
        let (eager, eager_result) = run_tree(vprocs, true, depth, fanout, payload_words, seed);
        let (lazy, lazy_result) = run_tree(vprocs, false, depth, fanout, payload_words, seed);

        // The program itself is scheduling- and promotion-independent.
        prop_assert_eq!(eager_result, lazy_result);
        prop_assert_eq!(eager.total_tasks(), lazy.total_tasks());

        // The property under test: promotion volume on the threaded backend
        // is ≤ the eager-publication volume.
        prop_assert!(
            lazy.gc.promotion_bytes <= eager.gc.promotion_bytes,
            "lazy promoted {} bytes but eager publication only {} \
             (depth {depth}, fanout {fanout}, payload {payload_words}, vprocs {vprocs})",
            lazy.gc.promotion_bytes,
            eager.gc.promotion_bytes,
        );

        // And its corollary: with one vproc nothing is stolen, so lazy mode
        // promotes nothing on the push path at all.
        if vprocs == 1 {
            prop_assert_eq!(lazy.promotions_at_steal(), 0);
        }
    }
}
