//! The CI perf gate: compares a fresh baseline sweep against the checked-in
//! reference (`results/baseline/BENCH_threaded.json`) and fails on real
//! regressions while tolerating runner noise.
//!
//! Inputs are read through the typed [`mgc_store`] query API — no JSON is
//! parsed by hand here. Each side of the comparison is either a **results
//! store directory** (`results/store/`), read as the latest record per
//! run-point key via [`mgc_store::Query::latest_per_key`], or a **legacy
//! flat file**: an array of `RunRecord` JSON objects (one per line, as
//! written by [`mgc_runtime::run_records_json`]), accepted for one PR
//! cycle through the store's ingest shim. Records are matched by
//! `(program, backend, vprocs, placement, pause_budget_us)` — a budgeted
//! run is a different experiment from an unbudgeted one, so the two never
//! compare against each other. For each matched pair two quantities are
//! gated:
//!
//! * **wall-clock time** (threaded records only) — fails when the current
//!   time exceeds `max_wall_ratio ×` the baseline. Runner noise is handled
//!   by an absolute floor: a point is only gated once both sides are padded
//!   to `min_wall_ns` (sub-floor points are pure scheduler jitter at tiny
//!   scale);
//! * **promoted bytes** — fails beyond `max_promoted_ratio ×` the baseline,
//!   with the analogous `min_promoted_bytes` floor (steal timing makes tiny
//!   promotion volumes nondeterministic on real threads).
//!
//! A third, independent gate pins **parallel speedup**: per program, the
//! ratio of the current sweep's 1-vproc wall-clock to its highest-vproc
//! wall-clock on the threaded backend must stay above a checked-in
//! threshold (`results/baseline/speedup-thresholds.json`). Speedup is
//! computed from the *current* sweep only — a baseline recorded on a
//! machine with a different core count says nothing about scaling here.
//!
//! A fourth gate pins **maximum pause**: per program, every threaded point
//! in the current sweep must keep its largest recorded mutator pause under
//! an absolute checked-in ceiling
//! (`results/baseline/pause-thresholds.json`, milliseconds). Like speedup,
//! it reads the current sweep only; unlike the ratio gates, the pin is
//! absolute — a pause regression is a regression even if the baseline
//! already had it.
//!
//! A fifth gate pins **request latency**: per serving program, every
//! threaded point in the current sweep must keep its 99th-percentile
//! end-to-end request latency under an absolute checked-in ceiling
//! (`results/baseline/latency-thresholds.json`, milliseconds). Same shape
//! as the pause gate: current sweep only, absolute pins, and a pinned
//! program whose records carry no latency telemetry fails loudly.
//!
//! The comparison renders as a Markdown table so the CI job can write it
//! straight into `$GITHUB_STEP_SUMMARY`.

use std::fmt::Write as _;
use std::path::Path;

use mgc_store::{Query, Store, StoredRecord};

/// One record's perf-relevant fields, extracted from a stored record.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// Program name.
    pub program: String,
    /// Backend label (`simulated`/`threaded`).
    pub backend: String,
    /// Vproc count.
    pub vprocs: u64,
    /// Placement-policy label.
    pub placement: String,
    /// Wall-clock nanoseconds (`None` for simulated records).
    pub wall_clock_ns: Option<f64>,
    /// Total promoted bytes.
    pub promoted_bytes: u64,
    /// Largest single mutator pause, in nanoseconds (`None` for records
    /// that predate pause telemetry).
    pub pause_max_ns: Option<f64>,
    /// 99th-percentile mutator pause, in nanoseconds (`None` for records
    /// that predate pause telemetry).
    pub pause_p99_ns: Option<f64>,
    /// The configured global-collection pause budget, in microseconds
    /// (`None` for unbudgeted runs and for records that predate the knob).
    /// Part of the matching key: a budgeted run trades throughput for
    /// bounded pauses, so comparing it against an unbudgeted baseline would
    /// gate apples against oranges.
    pub pause_budget_us: Option<u64>,
    /// 99th-percentile end-to-end request latency, in nanoseconds (`None`
    /// for records that predate the serving scenario; zero for programs
    /// that serve no requests).
    pub latency_p99_ns: Option<f64>,
    /// 99.9th-percentile end-to-end request latency, in nanoseconds
    /// (informational alongside the gated p99).
    pub latency_p999_ns: Option<f64>,
}

impl PerfPoint {
    fn key(&self) -> (String, String, u64, String, Option<u64>) {
        (
            self.program.clone(),
            self.backend.clone(),
            self.vprocs,
            self.placement.clone(),
            self.pause_budget_us,
        )
    }

    /// Extracts the gate-relevant fields from one stored record.
    ///
    /// Field semantics are unchanged from the old line parser: a missing
    /// `wall_clock_ns` key or `promoted_bytes` is an error; pause and
    /// latency telemetry, the budget knob, and the placement label are all
    /// newer than the oldest records the gate still reads, so absent (or
    /// `null`) values degrade to `None` / the historical default instead
    /// of failing.
    pub fn from_record(record: &StoredRecord) -> Result<PerfPoint, String> {
        let missing = |key: &str| format!("record is missing \"{key}\": {}", record.raw());
        let bad = |key: &str| format!("bad {key}: {}", record.raw());
        // Pause telemetry is newer than the record schema: absent or null
        // fields read as `None` so old baselines still load.
        let optional_f64 = |key: &str| -> Result<Option<f64>, String> {
            match record.field(key) {
                None => Ok(None),
                Some(v) if v.is_null() => Ok(None),
                Some(v) => v.as_f64().map(Some).ok_or_else(|| bad(key)),
            }
        };
        let wall = record
            .field("wall_clock_ns")
            .ok_or_else(|| missing("wall_clock_ns"))?;
        Ok(PerfPoint {
            program: record
                .str_field("program")
                .ok_or_else(|| missing("program"))?
                .to_string(),
            backend: record
                .str_field("backend")
                .ok_or_else(|| missing("backend"))?
                .to_string(),
            vprocs: record.u64_field("vprocs").ok_or_else(|| bad("vprocs"))?,
            // Older baselines predate the placement field; the accessor
            // defaults it so the gate still matches their points.
            placement: record.placement().to_string(),
            wall_clock_ns: if wall.is_null() {
                None
            } else {
                Some(wall.as_f64().ok_or_else(|| bad("wall_clock_ns"))?)
            },
            promoted_bytes: record
                .field("promoted_bytes")
                .ok_or_else(|| missing("promoted_bytes"))?
                .as_u64()
                .ok_or_else(|| bad("promoted_bytes"))?,
            pause_max_ns: optional_f64("pause_max_ns")?,
            pause_p99_ns: optional_f64("pause_p99_ns")?,
            // Like the pause telemetry, the budget knob is newer than the
            // schema: absent or null reads as `None` (an unbudgeted run).
            pause_budget_us: match record.field("pause_budget_us") {
                None => None,
                Some(v) if v.is_null() => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| bad("pause_budget_us"))?),
            },
            latency_p99_ns: optional_f64("latency_p99_ns")?,
            latency_p999_ns: optional_f64("latency_p999_ns")?,
        })
    }
}

/// Converts stored records — a store query result or a flat-file ingest —
/// into perf points, preserving record order.
pub fn points_from_records<'a>(
    records: impl IntoIterator<Item = &'a StoredRecord>,
) -> Result<Vec<PerfPoint>, String> {
    records.into_iter().map(PerfPoint::from_record).collect()
}

/// Parses legacy flat `RunRecord` JSON array text into perf points via the
/// store's ingest shim (every record, in file order — flat files carry no
/// history, so there is nothing to deduplicate).
pub fn parse_run_records(json: &str) -> Result<Vec<PerfPoint>, String> {
    let records = mgc_store::parse_flat_records(json, "run records").map_err(|e| e.to_string())?;
    points_from_records(&records)
}

/// Loads perf points from either results source:
///
/// * a **store directory** — opened with [`Store::open`]; the comparison
///   set is the latest record per run-point key, so re-running a sweep
///   appends a batch and the gate reads the fresh numbers;
/// * a **legacy flat file** — a `RunRecord` JSON array, read through the
///   one-PR-cycle ingest shim.
pub fn load_points(path: &Path) -> Result<Vec<PerfPoint>, String> {
    if path.is_dir() {
        let store = Store::open(path).map_err(|e| e.to_string())?;
        points_from_records(Query::new().latest_per_key(&store))
    } else {
        let records = mgc_store::ingest_flat_file(path).map_err(|e| e.to_string())?;
        points_from_records(&records)
    }
}

/// Regression thresholds; the defaults are the CI gate's contract.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Maximum tolerated `current / baseline` wall-clock ratio.
    pub max_wall_ratio: f64,
    /// Maximum tolerated `current / baseline` promoted-bytes ratio.
    pub max_promoted_ratio: f64,
    /// Noise floor: both sides of a wall-clock comparison are padded up to
    /// this many nanoseconds before the ratio is taken.
    pub min_wall_ns: f64,
    /// Noise floor for the promoted-bytes comparison, in bytes.
    pub min_promoted_bytes: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_wall_ratio: 2.5,
            max_promoted_ratio: 1.5,
            min_wall_ns: 5e6,
            min_promoted_bytes: 64 * 1024,
        }
    }
}

/// Verdict for one compared point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within thresholds.
    Ok,
    /// Wall-clock regression beyond the ratio.
    WallRegression,
    /// Promoted-bytes regression beyond the ratio.
    PromotedRegression,
    /// Present in the baseline but missing from the current sweep.
    Missing,
}

/// One row of the comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// The matched baseline point.
    pub baseline: PerfPoint,
    /// The current point, when present.
    pub current: Option<PerfPoint>,
    /// Padded wall-clock ratio, when both sides report wall time.
    pub wall_ratio: Option<f64>,
    /// Padded promoted-bytes ratio.
    pub promoted_ratio: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// The whole comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// One row per baseline point, in baseline order.
    pub rows: Vec<Row>,
    /// Current points with no baseline counterpart (new programs/axes —
    /// informational, never a failure).
    pub new_points: Vec<PerfPoint>,
}

impl Comparison {
    /// The rows that failed the gate.
    pub fn regressions(&self) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|r| r.verdict != Verdict::Ok)
            .collect()
    }
}

/// Compares a current sweep against the baseline.
pub fn compare(baseline: &[PerfPoint], current: &[PerfPoint], t: Thresholds) -> Comparison {
    let rows = baseline
        .iter()
        .map(|base| {
            let matched = current.iter().find(|c| c.key() == base.key()).cloned();
            let Some(cur) = &matched else {
                return Row {
                    baseline: base.clone(),
                    current: None,
                    wall_ratio: None,
                    promoted_ratio: 0.0,
                    verdict: Verdict::Missing,
                };
            };
            let wall_ratio = match (base.wall_clock_ns, cur.wall_clock_ns) {
                (Some(b), Some(c)) => Some(c.max(t.min_wall_ns) / b.max(t.min_wall_ns)),
                _ => None,
            };
            let floor = t.min_promoted_bytes as f64;
            let promoted_ratio =
                (cur.promoted_bytes as f64).max(floor) / (base.promoted_bytes as f64).max(floor);
            let verdict = if wall_ratio.is_some_and(|r| r > t.max_wall_ratio) {
                Verdict::WallRegression
            } else if promoted_ratio > t.max_promoted_ratio {
                Verdict::PromotedRegression
            } else {
                Verdict::Ok
            };
            Row {
                baseline: base.clone(),
                current: matched,
                wall_ratio,
                promoted_ratio,
                verdict,
            }
        })
        .collect();
    let new_points = current
        .iter()
        .filter(|c| baseline.iter().all(|b| b.key() != c.key()))
        .cloned()
        .collect();
    Comparison { rows, new_points }
}

/// Renders the comparison as a Markdown table (for `$GITHUB_STEP_SUMMARY`).
pub fn markdown(cmp: &Comparison, t: Thresholds) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Perf gate — wall-clock ≤ {:.1}×, promoted bytes ≤ {:.1}× \
         (noise floors: {:.0} ms / {} KiB)\n",
        t.max_wall_ratio,
        t.max_promoted_ratio,
        t.min_wall_ns / 1e6,
        t.min_promoted_bytes / 1024,
    );
    let _ = writeln!(
        out,
        "| program | backend | vprocs | placement | wall base (ms) | wall now (ms) | ratio | \
         promoted base | promoted now | ratio | verdict |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|");
    for row in &cmp.rows {
        let b = &row.baseline;
        let ms = |ns: Option<f64>| ns.map_or("—".to_string(), |v| format!("{:.2}", v / 1e6));
        let (wall_now, promoted_now) = row
            .current
            .as_ref()
            .map_or(("—".to_string(), "—".to_string()), |c| {
                (ms(c.wall_clock_ns), c.promoted_bytes.to_string())
            });
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::WallRegression => "**WALL REGRESSION**",
            Verdict::PromotedRegression => "**PROMOTED-BYTES REGRESSION**",
            Verdict::Missing => "**MISSING POINT**",
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.2} | {} |",
            b.program,
            b.backend,
            b.vprocs,
            b.placement,
            ms(b.wall_clock_ns),
            wall_now,
            row.wall_ratio
                .map_or("—".to_string(), |r| format!("{r:.2}")),
            b.promoted_bytes,
            promoted_now,
            row.promoted_ratio,
            verdict,
        );
    }
    if !cmp.new_points.is_empty() {
        let _ = writeln!(out, "\nNew points (no baseline, informational):");
        for p in &cmp.new_points {
            let _ = writeln!(
                out,
                "- {} / {} / {} vprocs / {}",
                p.program, p.backend, p.vprocs, p.placement
            );
        }
    }
    out
}

// ----------------------------------------------------------------------
// The speedup gate
// ----------------------------------------------------------------------

/// A pinned program: its threaded speedup (1-vproc wall / highest-vproc
/// wall) must not fall below `min_speedup`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupThreshold {
    /// Program name, as it appears in the run records.
    pub program: String,
    /// Minimum tolerated speedup.
    pub min_speedup: f64,
}

/// Parses the checked-in thresholds file: a JSON object with one
/// `"program": min_speedup` pair per line (same machine-written line
/// discipline as the run records).
pub fn parse_speedup_thresholds(json: &str) -> Result<Vec<SpeedupThreshold>, String> {
    let mut thresholds = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let (program, value) = rest
            .split_once("\": ")
            .ok_or_else(|| format!("bad threshold line: {line}"))?;
        thresholds.push(SpeedupThreshold {
            program: program.to_string(),
            min_speedup: value
                .trim()
                .parse()
                .map_err(|e| format!("bad speedup for {program}: {e}"))?,
        });
    }
    Ok(thresholds)
}

/// One program's scaling behaviour in the current sweep.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Program name.
    pub program: String,
    /// Placement-policy label.
    pub placement: String,
    /// `(vprocs, wall_clock_ns)` for every threaded point, ascending.
    pub walls: Vec<(u64, f64)>,
    /// 1-vproc wall / highest-vproc wall, when both ends exist.
    pub speedup: Option<f64>,
    /// The pinned minimum, when this program is gated.
    pub min_speedup: Option<f64>,
}

impl SpeedupRow {
    /// Whether this row fails the gate: it is pinned and either scales
    /// worse than the pin or lacks the points to measure.
    pub fn failed(&self) -> bool {
        match (self.speedup, self.min_speedup) {
            (Some(s), Some(min)) => s < min,
            (None, Some(_)) => true,
            _ => false,
        }
    }
}

/// Computes per-program speedup rows from the current sweep's threaded
/// points and attaches the pinned thresholds.
pub fn speedup_rows(current: &[PerfPoint], thresholds: &[SpeedupThreshold]) -> Vec<SpeedupRow> {
    let mut rows: Vec<SpeedupRow> = Vec::new();
    for p in current.iter().filter(|p| p.backend == "threaded") {
        let Some(wall) = p.wall_clock_ns else {
            continue;
        };
        let row = match rows
            .iter_mut()
            .find(|r| r.program == p.program && r.placement == p.placement)
        {
            Some(row) => row,
            None => {
                rows.push(SpeedupRow {
                    program: p.program.clone(),
                    placement: p.placement.clone(),
                    walls: Vec::new(),
                    speedup: None,
                    min_speedup: None,
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.walls.push((p.vprocs, wall));
    }
    for row in &mut rows {
        row.walls.sort_by_key(|&(v, _)| v);
        let one = row.walls.iter().find(|&&(v, _)| v == 1).map(|&(_, w)| w);
        let top = row.walls.last().filter(|&&(v, _)| v > 1).map(|&(_, w)| w);
        row.speedup = match (one, top) {
            (Some(one), Some(top)) if top > 0.0 => Some(one / top),
            _ => None,
        };
        row.min_speedup = thresholds
            .iter()
            .find(|t| t.program == row.program)
            .map(|t| t.min_speedup);
    }
    rows
}

/// Pinned programs that do not appear in the sweep at all — deleting a
/// gated benchmark must not silently pass the gate.
pub fn missing_pinned_programs<'a>(
    rows: &[SpeedupRow],
    thresholds: &'a [SpeedupThreshold],
) -> Vec<&'a str> {
    thresholds
        .iter()
        .filter(|t| rows.iter().all(|r| r.program != t.program))
        .map(|t| t.program.as_str())
        .collect()
}

/// Renders the speedup table as Markdown (for `$GITHUB_STEP_SUMMARY`).
pub fn speedup_markdown(rows: &[SpeedupRow], missing: &[&str]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Speedup gate — threaded wall-clock, highest vprocs vs 1 (current sweep)\n"
    );
    let _ = writeln!(
        out,
        "| program | placement | wall per vprocs (ms) | speedup | pinned min | verdict |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for row in rows {
        let walls = row
            .walls
            .iter()
            .map(|&(v, w)| format!("{v}v: {:.2}", w / 1e6))
            .collect::<Vec<_>>()
            .join(", ");
        let verdict = if row.failed() {
            "**SPEEDUP REGRESSION**"
        } else if row.min_speedup.is_some() {
            "ok"
        } else {
            "not pinned"
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            row.program,
            row.placement,
            walls,
            row.speedup.map_or("—".to_string(), |s| format!("{s:.2}×")),
            row.min_speedup
                .map_or("—".to_string(), |m| format!("{m:.2}×")),
            verdict,
        );
    }
    for program in missing {
        let _ = writeln!(
            out,
            "\n**MISSING PINNED PROGRAM**: `{program}` has a speedup threshold but no \
             threaded points in the sweep."
        );
    }
    out
}

// ----------------------------------------------------------------------
// The max-pause gate
// ----------------------------------------------------------------------

/// A pinned program: no threaded point in the current sweep may record a
/// single mutator pause longer than `max_pause_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct PauseThreshold {
    /// Program name, as it appears in the run records.
    pub program: String,
    /// Maximum tolerated single pause, in milliseconds (absolute).
    pub max_pause_ms: f64,
}

/// Parses the checked-in pause-thresholds file: a JSON object with one
/// `"program": max_pause_ms` pair per line (same machine-written line
/// discipline as the speedup thresholds).
pub fn parse_pause_thresholds(json: &str) -> Result<Vec<PauseThreshold>, String> {
    let mut thresholds = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let (program, value) = rest
            .split_once("\": ")
            .ok_or_else(|| format!("bad threshold line: {line}"))?;
        thresholds.push(PauseThreshold {
            program: program.to_string(),
            max_pause_ms: value
                .trim()
                .parse()
                .map_err(|e| format!("bad max pause for {program}: {e}"))?,
        });
    }
    Ok(thresholds)
}

/// One threaded point's pause behaviour in the current sweep.
#[derive(Debug, Clone)]
pub struct PauseRow {
    /// Program name.
    pub program: String,
    /// Placement-policy label.
    pub placement: String,
    /// Vproc count.
    pub vprocs: u64,
    /// Largest single pause of the run, in nanoseconds (`None` when the
    /// record carries no pause telemetry).
    pub pause_max_ns: Option<f64>,
    /// 99th-percentile pause, in nanoseconds (informational).
    pub pause_p99_ns: Option<f64>,
    /// The pinned ceiling in milliseconds, when this program is gated.
    pub max_pause_ms: Option<f64>,
}

impl PauseRow {
    /// Whether this row fails the gate: it is pinned and either pauses
    /// longer than the ceiling or carries no pause telemetry to check.
    pub fn failed(&self) -> bool {
        match (self.pause_max_ns, self.max_pause_ms) {
            (Some(ns), Some(max_ms)) => ns > max_ms * 1e6,
            (None, Some(_)) => true,
            _ => false,
        }
    }
}

/// Builds one pause row per threaded point of the current sweep and
/// attaches the pinned ceilings.
pub fn pause_rows(current: &[PerfPoint], thresholds: &[PauseThreshold]) -> Vec<PauseRow> {
    current
        .iter()
        .filter(|p| p.backend == "threaded")
        .map(|p| PauseRow {
            program: p.program.clone(),
            placement: p.placement.clone(),
            vprocs: p.vprocs,
            pause_max_ns: p.pause_max_ns,
            pause_p99_ns: p.pause_p99_ns,
            max_pause_ms: thresholds
                .iter()
                .find(|t| t.program == p.program)
                .map(|t| t.max_pause_ms),
        })
        .collect()
}

/// Pinned programs with no threaded point in the sweep — deleting a gated
/// benchmark must not silently pass the pause gate.
pub fn missing_pause_pinned_programs<'a>(
    rows: &[PauseRow],
    thresholds: &'a [PauseThreshold],
) -> Vec<&'a str> {
    thresholds
        .iter()
        .filter(|t| rows.iter().all(|r| r.program != t.program))
        .map(|t| t.program.as_str())
        .collect()
}

/// Renders the pause table as Markdown (for `$GITHUB_STEP_SUMMARY`).
pub fn pause_markdown(rows: &[PauseRow], missing: &[&str]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Max-pause gate — largest single mutator pause, threaded points \
         (current sweep, absolute pins)\n"
    );
    let _ = writeln!(
        out,
        "| program | placement | vprocs | p99 pause (ms) | max pause (ms) | pinned max (ms) | verdict |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for row in rows {
        let ms = |ns: Option<f64>| ns.map_or("—".to_string(), |v| format!("{:.3}", v / 1e6));
        let verdict = if row.failed() {
            "**PAUSE REGRESSION**"
        } else if row.max_pause_ms.is_some() {
            "ok"
        } else {
            "not pinned"
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            row.program,
            row.placement,
            row.vprocs,
            ms(row.pause_p99_ns),
            ms(row.pause_max_ns),
            row.max_pause_ms
                .map_or("—".to_string(), |m| format!("{m:.3}")),
            verdict,
        );
    }
    for program in missing {
        let _ = writeln!(
            out,
            "\n**MISSING PINNED PROGRAM**: `{program}` has a pause threshold but no \
             threaded points in the sweep."
        );
    }
    out
}

// ----------------------------------------------------------------------
// The latency gate
// ----------------------------------------------------------------------

/// A pinned serving program: no threaded point in the current sweep may
/// report a 99th-percentile end-to-end request latency above `max_p99_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyThreshold {
    /// Program name, as it appears in the run records.
    pub program: String,
    /// Maximum tolerated p99 request latency, in milliseconds (absolute).
    pub max_p99_ms: f64,
}

/// Parses the checked-in latency-thresholds file: a JSON object with one
/// `"program": max_p99_ms` pair per line (same machine-written line
/// discipline as the speedup and pause thresholds).
pub fn parse_latency_thresholds(json: &str) -> Result<Vec<LatencyThreshold>, String> {
    let mut thresholds = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let (program, value) = rest
            .split_once("\": ")
            .ok_or_else(|| format!("bad threshold line: {line}"))?;
        thresholds.push(LatencyThreshold {
            program: program.to_string(),
            max_p99_ms: value
                .trim()
                .parse()
                .map_err(|e| format!("bad max p99 latency for {program}: {e}"))?,
        });
    }
    Ok(thresholds)
}

/// One threaded point's request-latency behaviour in the current sweep.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Program name.
    pub program: String,
    /// Placement-policy label.
    pub placement: String,
    /// Vproc count.
    pub vprocs: u64,
    /// The configured pause budget, in microseconds (budgeted and
    /// unbudgeted serve points both appear, each gated against the pin).
    pub pause_budget_us: Option<u64>,
    /// 99th-percentile request latency, in nanoseconds (`None` when the
    /// record carries no latency telemetry).
    pub latency_p99_ns: Option<f64>,
    /// 99.9th-percentile request latency, in nanoseconds (informational).
    pub latency_p999_ns: Option<f64>,
    /// The pinned ceiling in milliseconds, when this program is gated.
    pub max_p99_ms: Option<f64>,
}

impl LatencyRow {
    /// Whether this row fails the gate: it is pinned and either misses the
    /// p99 ceiling or carries no latency telemetry to check.
    pub fn failed(&self) -> bool {
        match (self.latency_p99_ns, self.max_p99_ms) {
            (Some(ns), Some(max_ms)) => ns > max_ms * 1e6,
            (None, Some(_)) => true,
            _ => false,
        }
    }
}

/// Builds one latency row per threaded point of the current sweep and
/// attaches the pinned ceilings.
pub fn latency_rows(current: &[PerfPoint], thresholds: &[LatencyThreshold]) -> Vec<LatencyRow> {
    current
        .iter()
        .filter(|p| p.backend == "threaded")
        .map(|p| LatencyRow {
            program: p.program.clone(),
            placement: p.placement.clone(),
            vprocs: p.vprocs,
            pause_budget_us: p.pause_budget_us,
            latency_p99_ns: p.latency_p99_ns,
            latency_p999_ns: p.latency_p999_ns,
            max_p99_ms: thresholds
                .iter()
                .find(|t| t.program == p.program)
                .map(|t| t.max_p99_ms),
        })
        .collect()
}

/// Pinned programs with no threaded point in the sweep — deleting a gated
/// serving program must not silently pass the latency gate.
pub fn missing_latency_pinned_programs<'a>(
    rows: &[LatencyRow],
    thresholds: &'a [LatencyThreshold],
) -> Vec<&'a str> {
    thresholds
        .iter()
        .filter(|t| rows.iter().all(|r| r.program != t.program))
        .map(|t| t.program.as_str())
        .collect()
}

/// Renders the latency table as Markdown (for `$GITHUB_STEP_SUMMARY`).
pub fn latency_markdown(rows: &[LatencyRow], missing: &[&str]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Latency gate — p99 end-to-end request latency, threaded points \
         (current sweep, absolute pins)\n"
    );
    let _ = writeln!(
        out,
        "| program | placement | vprocs | budget (µs) | p99 (ms) | p99.9 (ms) | \
         pinned p99 (ms) | verdict |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for row in rows {
        let ms = |ns: Option<f64>| ns.map_or("—".to_string(), |v| format!("{:.3}", v / 1e6));
        let verdict = if row.failed() {
            "**LATENCY REGRESSION**"
        } else if row.max_p99_ms.is_some() {
            "ok"
        } else {
            "not pinned"
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            row.program,
            row.placement,
            row.vprocs,
            row.pause_budget_us
                .map_or("—".to_string(), |us| us.to_string()),
            ms(row.latency_p99_ns),
            ms(row.latency_p999_ns),
            row.max_p99_ms
                .map_or("—".to_string(), |m| format!("{m:.3}")),
            verdict,
        );
    }
    for program in missing {
        let _ = writeln!(
            out,
            "\n**MISSING PINNED PROGRAM**: `{program}` has a latency threshold but no \
             threaded points in the sweep."
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_line(program: &str, backend: &str, vprocs: u64, wall: &str, promoted: u64) -> String {
        format!(
            "  {{\"program\": \"{program}\", \"params\": {{}}, \"backend\": \"{backend}\", \
             \"vprocs\": {vprocs}, \"topology\": \"test-dual-node\", \"policy\": \"local\", \
             \"placement\": \"node-local\", \"wall_clock_ns\": {wall}, \
             \"promoted_bytes\": {promoted}, \"steals\": 0}}"
        )
    }

    fn json(lines: &[String]) -> String {
        format!("[\n{}\n]\n", lines.join(",\n"))
    }

    fn record_line_with_pauses(
        program: &str,
        vprocs: u64,
        pause_max: &str,
        pause_p99: &str,
    ) -> String {
        format!(
            "  {{\"program\": \"{program}\", \"params\": {{}}, \"backend\": \"threaded\", \
             \"vprocs\": {vprocs}, \"placement\": \"node-local\", \
             \"wall_clock_ns\": 50000000, \"promoted_bytes\": 0, \
             \"pause_count\": 12, \"pause_max_ns\": {pause_max}, \
             \"pause_p50_ns\": 1000, \"pause_p99_ns\": {pause_p99}}}"
        )
    }

    #[test]
    fn parses_machine_written_records() {
        let text = json(&[
            record_line("Barnes-Hut", "threaded", 4, "280000000", 257072),
            record_line("Barnes-Hut", "simulated", 4, "null", 300000),
        ]);
        let points = parse_run_records(&text).expect("the records parse");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].program, "Barnes-Hut");
        assert_eq!(points[0].backend, "threaded");
        assert_eq!(points[0].vprocs, 4);
        assert_eq!(points[0].placement, "node-local");
        assert_eq!(points[0].wall_clock_ns, Some(280000000.0));
        assert_eq!(points[0].promoted_bytes, 257072);
        assert_eq!(points[1].wall_clock_ns, None);
    }

    #[test]
    fn parses_real_run_record_json() {
        use mgc_runtime::{Backend, Experiment};
        use mgc_workloads::{Scale, Workload};
        let record = Experiment::new(Workload::Dmm.program(Scale::tiny()))
            .env_overrides(mgc_runtime::EnvOverrides::default())
            .backend(Backend::Threaded)
            .run()
            .expect("a one-vproc DMM run is valid");
        let text = mgc_runtime::run_records_json(std::slice::from_ref(&record));
        let points = parse_run_records(&text).expect("real records parse");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].program, "Dense-Matrix-Multiply");
        assert!(points[0].wall_clock_ns.is_some());
    }

    #[test]
    fn identical_sweeps_pass_the_gate() {
        let text = json(&[record_line("Quicksort", "threaded", 2, "20000000", 500000)]);
        let points = parse_run_records(&text).unwrap();
        let cmp = compare(&points, &points, Thresholds::default());
        assert!(cmp.regressions().is_empty());
        assert!(markdown(&cmp, Thresholds::default()).contains("| ok |"));
    }

    /// The acceptance demonstration: an injected 3× wall-clock regression
    /// (beyond the 2.5× gate) must turn the comparison red.
    #[test]
    fn injected_3x_wall_regression_fails_the_gate() {
        let baseline = parse_run_records(&json(&[record_line(
            "Barnes-Hut",
            "threaded",
            4,
            "100000000",
            257072,
        )]))
        .unwrap();
        let slowed = parse_run_records(&json(&[record_line(
            "Barnes-Hut",
            "threaded",
            4,
            "300000000",
            257072,
        )]))
        .unwrap();
        let cmp = compare(&baseline, &slowed, Thresholds::default());
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].verdict, Verdict::WallRegression);
        assert!(markdown(&cmp, Thresholds::default()).contains("WALL REGRESSION"));
    }

    #[test]
    fn promoted_bytes_regression_fails_and_noise_floor_tolerates_tiny_points() {
        let baseline = parse_run_records(&json(&[record_line(
            "Churn", "threaded", 2, "50000000", 200000,
        )]))
        .unwrap();
        let bloated = parse_run_records(&json(&[record_line(
            "Churn", "threaded", 2, "50000000", 400000,
        )]))
        .unwrap();
        let cmp = compare(&baseline, &bloated, Thresholds::default());
        assert_eq!(cmp.regressions()[0].verdict, Verdict::PromotedRegression);

        // Sub-floor points never regress: 0.1 ms → 2 ms is 20× but both are
        // noise next to the 5 ms floor; 1 KiB → 60 KiB promoted likewise.
        let tiny_base =
            parse_run_records(&json(&[record_line("Dmm", "threaded", 1, "100000", 1024)])).unwrap();
        let tiny_now = parse_run_records(&json(&[record_line(
            "Dmm", "threaded", 1, "2000000", 61440,
        )]))
        .unwrap();
        let cmp = compare(&tiny_base, &tiny_now, Thresholds::default());
        assert!(cmp.regressions().is_empty(), "noise must not fail the gate");
    }

    #[test]
    fn speedup_thresholds_file_round_trips() {
        let text = "{\n  \"Dense-Matrix-Multiply\": 2.0,\n  \"Raytracer\": 1.8\n}\n";
        let thresholds = parse_speedup_thresholds(text).expect("thresholds parse");
        assert_eq!(thresholds.len(), 2);
        assert_eq!(thresholds[0].program, "Dense-Matrix-Multiply");
        assert_eq!(thresholds[0].min_speedup, 2.0);
        assert_eq!(thresholds[1].min_speedup, 1.8);
    }

    #[test]
    fn healthy_scaling_passes_the_speedup_gate() {
        let sweep = parse_run_records(&json(&[
            record_line("Dmm", "threaded", 1, "100000000", 0),
            record_line("Dmm", "threaded", 2, "55000000", 0),
            record_line("Dmm", "threaded", 4, "30000000", 0),
            record_line("Dmm", "simulated", 4, "null", 0),
        ]))
        .unwrap();
        let thresholds = vec![SpeedupThreshold {
            program: "Dmm".to_string(),
            min_speedup: 2.0,
        }];
        let rows = speedup_rows(&sweep, &thresholds);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].walls.len(), 3, "simulated points are excluded");
        let speedup = rows[0].speedup.expect("both ends present");
        assert!((speedup - 100.0 / 30.0).abs() < 1e-9);
        assert!(!rows[0].failed());
        assert!(missing_pinned_programs(&rows, &thresholds).is_empty());
        assert!(speedup_markdown(&rows, &[]).contains("| ok |"));
    }

    /// The acceptance demonstration for the speedup gate: a sweep whose
    /// 4-vproc time barely improves on 1 vproc (an injected scaling
    /// regression) must fail a 2× pin.
    #[test]
    fn injected_scaling_regression_fails_the_speedup_gate() {
        let sweep = parse_run_records(&json(&[
            record_line("Dmm", "threaded", 1, "100000000", 0),
            record_line("Dmm", "threaded", 4, "90000000", 0),
        ]))
        .unwrap();
        let thresholds = vec![SpeedupThreshold {
            program: "Dmm".to_string(),
            min_speedup: 2.0,
        }];
        let rows = speedup_rows(&sweep, &thresholds);
        assert!(rows[0].failed(), "1.11× must fail a 2× pin");
        assert!(speedup_markdown(&rows, &[]).contains("SPEEDUP REGRESSION"));
    }

    #[test]
    fn unpinned_programs_and_missing_pins_are_handled() {
        let sweep = parse_run_records(&json(&[
            record_line("Quicksort", "threaded", 1, "100000000", 0),
            record_line("Quicksort", "threaded", 4, "95000000", 0),
        ]))
        .unwrap();
        let thresholds = vec![SpeedupThreshold {
            program: "Dmm".to_string(),
            min_speedup: 2.0,
        }];
        let rows = speedup_rows(&sweep, &thresholds);
        // Quicksort scales poorly but is not pinned: no failure.
        assert!(!rows[0].failed());
        // Dmm is pinned but absent from the sweep: that must be loud.
        let missing = missing_pinned_programs(&rows, &thresholds);
        assert_eq!(missing, vec!["Dmm"]);
        assert!(speedup_markdown(&rows, &missing).contains("MISSING PINNED PROGRAM"));
    }

    #[test]
    fn single_vproc_only_sweep_cannot_satisfy_a_pin() {
        let sweep =
            parse_run_records(&json(&[record_line("Dmm", "threaded", 1, "100000000", 0)])).unwrap();
        let thresholds = vec![SpeedupThreshold {
            program: "Dmm".to_string(),
            min_speedup: 2.0,
        }];
        let rows = speedup_rows(&sweep, &thresholds);
        assert_eq!(rows[0].speedup, None);
        assert!(
            rows[0].failed(),
            "a pinned program without a multi-vproc point must fail"
        );
    }

    #[test]
    fn pause_fields_parse_and_default_to_none_on_old_records() {
        let text = json(&[
            record_line_with_pauses("Barnes-Hut", 4, "2500000", "800000"),
            record_line("Barnes-Hut", "threaded", 2, "280000000", 0),
        ]);
        let points = parse_run_records(&text).expect("the records parse");
        assert_eq!(points[0].pause_max_ns, Some(2500000.0));
        assert_eq!(points[0].pause_p99_ns, Some(800000.0));
        assert_eq!(points[1].pause_max_ns, None, "old records lack the field");
        assert_eq!(points[1].pause_p99_ns, None);
    }

    #[test]
    fn pause_thresholds_file_round_trips() {
        let text = "{\n  \"Barnes-Hut\": 20.0,\n  \"Quicksort\": 5.5\n}\n";
        let thresholds = parse_pause_thresholds(text).expect("thresholds parse");
        assert_eq!(thresholds.len(), 2);
        assert_eq!(thresholds[0].program, "Barnes-Hut");
        assert_eq!(thresholds[0].max_pause_ms, 20.0);
        assert_eq!(thresholds[1].max_pause_ms, 5.5);
    }

    #[test]
    fn pauses_under_the_pin_pass_the_gate() {
        let sweep = parse_run_records(&json(&[
            record_line_with_pauses("Barnes-Hut", 1, "1500000", "900000"),
            record_line_with_pauses("Barnes-Hut", 4, "2500000", "800000"),
        ]))
        .unwrap();
        let thresholds = vec![PauseThreshold {
            program: "Barnes-Hut".to_string(),
            max_pause_ms: 20.0,
        }];
        let rows = pause_rows(&sweep, &thresholds);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r.failed()));
        assert!(missing_pause_pinned_programs(&rows, &thresholds).is_empty());
        assert!(pause_markdown(&rows, &[]).contains("| ok |"));
    }

    /// The acceptance demonstration for the pause gate: a sweep whose max
    /// pause blows past its absolute pin must turn the comparison red.
    #[test]
    fn injected_pause_regression_fails_the_gate() {
        // 50 ms max pause against a 20 ms pin.
        let sweep = parse_run_records(&json(&[record_line_with_pauses(
            "Barnes-Hut",
            4,
            "50000000",
            "3000000",
        )]))
        .unwrap();
        let thresholds = vec![PauseThreshold {
            program: "Barnes-Hut".to_string(),
            max_pause_ms: 20.0,
        }];
        let rows = pause_rows(&sweep, &thresholds);
        assert!(rows[0].failed(), "50 ms must fail a 20 ms pin");
        assert!(pause_markdown(&rows, &[]).contains("PAUSE REGRESSION"));
    }

    #[test]
    fn pinned_points_without_pause_telemetry_fail_loudly() {
        // An old-schema record (no pause fields) for a pinned program must
        // not silently pass.
        let sweep = parse_run_records(&json(&[record_line(
            "Barnes-Hut",
            "threaded",
            4,
            "280000000",
            0,
        )]))
        .unwrap();
        let thresholds = vec![PauseThreshold {
            program: "Barnes-Hut".to_string(),
            max_pause_ms: 20.0,
        }];
        let rows = pause_rows(&sweep, &thresholds);
        assert!(rows[0].failed());

        // Unpinned programs without telemetry are merely "not pinned".
        let rows = pause_rows(&sweep, &[]);
        assert!(!rows[0].failed());
        assert!(pause_markdown(&rows, &[]).contains("not pinned"));
    }

    #[test]
    fn missing_pause_pins_are_loud() {
        let sweep = parse_run_records(&json(&[record_line_with_pauses(
            "Quicksort",
            2,
            "1000000",
            "500000",
        )]))
        .unwrap();
        let thresholds = vec![PauseThreshold {
            program: "Barnes-Hut".to_string(),
            max_pause_ms: 20.0,
        }];
        let rows = pause_rows(&sweep, &thresholds);
        let missing = missing_pause_pinned_programs(&rows, &thresholds);
        assert_eq!(missing, vec!["Barnes-Hut"]);
        assert!(pause_markdown(&rows, &missing).contains("MISSING PINNED PROGRAM"));
    }

    fn record_line_with_budget(program: &str, vprocs: u64, budget: &str) -> String {
        format!(
            "  {{\"program\": \"{program}\", \"params\": {{}}, \"backend\": \"threaded\", \
             \"vprocs\": {vprocs}, \"placement\": \"node-local\", \
             \"wall_clock_ns\": 50000000, \"promoted_bytes\": 0, \
             \"pause_budget_us\": {budget}}}"
        )
    }

    #[test]
    fn pause_budget_is_part_of_the_matching_key() {
        let unbudgeted =
            parse_run_records(&json(&[record_line_with_budget("Barnes-Hut", 4, "null")])).unwrap();
        let budgeted =
            parse_run_records(&json(&[record_line_with_budget("Barnes-Hut", 4, "250")])).unwrap();
        assert_eq!(unbudgeted[0].pause_budget_us, None);
        assert_eq!(budgeted[0].pause_budget_us, Some(250));

        // Same program/backend/vprocs/placement, different budget: the
        // budgeted point must NOT be compared against the unbudgeted
        // baseline — it shows up as a missing baseline point plus a new
        // current point instead.
        let cmp = compare(&unbudgeted, &budgeted, Thresholds::default());
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].verdict, Verdict::Missing);
        assert_eq!(cmp.new_points.len(), 1);

        // Identical budgets still match.
        let cmp = compare(&budgeted, &budgeted, Thresholds::default());
        assert!(cmp.regressions().is_empty());

        // Records that predate the knob parse as unbudgeted and keep
        // matching each other.
        let old = parse_run_records(&json(&[record_line(
            "Barnes-Hut",
            "threaded",
            4,
            "50000000",
            0,
        )]))
        .unwrap();
        assert_eq!(old[0].pause_budget_us, None);
        let cmp = compare(&old, &unbudgeted, Thresholds::default());
        assert!(cmp.regressions().is_empty());
    }

    fn record_line_with_latency(
        program: &str,
        vprocs: u64,
        budget: &str,
        p99: &str,
        p999: &str,
    ) -> String {
        format!(
            "  {{\"program\": \"{program}\", \"params\": {{}}, \"backend\": \"threaded\", \
             \"vprocs\": {vprocs}, \"placement\": \"node-local\", \
             \"wall_clock_ns\": 5000000000, \"promoted_bytes\": 0, \
             \"pause_budget_us\": {budget}, \"requests_served\": 10000, \
             \"throughput_rps\": 1999.2, \"latency_p50_ns\": 700000, \
             \"latency_p99_ns\": {p99}, \"latency_p999_ns\": {p999}, \
             \"latency_max_ns\": 9000000}}"
        )
    }

    #[test]
    fn latency_fields_parse_and_default_to_none_on_old_records() {
        let text = json(&[
            record_line_with_latency("Request-Server", 4, "null", "2000000", "4000000"),
            record_line("Request-Server", "threaded", 4, "5000000000", 0),
        ]);
        let points = parse_run_records(&text).expect("the records parse");
        assert_eq!(points[0].latency_p99_ns, Some(2000000.0));
        assert_eq!(points[0].latency_p999_ns, Some(4000000.0));
        assert_eq!(points[1].latency_p99_ns, None, "old records lack the field");
        assert_eq!(points[1].latency_p999_ns, None);
    }

    #[test]
    fn latency_thresholds_file_round_trips() {
        let text = "{\n  \"Request-Server\": 25.0\n}\n";
        let thresholds = parse_latency_thresholds(text).expect("thresholds parse");
        assert_eq!(thresholds.len(), 1);
        assert_eq!(thresholds[0].program, "Request-Server");
        assert_eq!(thresholds[0].max_p99_ms, 25.0);
    }

    #[test]
    fn latencies_under_the_pin_pass_the_gate() {
        let sweep = parse_run_records(&json(&[
            record_line_with_latency("Request-Server", 4, "null", "2000000", "4000000"),
            record_line_with_latency("Request-Server", 4, "500", "2500000", "5000000"),
        ]))
        .unwrap();
        let thresholds = vec![LatencyThreshold {
            program: "Request-Server".to_string(),
            max_p99_ms: 25.0,
        }];
        let rows = latency_rows(&sweep, &thresholds);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r.failed()));
        assert_eq!(rows[1].pause_budget_us, Some(500));
        assert!(missing_latency_pinned_programs(&rows, &thresholds).is_empty());
        assert!(latency_markdown(&rows, &[]).contains("| ok |"));
    }

    /// The acceptance demonstration for the latency gate: a sweep whose p99
    /// request latency blows past its absolute pin must turn the comparison
    /// red.
    #[test]
    fn injected_latency_regression_fails_the_gate() {
        // 80 ms p99 against a 25 ms pin.
        let sweep = parse_run_records(&json(&[record_line_with_latency(
            "Request-Server",
            4,
            "null",
            "80000000",
            "120000000",
        )]))
        .unwrap();
        let thresholds = vec![LatencyThreshold {
            program: "Request-Server".to_string(),
            max_p99_ms: 25.0,
        }];
        let rows = latency_rows(&sweep, &thresholds);
        assert!(rows[0].failed(), "80 ms must fail a 25 ms pin");
        assert!(latency_markdown(&rows, &[]).contains("LATENCY REGRESSION"));
    }

    #[test]
    fn pinned_points_without_latency_telemetry_fail_loudly() {
        // An old-schema record (no latency fields) for a pinned program must
        // not silently pass.
        let sweep = parse_run_records(&json(&[record_line(
            "Request-Server",
            "threaded",
            4,
            "5000000000",
            0,
        )]))
        .unwrap();
        let thresholds = vec![LatencyThreshold {
            program: "Request-Server".to_string(),
            max_p99_ms: 25.0,
        }];
        let rows = latency_rows(&sweep, &thresholds);
        assert!(rows[0].failed());

        // Unpinned programs without telemetry are merely "not pinned".
        let rows = latency_rows(&sweep, &[]);
        assert!(!rows[0].failed());
        assert!(latency_markdown(&rows, &[]).contains("not pinned"));
    }

    #[test]
    fn missing_latency_pins_are_loud() {
        let sweep = parse_run_records(&json(&[record_line_with_pauses(
            "Quicksort",
            2,
            "1000000",
            "500000",
        )]))
        .unwrap();
        let thresholds = vec![LatencyThreshold {
            program: "Request-Server".to_string(),
            max_p99_ms: 25.0,
        }];
        let rows = latency_rows(&sweep, &thresholds);
        let missing = missing_latency_pinned_programs(&rows, &thresholds);
        assert_eq!(missing, vec!["Request-Server"]);
        assert!(latency_markdown(&rows, &missing).contains("MISSING PINNED PROGRAM"));
    }

    #[test]
    fn missing_points_are_flagged_and_new_points_reported() {
        let baseline = parse_run_records(&json(&[
            record_line("Quicksort", "threaded", 2, "20000000", 500000),
            record_line("SMVM", "threaded", 2, "20000000", 500000),
        ]))
        .unwrap();
        let current = parse_run_records(&json(&[
            record_line("Quicksort", "threaded", 2, "20000000", 500000),
            record_line("Raytracer", "threaded", 2, "20000000", 500000),
        ]))
        .unwrap();
        let cmp = compare(&baseline, &current, Thresholds::default());
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].verdict, Verdict::Missing);
        assert_eq!(cmp.new_points.len(), 1);
        assert_eq!(cmp.new_points[0].program, "Raytracer");
    }

    // ------------------------------------------------------------------
    // Store-backed queries: the same gates, fed from a results-store
    // directory through `load_points` instead of a flat file.
    // ------------------------------------------------------------------

    fn store_line(program: &str, vprocs: u64, promoted: u64, extra: &str) -> String {
        format!(
            "{{\"schema_version\": 2, \"program\": \"{program}\", \"params\": {{}}, \
             \"backend\": \"threaded\", \"vprocs\": {vprocs}, \
             \"placement\": \"node-local\", \"promoted_bytes\": {promoted}{extra}}}"
        )
    }

    /// Appends each batch to a fresh temp store and loads it back through
    /// the directory path of `load_points`.
    fn load_store(tag: &str, batches: &[Vec<String>]) -> Vec<PerfPoint> {
        let dir = std::env::temp_dir().join(format!("mgc-perfdiff-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = mgc_store::RunMeta {
            git_rev: "test".to_string(),
            timestamp_unix: 0,
            host_nodes: 1,
            host_cores: 1,
            scale: "tiny".to_string(),
            kind: "test".to_string(),
        };
        for lines in batches {
            mgc_store::Store::append_lines(&dir, &meta, lines).expect("append succeeds");
        }
        let points = load_points(&dir).expect("the store loads");
        let _ = std::fs::remove_dir_all(&dir);
        points
    }

    #[test]
    fn store_directories_load_the_latest_record_per_key() {
        let points = load_store(
            "latest",
            &[
                vec![
                    store_line("Quicksort", 1, 100000, ", \"wall_clock_ns\": 90000000"),
                    store_line("Quicksort", 4, 100000, ", \"wall_clock_ns\": 40000000"),
                ],
                vec![store_line(
                    "Quicksort",
                    4,
                    100000,
                    ", \"wall_clock_ns\": 34000000",
                )],
            ],
        );
        assert_eq!(points.len(), 2, "re-run keys collapse to one point each");
        assert_eq!(points[0].wall_clock_ns, Some(90000000.0));
        assert_eq!(
            points[1].wall_clock_ns,
            Some(34000000.0),
            "the newer batch shadows the older one"
        );
    }

    fn healthy_sweep() -> Vec<String> {
        vec![
            store_line(
                "Dmm",
                1,
                100000,
                ", \"wall_clock_ns\": 100000000, \"pause_max_ns\": 2000000, \
                 \"pause_p99_ns\": 1000000",
            ),
            store_line(
                "Dmm",
                4,
                100000,
                ", \"wall_clock_ns\": 40000000, \"pause_max_ns\": 2500000, \
                 \"pause_p99_ns\": 1200000",
            ),
            store_line(
                "Request-Server",
                4,
                100000,
                ", \"wall_clock_ns\": 5000000000, \"pause_budget_us\": null, \
                 \"latency_p99_ns\": 2000000, \"latency_p999_ns\": 4000000",
            ),
        ]
    }

    fn gate_pins() -> (
        Vec<SpeedupThreshold>,
        Vec<PauseThreshold>,
        Vec<LatencyThreshold>,
    ) {
        (
            vec![SpeedupThreshold {
                program: "Dmm".to_string(),
                min_speedup: 2.0,
            }],
            vec![PauseThreshold {
                program: "Dmm".to_string(),
                max_pause_ms: 20.0,
            }],
            vec![LatencyThreshold {
                program: "Request-Server".to_string(),
                max_p99_ms: 25.0,
            }],
        )
    }

    #[test]
    fn all_five_gates_pass_on_a_healthy_store() {
        let baseline = load_store("healthy-base", &[healthy_sweep()]);
        let current = load_store("healthy-cur", &[healthy_sweep()]);
        let (speedup_pins, pause_pins, latency_pins) = gate_pins();

        // Gates 1+2: wall-clock and promoted-bytes ratios.
        let cmp = compare(&baseline, &current, Thresholds::default());
        assert!(cmp.regressions().is_empty());
        // Gate 3: parallel speedup (2.5× measured vs a 2.0× pin).
        let rows = speedup_rows(&current, &speedup_pins);
        assert!(rows.iter().all(|r| !r.failed()));
        assert!(missing_pinned_programs(&rows, &speedup_pins).is_empty());
        // Gate 4: max pause (2.5 ms vs a 20 ms pin).
        let rows = pause_rows(&current, &pause_pins);
        assert!(rows.iter().all(|r| !r.failed()));
        // Gate 5: p99 request latency (2 ms vs a 25 ms pin).
        let rows = latency_rows(&current, &latency_pins);
        assert!(rows.iter().all(|r| !r.failed()));
    }

    /// The exit-1 scenarios, through the store: one appended batch injects
    /// a regression for every gate, and each gate catches its own.
    #[test]
    fn injected_regressions_fail_every_gate_from_the_store() {
        let baseline = load_store("inject-base", &[healthy_sweep()]);
        let regressed = vec![
            // 2.5× promoted bytes (gate 2), well above the 64 KiB floor.
            store_line(
                "Dmm",
                1,
                250000,
                ", \"wall_clock_ns\": 100000000, \"pause_max_ns\": 2000000, \
                 \"pause_p99_ns\": 1000000",
            ),
            // 7.5× wall clock (gate 1), which also collapses the 4v/1v
            // speedup to 0.33× against the 2× pin (gate 3), and a 50 ms
            // max pause against the 20 ms pin (gate 4).
            store_line(
                "Dmm",
                4,
                100000,
                ", \"wall_clock_ns\": 300000000, \"pause_max_ns\": 50000000, \
                 \"pause_p99_ns\": 12000000",
            ),
            // An 80 ms p99 request latency against the 25 ms pin (gate 5).
            store_line(
                "Request-Server",
                4,
                100000,
                ", \"wall_clock_ns\": 5000000000, \"pause_budget_us\": null, \
                 \"latency_p99_ns\": 80000000, \"latency_p999_ns\": 120000000",
            ),
        ];
        // The regressed batch rides on top of the healthy one: latest-per-
        // key means the gate sees only the regressed records.
        let current = load_store("inject-cur", &[healthy_sweep(), regressed]);
        let (speedup_pins, pause_pins, latency_pins) = gate_pins();

        let cmp = compare(&baseline, &current, Thresholds::default());
        let verdicts: Vec<Verdict> = cmp.regressions().iter().map(|r| r.verdict).collect();
        assert!(verdicts.contains(&Verdict::WallRegression), "{verdicts:?}");
        assert!(
            verdicts.contains(&Verdict::PromotedRegression),
            "{verdicts:?}"
        );

        let rows = speedup_rows(&current, &speedup_pins);
        assert!(rows.iter().any(|r| r.failed()), "0.33× must fail a 2× pin");
        let rows = pause_rows(&current, &pause_pins);
        assert!(
            rows.iter().any(|r| r.failed()),
            "50 ms must fail a 20 ms pin"
        );
        let rows = latency_rows(&current, &latency_pins);
        assert!(
            rows.iter().any(|r| r.failed()),
            "80 ms must fail a 25 ms pin"
        );
    }

    #[test]
    fn future_schema_versions_are_rejected_at_load() {
        let err = parse_run_records(
            "[\n  {\"schema_version\": 99, \"program\": \"Dmm\", \"backend\": \"threaded\", \
             \"vprocs\": 1, \"wall_clock_ns\": 1, \"promoted_bytes\": 0}\n]\n",
        )
        .unwrap_err();
        assert!(err.contains("\"schema_version\""), "{err}");
        assert!(err.contains("99"), "{err}");
    }
}
