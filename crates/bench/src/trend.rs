//! The `trend` report: per-program performance trajectories read from the
//! results store and rendered as Markdown for the CI job summary.
//!
//! For every program in the store (or one program under `--program`), the
//! report walks the batches in sequence order, picks each batch's
//! representative point — threaded, unbudgeted, highest vproc count — and
//! prints one row per batch: where the number came from (batch sequence,
//! git revision, scale, sweep kind), the wall clock, the p99 GC pause, the
//! p99 request latency, and the wall-clock ratio against the previous
//! batch's point with the same run-point key (computed through the store's
//! [`mgc_store::diff`] API, so a vproc-count change between batches
//! shows as "new key" rather than a bogus ratio).

use mgc_store::{diff, Batch, Query, Store, StoredRecord};
use std::fmt::Write as _;

/// The representative point of one batch for one program: the threaded,
/// unbudgeted record with the highest vproc count (ties go to the later
/// record, matching the store's latest-wins convention).
pub fn representative<'a>(batch: &'a Batch, program: &str) -> Option<&'a StoredRecord> {
    let threaded = Query::new()
        .program(program)
        .backend("threaded")
        .pause_budget(None)
        .run_over(batch.records.iter());
    threaded
        .iter()
        .enumerate()
        .max_by_key(|(i, r)| (r.vprocs(), *i))
        .map(|(_, r)| *r)
}

/// Program names across the whole store, in first-seen order.
pub fn programs(store: &Store) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for record in store.records() {
        if !names.iter().any(|n| n == record.program()) {
            names.push(record.program().to_string());
        }
    }
    names
}

fn ms(ns: Option<f64>) -> String {
    ns.map_or("–".to_string(), |v| format!("{:.3}", v / 1e6))
}

/// Renders the trajectory of one program as a Markdown table, or `None` if
/// no batch has a representative point for it.
pub fn program_trend(store: &Store, program: &str) -> Option<String> {
    let mut out = String::new();
    let _ = writeln!(out, "## {program}\n");
    let _ = writeln!(
        out,
        "| batch | git | scale | kind | vprocs | wall ms | p99 pause ms | p99 latency ms | Δ wall |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    let mut previous: Option<&StoredRecord> = None;
    let mut rows = 0;
    for batch in store.batches() {
        let Some(record) = representative(batch, program) else {
            continue;
        };
        let delta = match previous {
            Some(prev) => {
                let rows = diff(&[prev], &[record]);
                match rows.first().and_then(|row| row.wall_ratio()) {
                    Some(ratio) => format!("×{ratio:.2}"),
                    None if rows.is_empty() => "new key".to_string(),
                    None => "–".to_string(),
                }
            }
            None => "–".to_string(),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            batch.seq,
            batch.meta.git_rev,
            batch.meta.scale,
            batch.meta.kind,
            record.vprocs(),
            ms(record.wall_clock_ns()),
            ms(record.pause_p99_ns()),
            // Compute benchmarks serve no requests and record a zero
            // latency tail; render that as "no data", not "0.000".
            ms(record.latency_p99_ns().filter(|v| *v > 0.0)),
            delta,
        );
        previous = Some(record);
        rows += 1;
    }
    (rows > 0).then_some(out)
}

/// Renders the full trend report: one table per program, in first-seen
/// store order, optionally restricted to a single program.
pub fn trend_markdown(store: &Store, program: Option<&str>) -> String {
    let mut out = String::from("# Performance trend\n\n");
    let _ = writeln!(
        out,
        "{} batches, {} records in {}\n",
        store.batches().len(),
        store.num_records(),
        store.dir().display()
    );
    let names = match program {
        Some(name) => vec![name.to_string()],
        None => programs(store),
    };
    let mut any = false;
    for name in &names {
        if let Some(table) = program_trend(store, name) {
            out.push_str(&table);
            out.push('\n');
            any = true;
        }
    }
    if !any {
        let _ = writeln!(
            out,
            "No threaded, unbudgeted points matched{}.",
            program.map_or(String::new(), |p| format!(" program \"{p}\""))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_store::{RunMeta, Store};
    use std::path::PathBuf;

    fn record_line(program: &str, vprocs: u64, wall: u64, budget: Option<u64>) -> String {
        let budget = budget.map_or("null".to_string(), |us| us.to_string());
        format!(
            "{{\"schema_version\": 2, \"program\": \"{program}\", \
             \"backend\": \"threaded\", \"vprocs\": {vprocs}, \
             \"placement\": \"node-local\", \"pause_budget_us\": {budget}, \
             \"wall_clock_ns\": {wall}, \"promoted_bytes\": 1024, \
             \"pause_p99_ns\": 200000, \"latency_p99_ns\": null}}"
        )
    }

    fn store_with(batches: &[Vec<String>]) -> (Store, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "mgc-trend-{}-{}",
            std::process::id(),
            batches.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for lines in batches {
            Store::append_lines(&dir, &RunMeta::capture("test", "tiny"), lines).unwrap();
        }
        (Store::open(&dir).unwrap(), dir)
    }

    #[test]
    fn representative_prefers_highest_vprocs_and_skips_budgeted() {
        let (store, dir) = store_with(&[vec![
            record_line("DMM", 1, 9_000_000, None),
            record_line("DMM", 4, 4_000_000, None),
            record_line("DMM", 4, 3_000_000, Some(500)),
        ]]);
        let rep = representative(&store.batches()[0], "DMM").unwrap();
        assert_eq!(rep.vprocs(), 4);
        assert_eq!(rep.pause_budget_us(), None, "the budgeted point is not it");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn trend_rows_carry_deltas_across_batches() {
        let (store, dir) = store_with(&[
            vec![record_line("DMM", 4, 4_000_000, None)],
            vec![record_line("DMM", 4, 5_000_000, None)],
        ]);
        let md = trend_markdown(&store, None);
        assert!(md.contains("## DMM"), "{md}");
        assert!(md.contains("| 4.000 |"), "{md}");
        assert!(md.contains("| 5.000 |"), "{md}");
        assert!(
            md.contains("×1.25"),
            "the second row carries the ratio: {md}"
        );
        assert!(md.contains("2 batches, 2 records"), "{md}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn a_vproc_change_between_batches_reads_as_a_new_key() {
        let (store, dir) = store_with(&[
            vec![record_line("DMM", 2, 4_000_000, None)],
            vec![record_line("DMM", 4, 5_000_000, None)],
        ]);
        let md = program_trend(&store, "DMM").unwrap();
        assert!(md.contains("new key"), "{md}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_programs_report_cleanly() {
        let (store, dir) = store_with(&[vec![record_line("DMM", 1, 1_000_000, None)]]);
        let md = trend_markdown(&store, Some("Raytracer"));
        assert!(
            md.contains("No threaded, unbudgeted points matched"),
            "{md}"
        );
        assert!(md.contains("\"Raytracer\""), "{md}");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
