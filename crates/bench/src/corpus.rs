//! The corpus sweep harness: a JSON manifest describing a grid of run
//! points, swept by `sweep --corpus <manifest>` and appended to the
//! results store as one batch.
//!
//! A manifest names the corpus, fixes a workload scale, and lists points;
//! each point selects a program, a backend, one or more vproc counts, and
//! optionally a placement policy, a pause budget, a topology, a repetition
//! count, and whether to verify checksums:
//!
//! ```json
//! {
//!   "corpus_schema_version": 1,
//!   "name": "ci-smoke",
//!   "scale": "tiny",
//!   "points": [
//!     {"program": "quicksort", "backend": "threaded", "vprocs": [1, 2]},
//!     {"program": "server", "backend": "threaded", "vprocs": [2],
//!      "pause_budget_us": 500}
//!   ]
//! }
//! ```
//!
//! The manifest is parsed with the store's own JSON parser and versioned
//! the same way the store is: an unrecognised `corpus_schema_version` is
//! rejected with an error naming the field, not silently misread.

use mgc_heap::HeapConfig;
use mgc_numa::{AllocPolicy, PlacementPolicy, Topology};
use mgc_runtime::{Backend, Experiment, Program, RunRecord};
use mgc_server::{ServeParams, ServerProgram, SERVE_QUANTUM_NS};
use mgc_store::json::{self, JsonValue};
use mgc_store::{RunMeta, Store};
use mgc_workloads::{Scale, Workload};
use std::fmt::Write as _;
use std::path::Path;

/// The manifest format this build reads. Bump when a field changes
/// meaning, so older harnesses reject newer manifests loudly.
pub const CORPUS_SCHEMA_VERSION: u64 = 1;

/// A parsed corpus manifest: the sweep grid `sweep --corpus` runs.
#[derive(Debug, Clone)]
pub struct CorpusManifest {
    /// Corpus name; the appended batch records it as kind `corpus:<name>`.
    pub name: String,
    /// Workload scale preset (`tiny`/`small`/`bench`/`paper`).
    pub scale: String,
    /// The run points, swept in manifest order.
    pub points: Vec<CorpusPoint>,
}

/// One manifest entry: a program crossed with a list of vproc counts under
/// one configuration.
#[derive(Debug, Clone)]
pub struct CorpusPoint {
    /// Program key (`dmm`, `raytracer`, `quicksort`, `barnes-hut`, `smvm`,
    /// `churn`, or `server`).
    pub program: String,
    /// Execution backend.
    pub backend: Backend,
    /// Vproc counts to sweep; one record per count.
    pub vprocs: Vec<usize>,
    /// Promotion-chunk placement policy (default node-local).
    pub placement: PlacementPolicy,
    /// Soft global-collection pause budget in µs, if any.
    pub pause_budget_us: Option<u64>,
    /// `"dual-node-test"` (default) or `"host"` — the machine model.
    pub topology: CorpusTopology,
    /// Wall-clock repetitions per threaded point; the median is kept.
    pub reps: usize,
    /// Whether to verify the program checksum at the first vproc count.
    pub verify: bool,
}

/// Which machine a corpus point runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusTopology {
    /// The two-node, four-core test topology every CI gate uses.
    DualNodeTest,
    /// The probed topology of the machine running the sweep.
    Host,
}

impl CorpusTopology {
    fn build(self) -> Topology {
        match self {
            CorpusTopology::DualNodeTest => Topology::dual_node_test(),
            CorpusTopology::Host => Topology::host(),
        }
    }
}

/// Parses a scale preset name as the manifest (and `MGC_SCALE`) spells it.
pub fn scale_from_name(name: &str) -> Result<Scale, String> {
    match name {
        "tiny" => Ok(Scale::tiny()),
        "small" => Ok(Scale::small()),
        "bench" => Ok(Scale::bench()),
        "paper" => Ok(Scale::paper()),
        other => Err(format!(
            "unknown scale \"{other}\" (expected tiny, small, bench, or paper)"
        )),
    }
}

/// Program keys a manifest may name, with the workload each resolves to
/// (`server` is special-cased: it is not a figure workload).
const PROGRAM_KEYS: [(&str, Option<Workload>); 7] = [
    ("dmm", Some(Workload::Dmm)),
    ("raytracer", Some(Workload::Raytracer)),
    ("quicksort", Some(Workload::Quicksort)),
    ("barnes-hut", Some(Workload::BarnesHut)),
    ("smvm", Some(Workload::Smvm)),
    ("churn", Some(Workload::Churn)),
    ("server", None),
];

fn resolve_program(key: &str) -> Result<Option<Workload>, String> {
    PROGRAM_KEYS
        .iter()
        .find(|(name, _)| *name == key)
        .map(|(_, workload)| *workload)
        .ok_or_else(|| {
            let known: Vec<&str> = PROGRAM_KEYS.iter().map(|(name, _)| *name).collect();
            format!(
                "unknown program \"{key}\" (expected one of {})",
                known.join(", ")
            )
        })
}

/// Parses a corpus manifest from its JSON text.
pub fn parse_corpus(text: &str) -> Result<CorpusManifest, String> {
    let value = json::parse(text).map_err(|err| format!("corpus manifest: {err}"))?;
    let JsonValue::Object(fields) = &value else {
        return Err("corpus manifest: expected a JSON object".to_string());
    };
    match value
        .get("corpus_schema_version")
        .and_then(JsonValue::as_u64)
    {
        Some(CORPUS_SCHEMA_VERSION) => {}
        _ => {
            return Err(format!(
                "corpus manifest: field \"corpus_schema_version\" is {}, but this build \
                 reads version {CORPUS_SCHEMA_VERSION}",
                value
                    .get("corpus_schema_version")
                    .map_or("absent".to_string(), |v| format!("{v:?}")),
            ))
        }
    }
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "corpus_schema_version" | "name" | "scale" | "points"
        ) {
            return Err(format!("corpus manifest: unknown field \"{key}\""));
        }
    }
    let name = value
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("corpus manifest: missing string field \"name\"")?
        .to_string();
    let scale = value
        .get("scale")
        .and_then(JsonValue::as_str)
        .ok_or("corpus manifest: missing string field \"scale\"")?
        .to_string();
    scale_from_name(&scale)?;
    let points = value
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or("corpus manifest: missing array field \"points\"")?;
    if points.is_empty() {
        return Err("corpus manifest: \"points\" is empty".to_string());
    }
    let points = points
        .iter()
        .enumerate()
        .map(|(i, point)| {
            parse_point(point).map_err(|err| format!("corpus manifest: points[{i}]: {err}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CorpusManifest {
        name,
        scale,
        points,
    })
}

fn parse_point(value: &JsonValue) -> Result<CorpusPoint, String> {
    let JsonValue::Object(fields) = value else {
        return Err("expected a JSON object".to_string());
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "program"
                | "backend"
                | "vprocs"
                | "placement"
                | "pause_budget_us"
                | "topology"
                | "reps"
                | "verify"
        ) {
            return Err(format!("unknown field \"{key}\""));
        }
    }
    let program = value
        .get("program")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"program\"")?
        .to_string();
    resolve_program(&program)?;
    let backend = value
        .get("backend")
        .and_then(JsonValue::as_str)
        .unwrap_or("threaded")
        .parse::<Backend>()?;
    let vprocs = value
        .get("vprocs")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field \"vprocs\"")?
        .iter()
        .map(|v| {
            v.as_u64()
                .filter(|n| *n >= 1)
                .map(|n| n as usize)
                .ok_or_else(|| format!("bad vproc count {v:?}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if vprocs.is_empty() {
        return Err("\"vprocs\" is empty".to_string());
    }
    let placement = match value.get("placement").and_then(JsonValue::as_str) {
        Some(name) => name.parse::<PlacementPolicy>()?,
        None => PlacementPolicy::default(),
    };
    let pause_budget_us = match value.get("pause_budget_us") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            format!("bad \"pause_budget_us\" {v:?} (expected a non-negative integer or null)")
        })?),
    };
    let topology = match value.get("topology").and_then(JsonValue::as_str) {
        None | Some("dual-node-test") => CorpusTopology::DualNodeTest,
        Some("host") => CorpusTopology::Host,
        Some(other) => {
            return Err(format!(
                "unknown topology \"{other}\" (expected dual-node-test or host)"
            ))
        }
    };
    let reps = match value.get("reps") {
        None => 1,
        Some(v) => v
            .as_u64()
            .filter(|n| *n >= 1)
            .map(|n| n as usize)
            .ok_or_else(|| format!("bad \"reps\" {v:?} (expected a positive integer)"))?,
    };
    let verify = match value.get("verify") {
        None => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("bad \"verify\" {v:?} (expected true or false)"))?,
    };
    Ok(CorpusPoint {
        program,
        backend,
        vprocs,
        placement,
        pause_budget_us,
        topology,
        reps,
        verify,
    })
}

/// Builds the program of one corpus run. `server` maps to the
/// Request-Server with one worker per vproc; everything else is a figure
/// workload at the manifest scale.
fn point_program(point: &CorpusPoint, scale: Scale, vprocs: usize) -> Box<dyn Program> {
    match resolve_program(&point.program).expect("the manifest was validated at parse time") {
        Some(workload) => workload.program(scale),
        None => {
            let mut params = if scale == Scale::bench() || scale == Scale::paper() {
                ServeParams::bench()
            } else {
                ServeParams::small()
            };
            params.workers = vprocs;
            Box::new(ServerProgram::new(params).expect("the serve presets are valid"))
        }
    }
}

/// Runs one (point, vprocs) cell: `reps` wall-clock repetitions on the
/// threaded backend with the median kept, one run on the deterministic
/// simulated backend.
fn run_cell(point: &CorpusPoint, scale: Scale, vprocs: usize) -> RunRecord {
    let run_once = |verify: bool| {
        let mut experiment = Experiment::new(point_program(point, scale, vprocs))
            .backend(point.backend)
            .topology(point.topology.build())
            .vprocs(vprocs)
            .policy(AllocPolicy::Local)
            .placement(point.placement)
            .heap(HeapConfig::small_for_tests())
            .verify_checksum(verify);
        if point.program == "server" {
            // The simulated serve quantum must leave room for a worker to
            // start behind the generator on the same vproc.
            experiment = experiment.quantum_ns(SERVE_QUANTUM_NS);
        }
        if let Some(budget) = point.pause_budget_us {
            experiment = experiment.gc_pause_budget(budget);
        }
        experiment
            .run()
            .unwrap_or_else(|err| panic!("corpus point {}/{vprocs}v: {err}", point.program))
    };
    let verify_first = point.verify && vprocs == point.vprocs[0];
    let first = run_once(verify_first);
    if point.backend != Backend::Threaded || point.reps == 1 {
        return first;
    }
    // Only the first repetition pays for checksum verification; its verdict
    // is carried over to whichever repetition ends up the median.
    let checksum_ok = first.checksum_ok;
    let mut records = vec![first];
    for _ in 1..point.reps {
        records.push(run_once(false));
    }
    records.sort_by(|a, b| {
        a.wall_clock_ns()
            .partial_cmp(&b.wall_clock_ns())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut median = records.swap_remove(point.reps / 2);
    median.checksum_ok = checksum_ok;
    median
}

/// Runs every cell of a manifest, in manifest order.
pub fn run_corpus(manifest: &CorpusManifest) -> Vec<RunRecord> {
    let scale = scale_from_name(&manifest.scale).expect("the manifest was validated");
    let mut records = Vec::new();
    for point in &manifest.points {
        for &vprocs in &point.vprocs {
            records.push(run_cell(point, scale, vprocs));
        }
    }
    records
}

/// One summary line per corpus record, for the console.
pub fn format_corpus(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>6} {:>12} {:>12} {:>10} {:>8}",
        "program", "backend", "vprocs", "wall-ms", "sim-ms", "p99-pause", "checksum"
    );
    for r in records {
        let ms = |ns: Option<f64>| ns.map_or("n/a".to_string(), |v| format!("{:.3}", v / 1e6));
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>6} {:>12} {:>12} {:>10} {:>8}",
            r.program,
            r.backend.to_string(),
            r.config.num_vprocs,
            ms(r.wall_clock_ns()),
            ms(r.simulated_ns()),
            ms(Some(r.report.pause_stats().percentile(99.0))),
            match r.checksum_ok {
                Some(true) => "ok",
                Some(false) => "MISMATCH",
                None => "n/a",
            },
        );
    }
    out
}

/// Runs a corpus manifest end-to-end: parse, sweep, print the summary, and
/// append one batch of kind `corpus:<name>` to `store_dir`. Returns the
/// appended batch's sequence number.
pub fn run_corpus_and_report(manifest_path: &Path, store_dir: &Path) -> u64 {
    let text = std::fs::read_to_string(manifest_path)
        .unwrap_or_else(|err| panic!("could not read {}: {err}", manifest_path.display()));
    let manifest =
        parse_corpus(&text).unwrap_or_else(|err| panic!("{}: {err}", manifest_path.display()));
    println!(
        "# Corpus {} — scale {}, {} points",
        manifest.name,
        manifest.scale,
        manifest.points.len()
    );
    let records = run_corpus(&manifest);
    println!("{}", format_corpus(&records));
    let meta = RunMeta::capture(&format!("corpus:{}", manifest.name), &manifest.scale);
    let seq = Store::append(store_dir, &meta, &records)
        .unwrap_or_else(|err| panic!("could not append to {}: {err}", store_dir.display()));
    println!(
        "appended batch {seq} ({} records) to {}",
        records.len(),
        store_dir.display()
    );
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_json(points: &str) -> String {
        format!(
            "{{\"corpus_schema_version\": 1, \"name\": \"test\", \
             \"scale\": \"tiny\", \"points\": [{points}]}}"
        )
    }

    #[test]
    fn parses_a_full_manifest() {
        let m = parse_corpus(&manifest_json(
            "{\"program\": \"quicksort\", \"backend\": \"threaded\", \"vprocs\": [1, 2], \
             \"placement\": \"interleave\", \"pause_budget_us\": 500, \
             \"topology\": \"host\", \"reps\": 3, \"verify\": false}",
        ))
        .unwrap();
        assert_eq!(m.name, "test");
        assert_eq!(m.scale, "tiny");
        assert_eq!(m.points.len(), 1);
        let p = &m.points[0];
        assert_eq!(p.program, "quicksort");
        assert_eq!(p.backend, Backend::Threaded);
        assert_eq!(p.vprocs, vec![1, 2]);
        assert_eq!(p.placement, PlacementPolicy::Interleave);
        assert_eq!(p.pause_budget_us, Some(500));
        assert_eq!(p.topology, CorpusTopology::Host);
        assert_eq!(p.reps, 3);
        assert!(!p.verify);
    }

    #[test]
    fn defaults_fill_the_optional_fields() {
        let m = parse_corpus(&manifest_json("{\"program\": \"dmm\", \"vprocs\": [1]}")).unwrap();
        let p = &m.points[0];
        assert_eq!(p.backend, Backend::Threaded);
        assert_eq!(p.placement, PlacementPolicy::default());
        assert_eq!(p.pause_budget_us, None);
        assert_eq!(p.topology, CorpusTopology::DualNodeTest);
        assert_eq!(p.reps, 1);
        assert!(p.verify);
    }

    #[test]
    fn rejects_unknown_versions_programs_and_fields() {
        let future = manifest_json("{\"program\": \"dmm\", \"vprocs\": [1]}").replace(
            "\"corpus_schema_version\": 1",
            "\"corpus_schema_version\": 9",
        );
        let err = parse_corpus(&future).unwrap_err();
        assert!(err.contains("corpus_schema_version"), "{err}");
        assert!(err.contains("reads version 1"), "{err}");

        let err =
            parse_corpus(&manifest_json("{\"program\": \"doom\", \"vprocs\": [1]}")).unwrap_err();
        assert!(err.contains("unknown program \"doom\""), "{err}");
        assert!(err.contains("server"), "the error lists the known keys");

        let err = parse_corpus(&manifest_json(
            "{\"program\": \"dmm\", \"vprocs\": [1], \"warp\": 9}",
        ))
        .unwrap_err();
        assert!(err.contains("unknown field \"warp\""), "{err}");

        let err =
            parse_corpus(&manifest_json("{\"program\": \"dmm\", \"vprocs\": []}")).unwrap_err();
        assert!(err.contains("\"vprocs\" is empty"), "{err}");
    }

    #[test]
    fn a_tiny_corpus_runs_and_lands_in_the_store() {
        let dir = std::env::temp_dir().join(format!("mgc-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = parse_corpus(&manifest_json(
            "{\"program\": \"quicksort\", \"backend\": \"simulated\", \"vprocs\": [1, 2]}, \
             {\"program\": \"server\", \"backend\": \"simulated\", \"vprocs\": [2], \
              \"pause_budget_us\": 500}",
        ))
        .unwrap();
        let records = run_corpus(&manifest);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].program, "Quicksort");
        assert_eq!(
            records[0].checksum_ok,
            Some(true),
            "the first cell verifies"
        );
        assert_eq!(records[2].program, "Request-Server");
        assert_eq!(records[2].config.gc.pause_budget_us, Some(500));

        let meta = RunMeta::capture("corpus:test", &manifest.scale);
        let seq = Store::append(&dir, &meta, &records).unwrap();
        let store = Store::open(&dir).unwrap();
        let batch = store.batch(seq).unwrap();
        assert_eq!(batch.meta.kind, "corpus:test");
        assert_eq!(batch.records.len(), 3);
        for (record, stored) in records.iter().zip(batch.records.iter()) {
            assert_eq!(stored.raw(), record.to_json());
        }
        let table = format_corpus(&records);
        assert!(table.contains("Quicksort"));
        assert!(table.contains("Request-Server"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
