//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! | Artefact | Binary | What it reproduces |
//! |----------|--------|--------------------|
//! | Figure 4 | `fig4` | Speedups of the five benchmarks on the Intel Xeon machine |
//! | Figure 5 | `fig5` | Speedups on the AMD Opteron machine, local allocation |
//! | Figure 6 | `fig6` | Speedups on the AMD machine, interleaved allocation |
//! | Figure 7 | `fig7` | Speedups on the AMD machine, socket-zero allocation |
//! | Table 1  | `table1` | Modelled bandwidth between a node and the rest of the system |
//! | all      | `sweep` | Every figure plus Table 1, written as CSV under `results/` |
//!
//! Absolute speedups depend on the workload scale (the default is a scaled
//! down input set — set `MGC_SCALE=paper` for the published sizes); the
//! qualitative shape — which benchmarks scale, where they flatten, and how
//! the three allocation policies order — is the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mgc_heap::HeapConfig;
use mgc_numa::{AllocPolicy, PlacementPolicy, Topology};
use mgc_runtime::{run_records_json, Backend, EnvOverrides, Experiment, Program, RunRecord};
use mgc_server::{ServeParams, ServerProgram, SERVE_QUANTUM_NS};
use mgc_store::{RunMeta, Store};
use mgc_workloads::churn::{Churn, ChurnParams};
use mgc_workloads::{speedup_series, Scale, SpeedupPoint, Workload};
use std::fmt::Write as _;

/// Description of one speedup figure.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Figure name, e.g. `"figure4"`.
    pub name: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// The machine model.
    pub topology: Topology,
    /// The page/chunk placement policy.
    pub policy: AllocPolicy,
    /// Thread counts on the x axis.
    pub threads: Vec<usize>,
}

/// Figure 4: the Intel machine with local allocation.
pub fn figure4() -> FigureSpec {
    FigureSpec {
        name: "figure4",
        title: "Speedup on Intel Xeon X7560 (32 cores), local allocation",
        topology: Topology::intel_xeon_32(),
        policy: AllocPolicy::Local,
        threads: vec![1, 4, 8, 12, 16, 24, 32],
    }
}

/// Figure 5: the AMD machine with local allocation (the paper's default).
pub fn figure5() -> FigureSpec {
    FigureSpec {
        name: "figure5",
        title: "Speedup on AMD Opteron 6172 (48 cores), local allocation",
        topology: Topology::amd_magny_cours_48(),
        policy: AllocPolicy::Local,
        threads: vec![1, 4, 8, 12, 24, 36, 48],
    }
}

/// Figure 6: the AMD machine with interleaved allocation (GHC-style).
pub fn figure6() -> FigureSpec {
    FigureSpec {
        name: "figure6",
        title: "Speedup on AMD Opteron 6172 (48 cores), interleaved allocation",
        policy: AllocPolicy::Interleaved,
        ..figure5()
    }
}

/// Figure 7: the AMD machine with socket-zero allocation.
pub fn figure7() -> FigureSpec {
    FigureSpec {
        name: "figure7",
        title: "Speedup on AMD Opteron 6172 (48 cores), socket-zero allocation",
        policy: AllocPolicy::SocketZero,
        ..figure5()
    }
}

/// The series of one figure: a speedup curve per benchmark.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// The figure this data belongs to.
    pub spec_name: &'static str,
    /// `(benchmark, curve)` pairs in the paper's legend order.
    pub series: Vec<(Workload, Vec<SpeedupPoint>)>,
}

/// Runs every benchmark of a figure.
///
/// Speedups in Figures 6 and 7 are plotted relative to the *same*
/// single-thread baseline as Figure 5 (the paper plots them "relative to the
/// single-processor performance for the AMD machine in Figure 5"), which is
/// what `baseline_policy` arranges.
pub fn run_figure(spec: &FigureSpec, scale: Scale) -> FigureData {
    let series = Workload::FIGURES
        .iter()
        .map(|&workload| {
            let baseline = workload
                .experiment(scale)
                .topology(spec.topology.clone())
                .vprocs(1)
                .policy(AllocPolicy::Local)
                // Figures read timings only; skip the sequential reference
                // checksum each point would otherwise recompute.
                .verify_checksum(false)
                .run()
                .expect("figure baselines use one vproc")
                .report
                .elapsed_ns;
            let points = speedup_series(
                &spec.topology,
                &spec.threads,
                spec.policy,
                workload,
                scale,
                Some(baseline),
            );
            (workload, points)
        })
        .collect();
    FigureData {
        spec_name: spec.name,
        series,
    }
}

/// Formats a figure as an aligned text table (threads × benchmarks).
pub fn format_figure(spec: &FigureSpec, data: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — {}", spec.name, spec.title);
    let _ = write!(out, "{:>8}", "threads");
    for (workload, _) in &data.series {
        let _ = write!(out, " {:>22}", workload.label());
    }
    let _ = writeln!(out);
    for (i, &threads) in spec.threads.iter().enumerate() {
        let _ = write!(out, "{threads:>8}");
        for (_, points) in &data.series {
            let _ = write!(out, " {:>22.2}", points[i].speedup);
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a figure as CSV (`benchmark,threads,speedup,elapsed_ns`).
pub fn figure_csv(data: &FigureData) -> String {
    let mut out = String::from("benchmark,threads,speedup,elapsed_ns\n");
    for (workload, points) in &data.series {
        for p in points {
            let _ = writeln!(
                out,
                "{},{},{:.4},{:.0}",
                workload.label(),
                p.threads,
                p.speedup,
                p.elapsed_ns
            );
        }
    }
    out
}

/// Reproduces Table 1: the modelled bandwidth between a single node and the
/// rest of the system, for both machines.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 1 — theoretical bandwidth (GB/s) between a node and the rest of the system"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10}",
        "", "AMD (GB/s)", "Intel (GB/s)"
    );
    let amd = Topology::amd_magny_cours_48();
    let intel = Topology::intel_xeon_32();
    let (amd_local, amd_same, amd_cross) = amd.table1_bandwidths();
    let (intel_local, intel_same, intel_cross) = intel.table1_bandwidths();
    let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.1}"));
    let _ = writeln!(
        out,
        "{:<28} {:>10.1} {:>10.1}",
        "Local Memory", amd_local, intel_local
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10}",
        "Node in same package",
        fmt(amd_same),
        fmt(intel_same)
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10.1} {:>10.1}",
        "Node on another package", amd_cross, intel_cross
    );
    out
}

// ----------------------------------------------------------------------
// Wall-clock baselines: the simulated and the threaded backend side by
// side. This is what the `bench-baseline` CI job runs and uploads as
// `BENCH_threaded.json`, giving the perf trajectory its first real points.
// ----------------------------------------------------------------------

/// Vproc counts the baseline sweep covers (the CI runners have few cores,
/// and the first perf question is simply "does adding threads help").
pub const BASELINE_VPROCS: [usize; 3] = [1, 2, 4];

/// Wall-clock repetitions per threaded baseline point; the sweep keeps the
/// median so a single noisy run on a loaded CI machine cannot flap the
/// perf gates.
pub const BASELINE_REPS: usize = 3;

/// Runs one baseline point through the [`Experiment`] front door. The
/// expected checksum usually means running a sequential reference of the
/// whole program, so the sweep verifies it only at the first vproc count
/// of each (program, backend) pair instead of recomputing it six times —
/// checksum stability across vproc counts is the equivalence suite's job.
///
/// Threaded points run [`BASELINE_REPS`] times and report the median
/// wall-clock record (the simulated backend's virtual clock is
/// deterministic, so one run suffices there).
fn baseline_point(
    make_program: &dyn Fn() -> Box<dyn Program>,
    backend: Backend,
    vprocs: usize,
    placement: PlacementPolicy,
) -> RunRecord {
    let run_once = |verify: bool| {
        Experiment::new(make_program())
            .backend(backend)
            .topology(Topology::dual_node_test())
            .vprocs(vprocs)
            .policy(AllocPolicy::Local)
            .placement(placement)
            .verify_checksum(verify)
            .run()
            .expect("baseline vproc counts fit the dual-node test topology")
    };
    let first = run_once(vprocs == BASELINE_VPROCS[0]);
    if backend != Backend::Threaded {
        return first;
    }
    // Only the first repetition pays for checksum verification; its verdict
    // is carried over to whichever repetition ends up the median.
    let checksum_ok = first.checksum_ok;
    let mut records = vec![first];
    for _ in 1..BASELINE_REPS {
        records.push(run_once(false));
    }
    records.sort_by(|a, b| {
        a.wall_clock_ns()
            .partial_cmp(&b.wall_clock_ns())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut median = records.swap_remove(BASELINE_REPS / 2);
    median.checksum_ok = checksum_ok;
    median
}

/// Runs every figure workload — plus, when `churn` is given, the synthetic
/// churn benchmark with those parameters — at 1/2/4 vprocs under **both**
/// backends on the small test topology, so wall-clock and simulated time
/// can be read side by side. Every point is a full [`RunRecord`].
pub fn run_baseline(
    scale: Scale,
    churn: Option<ChurnParams>,
    placement: PlacementPolicy,
) -> Vec<RunRecord> {
    let mut points = Vec::new();
    for workload in Workload::FIGURES {
        for &vprocs in &BASELINE_VPROCS {
            for backend in Backend::ALL {
                points.push(baseline_point(
                    &|| workload.program(scale),
                    backend,
                    vprocs,
                    placement,
                ));
            }
        }
    }
    if let Some(params) = churn {
        for &vprocs in &BASELINE_VPROCS {
            for backend in Backend::ALL {
                points.push(baseline_point(
                    &|| Box::new(Churn::new(params)),
                    backend,
                    vprocs,
                    placement,
                ));
            }
        }
    }
    points
}

/// The program names of a baseline run, in first-seen order.
fn baseline_programs(points: &[RunRecord]) -> Vec<&str> {
    let mut names: Vec<&str> = Vec::new();
    for point in points {
        if !names.contains(&point.program.as_str()) {
            names.push(&point.program);
        }
    }
    names
}

/// Formats the baseline as an aligned table: wall-clock time next to
/// simulated time, per program and vproc count.
pub fn format_baseline(points: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Wall-clock baseline — threaded vs simulated (each cell in ms)"
    );
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>14} {:>14} {:>8} {:>8} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "benchmark",
        "vprocs",
        "wall-clock",
        "simulated",
        "minors",
        "globals",
        "tasks",
        "steals",
        "promoted-B",
        "p99-pause",
        "max-pause"
    );
    for program in baseline_programs(points) {
        for &vprocs in &BASELINE_VPROCS {
            let find = |backend: Backend| {
                points.iter().find(|p| {
                    p.program == program && p.config.num_vprocs == vprocs && p.backend == backend
                })
            };
            let (Some(threaded), Some(simulated)) =
                (find(Backend::Threaded), find(Backend::Simulated))
            else {
                continue;
            };
            let ms = |ns: Option<f64>| ns.map_or("n/a".to_string(), |v| format!("{:.3}", v / 1e6));
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>14} {:>14} {:>8} {:>8} {:>8} {:>8} {:>12} {:>10} {:>10}",
                program,
                vprocs,
                ms(threaded.wall_clock_ns()),
                ms(simulated.simulated_ns()),
                threaded.report.gc.minor_collections,
                threaded.report.gc.global_collections,
                threaded.report.total_tasks(),
                threaded.report.total_steals(),
                threaded.report.total_promoted_bytes(),
                ms(Some(threaded.report.pause_stats().percentile(99.0))),
                ms(Some(threaded.report.max_pause_ns())),
            );
        }
    }
    out
}

/// One line per program comparing promoted bytes on the threaded backend
/// against the eager-publication upper bound implied by the simulated
/// model's promotion volume — the `bench-baseline` CI job prints this into
/// the job summary so the lazy-promotion win is visible per PR.
pub fn promoted_bytes_summary(points: &[RunRecord]) -> String {
    let mut out = String::new();
    for program in baseline_programs(points) {
        let total = |backend: Backend| -> (u64, u64, u64) {
            points
                .iter()
                .filter(|p| p.program == program && p.backend == backend)
                .fold((0, 0, 0), |(b, s, p), point| {
                    (
                        b + point.report.total_promoted_bytes(),
                        s + point.report.promotions_at_steal(),
                        p + point.report.promotions_at_publish(),
                    )
                })
        };
        let (thr_bytes, thr_steal, thr_publish) = total(Backend::Threaded);
        let (sim_bytes, _, _) = total(Backend::Simulated);
        let _ = writeln!(
            out,
            "promoted-bytes {program:<24} threaded {thr_bytes:>10} (steal-driven ops \
             {thr_steal:>5}, publish-driven ops {thr_publish:>5}) | simulated {sim_bytes:>10}",
        );
    }
    out
}

/// Default results-store directory the sweeps append to, relative to the
/// repo root.
pub const STORE_DIR: &str = "results/store";

/// The ambient `MGC_SCALE` name (defaulting like [`scale_from_env`] does),
/// for recording in batch metadata.
pub fn scale_name_from_env() -> String {
    match std::env::var("MGC_SCALE") {
        Ok(name) if ["tiny", "small", "bench", "paper"].contains(&name.as_str()) => name,
        _ => "tiny".to_string(),
    }
}

/// Persists a sweep's records both ways: appends one batch of `kind` to
/// the results store, then writes the legacy flat array
/// `results/<flat_name>` as an **export of that batch**
/// ([`Batch::flat_records_json`](mgc_store::Batch::flat_records_json)) —
/// the flat artifact is generated through the store, so the two can never
/// drift apart. If the store append fails the flat file is still written
/// directly, so CI artifacts survive a read-only store directory.
fn persist_points(kind: &str, flat_name: &str, points: &[RunRecord]) {
    let store_dir = std::path::Path::new(STORE_DIR);
    let meta = RunMeta::capture(kind, &scale_name_from_env());
    let flat = match Store::append(store_dir, &meta, points) {
        Ok(seq) => {
            println!(
                "appended batch {seq} ({} records) to {}",
                points.len(),
                store_dir.display()
            );
            Store::open(store_dir)
                .ok()
                .and_then(|store| store.batch(seq).map(|b| b.flat_records_json()))
                .unwrap_or_else(|| run_records_json(points))
        }
        Err(err) => {
            eprintln!(
                "warning: could not append to {}: {err}",
                store_dir.display()
            );
            run_records_json(points)
        }
    };
    let dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(flat_name);
    match std::fs::write(&path, flat) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}

/// Runs the baseline sweep, prints the side-by-side table, appends the
/// records to the results store, and writes `results/BENCH_threaded.json`
/// (the flat export of that batch — the CI `bench-baseline` artifact).
pub fn run_baseline_and_report(churn: Option<ChurnParams>, placement: PlacementPolicy) {
    let scale = scale_from_env();
    let points = run_baseline(scale, churn, placement);
    println!("{}", format_baseline(&points));
    println!("{}", promoted_bytes_summary(&points));
    persist_points("bench-baseline", "BENCH_threaded.json", &points);
}

// ----------------------------------------------------------------------
// Figure 8: NodeLocal vs Interleave vs Adaptive promotion-chunk placement
// on the threaded backend. One row per (program, placement), with the
// local/remote promoted-byte split, the same-node/cross-node steal split,
// and the adaptive controller's switch count that together make the
// locality win (and the controller's convergence) visible.
// ----------------------------------------------------------------------

/// Vproc count of the figure-8 sweep (4 OS threads on the dual-node test
/// topology: two workers per node, so both steal locality classes occur).
pub const FIGURE8_VPROCS: usize = 4;

/// Runs one figure-8 point: `workload` on the threaded backend under
/// `placement`, with the small test heap so a run performs many chunk
/// leases (which is what makes placement observable at tiny scale).
fn figure8_point(workload: Workload, scale: Scale, placement: PlacementPolicy) -> RunRecord {
    workload
        .experiment(scale)
        .backend(Backend::Threaded)
        .topology(Topology::dual_node_test())
        .vprocs(FIGURE8_VPROCS)
        .policy(AllocPolicy::Local)
        .placement(placement)
        .heap(HeapConfig::small_for_tests())
        // Figure 8 reads locality counters and timings only; correctness
        // under every placement is pinned by the workloads placement suite.
        .verify_checksum(false)
        .run()
        .expect("the figure-8 configuration is valid")
}

/// Runs all six programs under `NodeLocal`, `Interleave`, and `Adaptive`
/// placement — the two static extremes plus the controller that moves
/// between them.
pub fn run_figure8(scale: Scale) -> Vec<RunRecord> {
    let mut points = Vec::new();
    for placement in [
        PlacementPolicy::NodeLocal,
        PlacementPolicy::Interleave,
        PlacementPolicy::Adaptive,
    ] {
        for workload in Workload::ALL {
            points.push(figure8_point(workload, scale, placement));
        }
    }
    points
}

/// Formats the figure-8 records as CSV
/// (`program,placement,vprocs,wall_clock_ns,promoted_bytes,...`).
pub fn figure8_csv(points: &[RunRecord]) -> String {
    let mut out = String::from(
        "program,placement,vprocs,wall_clock_ns,promoted_bytes,promoted_bytes_local,\
         promoted_bytes_remote,steals,steals_same_node,steals_cross_node,placement_switches\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{:.0},{},{},{},{},{},{},{}",
            p.program,
            p.config.placement,
            p.config.num_vprocs,
            p.wall_clock_ns().unwrap_or(0.0),
            p.report.total_promoted_bytes(),
            p.report.promoted_bytes_local(),
            p.report.promoted_bytes_remote(),
            p.report.total_steals(),
            p.report.steals_same_node(),
            p.report.steals_cross_node(),
            p.report.placement_switches(),
        );
    }
    out
}

/// Formats the figure-8 records as an aligned table for the console.
pub fn format_figure8(points: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 8 — promotion-chunk placement: node-local vs interleave vs adaptive \
         (threaded, {FIGURE8_VPROCS} vprocs)"
    );
    let _ = writeln!(
        out,
        "{:<24} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
        "benchmark",
        "placement",
        "wall-ms",
        "local-B",
        "remote-B",
        "steals",
        "same-node",
        "cross-node",
        "switches"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12.3} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
            p.program,
            p.config.placement.label(),
            p.wall_clock_ns().unwrap_or(0.0) / 1e6,
            p.report.promoted_bytes_local(),
            p.report.promoted_bytes_remote(),
            p.report.total_steals(),
            p.report.steals_same_node(),
            p.report.steals_cross_node(),
            p.report.placement_switches(),
        );
    }
    out
}

/// Runs figure 8 end-to-end, printing the table and writing
/// `results/figure8.csv` (the CI `figure-smoke` artifact).
pub fn run_figure8_and_report() {
    let scale = scale_from_env();
    let points = run_figure8(scale);
    println!("{}", format_figure8(&points));
    let dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return;
    }
    let path = dir.join("figure8.csv");
    match std::fs::write(&path, figure8_csv(&points)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}

// ----------------------------------------------------------------------
// Host-topology smoke: the one run that exercises `Topology::host()` — the
// probed node/core/memory layout of the machine the harness is actually on
// — instead of a modelled machine. CI runs it on every PR so the sysfs
// probe, the thread-binding fallback, and the adaptive controller are all
// exercised against a real (usually single-node) host.
// ----------------------------------------------------------------------

/// Runs one small workload on the probed host topology with adaptive
/// placement and returns the record. Never panics on exotic hosts:
/// `Topology::host()` degrades to a single node, and the vproc count is
/// clamped to what the probed topology can seat.
pub fn run_host_smoke() -> RunRecord {
    let topology = Topology::host();
    let vprocs = topology.num_cores().clamp(1, 4);
    Workload::Dmm
        .experiment(Scale::tiny())
        .backend(Backend::Threaded)
        .topology(topology)
        .vprocs(vprocs)
        .policy(AllocPolicy::Local)
        .placement(PlacementPolicy::Adaptive)
        .heap(HeapConfig::small_for_tests())
        .run()
        .expect("the host smoke configuration is valid on any probed topology")
}

/// Runs the host-topology smoke, prints the probed layout plus the
/// per-vproc binding outcomes, and writes `results/host_smoke.json` (one
/// `RunRecord` — the CI `host-topology` artifact, grepped for the
/// `placement_decisions` and `node_bindings` keys).
pub fn run_host_smoke_and_report() {
    let record = run_host_smoke();
    let topology = Topology::host();
    println!(
        "# Host-topology smoke — {} node(s) × {} core(s), {} vprocs, adaptive placement",
        topology.num_nodes(),
        topology.num_cores(),
        record.config.num_vprocs,
    );
    for (vproc, stats) in record.report.per_vproc.iter().enumerate() {
        println!(
            "vproc {vproc}: binding={} switches={}",
            if stats.node_binding_pinned {
                "pinned"
            } else {
                "tagged"
            },
            stats.placement_switches,
        );
    }
    println!(
        "checksum_ok={:?} placement_switches={}",
        record.checksum_ok,
        record.report.placement_switches(),
    );
    let dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return;
    }
    let path = dir.join("host_smoke.json");
    match std::fs::write(&path, run_records_json(std::slice::from_ref(&record))) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}

// ----------------------------------------------------------------------
// Service scenario: the Request-Server program under open-loop load. One
// simulated point (deterministic, correlation-ready), one plain threaded
// point (wall-clock latency percentiles), and one threaded point under the
// bounded-pause budget — so the latency tail can be read against the GC
// pause tail on the same page. This is what the CI `serve-smoke` job runs
// and uploads as `SERVE_threaded.json`.
// ----------------------------------------------------------------------

/// The soft global-collection pause budget (µs) of the bounded-pause serve
/// point — the same budget the pause-telemetry docs quote, so the latency
/// tail under it is directly comparable.
pub const SERVE_PAUSE_BUDGET_US: u64 = 500;

/// Serve parameters at the ambient `MGC_SCALE` (`bench`/`paper` select the
/// benchmark preset, everything else the fast test preset), with the
/// `MGC_SERVE_SECONDS` / `MGC_SERVE_RPS` overrides applied on top.
pub fn serve_params_from_env() -> ServeParams {
    let base = match std::env::var("MGC_SCALE").as_deref() {
        Ok("bench") | Ok("paper") => ServeParams::bench(),
        _ => ServeParams::small(),
    };
    base.apply_env(&EnvOverrides::capture())
}

/// Runs one serve point: the Request-Server on `backend` with one vproc per
/// worker (clamped to the dual-node test topology's four cores), optionally
/// under a bounded-pause budget.
fn serve_point(params: ServeParams, backend: Backend, pause_budget_us: Option<u64>) -> RunRecord {
    let mut experiment =
        Experiment::new(ServerProgram::new(params).expect("the serve presets are valid"))
            .backend(backend)
            .topology(Topology::dual_node_test())
            .vprocs(params.workers.clamp(1, 4))
            .policy(AllocPolicy::Local)
            // On the simulated backend the quantum must leave room for a
            // worker to start behind the generator on the same vproc (see
            // `SERVE_QUANTUM_NS`); the threaded backend ignores it.
            .quantum_ns(SERVE_QUANTUM_NS);
    if let Some(budget) = pause_budget_us {
        experiment = experiment.gc_pause_budget(budget);
    }
    experiment
        .run()
        .expect("the serve configuration is valid on the dual-node test topology")
}

/// Runs the serve sweep: simulated, threaded, and threaded under the
/// [`SERVE_PAUSE_BUDGET_US`] bounded-pause budget.
pub fn run_serve(params: ServeParams) -> Vec<RunRecord> {
    vec![
        serve_point(params, Backend::Simulated, None),
        serve_point(params, Backend::Threaded, None),
        serve_point(params, Backend::Threaded, Some(SERVE_PAUSE_BUDGET_US)),
    ]
}

/// Formats the serve records as an aligned table: throughput next to the
/// latency percentiles next to the GC pause tail, one row per point.
pub fn format_serve(points: &[RunRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Service scenario — open-loop load, end-to-end latency vs GC pauses"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>6} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>12} {:>8}",
        "backend",
        "budget-us",
        "vprocs",
        "requests",
        "rps",
        "p50-ms",
        "p99-ms",
        "p99.9-ms",
        "max-ms",
        "gc-p99-ms",
        "checksum"
    );
    for p in points {
        let latency = p.report.latency_stats();
        let ms = |ns: f64| format!("{:.3}", ns / 1e6);
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>6} {:>9} {:>10.1} {:>9} {:>9} {:>9} {:>9} {:>12} {:>8}",
            p.backend.to_string(),
            p.config
                .gc
                .pause_budget_us
                .map_or("none".to_string(), |us| us.to_string()),
            p.config.num_vprocs,
            p.report.requests_served(),
            p.report.throughput_rps(),
            ms(latency.percentile(50.0)),
            ms(latency.percentile(99.0)),
            ms(latency.percentile(99.9)),
            ms(latency.max_ns),
            ms(p.report.pause_stats().percentile(99.0)),
            match p.checksum_ok {
                Some(true) => "ok",
                Some(false) => "MISMATCH",
                None => "n/a",
            },
        );
    }
    out
}

/// Runs the serve sweep end-to-end, printing the latency table, appending
/// the records to the results store, and writing
/// `results/SERVE_threaded.json` (the flat export of that batch — the CI
/// `serve-smoke` artifact).
pub fn run_serve_and_report() {
    let params = serve_params_from_env();
    let points = run_serve(params);
    println!("{}", format_serve(&points));
    persist_points("serve", "SERVE_threaded.json", &points);
}

pub mod corpus;
pub mod perfdiff;
pub mod trend;

/// Reads the workload scale from the `MGC_SCALE` environment variable
/// (`paper`, `small`, `bench`, or `tiny`; default `tiny` so the harness
/// finishes quickly on a laptop). `bench` is the CI perf-gate scale: real
/// compute dominates synchronisation there, so speedup curves mean
/// something.
pub fn scale_from_env() -> Scale {
    match std::env::var("MGC_SCALE").as_deref() {
        Ok("paper") => Scale::paper(),
        Ok("small") => Scale::small(),
        Ok("bench") => Scale::bench(),
        Ok("tiny") | Err(_) => Scale::tiny(),
        Ok(other) => {
            eprintln!("unknown MGC_SCALE `{other}`, using tiny");
            Scale::tiny()
        }
    }
}

/// Runs a figure end-to-end, printing the table and writing CSV under
/// `results/`.
pub fn run_and_report(spec: &FigureSpec) {
    let scale = scale_from_env();
    let data = run_figure(spec, scale);
    println!("{}", format_figure(spec, &data));
    let dir = std::path::Path::new("results");
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{}.csv", spec.name));
    match std::fs::write(&path, figure_csv(&data)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_match_paper_axes() {
        assert_eq!(figure4().threads, vec![1, 4, 8, 12, 16, 24, 32]);
        assert_eq!(figure5().threads, vec![1, 4, 8, 12, 24, 36, 48]);
        assert_eq!(figure6().policy, AllocPolicy::Interleaved);
        assert_eq!(figure7().policy, AllocPolicy::SocketZero);
        assert_eq!(figure4().topology.num_cores(), 32);
        assert_eq!(figure5().topology.num_cores(), 48);
    }

    #[test]
    fn table1_contains_paper_numbers() {
        let t = table1();
        assert!(t.contains("21.3"));
        assert!(t.contains("19.2"));
        assert!(t.contains("6.4"));
        assert!(t.contains("17.1"));
        assert!(t.contains("25.6"));
        assert!(t.contains("n/a"));
    }

    #[test]
    fn baseline_records_are_well_formed_and_cover_both_backends() {
        let points: Vec<RunRecord> = Backend::ALL
            .iter()
            .map(|&backend| {
                baseline_point(
                    &|| Workload::Dmm.program(Scale::tiny()),
                    backend,
                    1,
                    PlacementPolicy::NodeLocal,
                )
            })
            .collect();
        let json = run_records_json(&points);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"backend\": \"simulated\""));
        assert!(json.contains("\"backend\": \"threaded\""));
        assert!(json.contains("\"wall_clock_ns\": null"));
        assert!(json.contains("\"simulated_ns\": null"));
        assert!(json.contains("\"program\": \"Dense-Matrix-Multiply\""));
        assert!(json.contains("\"policy\": \"local\""));
        assert!(json.contains("\"topology\": \"test-dual-node\""));
        assert!(json.contains("\"checksum_ok\": true"));
        assert!(json.contains("\"promoted_bytes\": "));
        assert!(json.contains("\"promotions_at_steal\": "));
        assert!(json.contains("\"promotions_at_publish\": "));
        // Exactly one comma-separated object per point.
        assert_eq!(json.matches("\"vprocs\"").count(), 2);
        let table = format_baseline(&points);
        assert!(table.contains("wall-clock"));
        assert!(table.contains("promoted-B"));
        assert!(table.contains("max-pause"));
        assert!(table.contains("Dense-Matrix-Multiply"));
        let summary = promoted_bytes_summary(&points);
        assert!(summary.contains("promoted-bytes Dense-Matrix-Multiply"));
        assert!(summary.contains("steal-driven"));
    }

    #[test]
    fn churn_baseline_points_carry_their_parameters() {
        let params = ChurnParams {
            objects_per_worker: 400,
            object_words: 4,
            survive_every: 16,
            workers: 2,
        };
        let point = baseline_point(
            &|| Box::new(Churn::new(params)),
            Backend::Simulated,
            1,
            PlacementPolicy::NodeLocal,
        );
        assert_eq!(point.program, "Synthetic-Churn");
        assert_eq!(point.checksum_ok, Some(true));
        let json = point.to_json();
        assert!(json.contains("\"objects_per_worker\": 400"));
        assert!(json.contains("\"workers\": 2"));
        let summary = promoted_bytes_summary(std::slice::from_ref(&point));
        assert!(summary.contains("promoted-bytes Synthetic-Churn"));
    }

    #[test]
    fn figure8_adaptive_point_records_switches_and_lands_in_the_csv() {
        let point = figure8_point(Workload::Dmm, Scale::tiny(), PlacementPolicy::Adaptive);
        assert!(
            point.report.placement_switches() >= 1,
            "the cold-start adoption alone guarantees one recorded switch"
        );
        let csv = figure8_csv(std::slice::from_ref(&point));
        let mut lines = csv.lines();
        assert!(lines
            .next()
            .expect("header row")
            .ends_with("placement_switches"));
        let row = lines.next().expect("data row");
        assert!(row.starts_with("Dense-Matrix-Multiply,adaptive,"));
        assert_eq!(row.split(',').count(), 11);
        let table = format_figure8(std::slice::from_ref(&point));
        assert!(table.contains("switches"));
        assert!(table.contains("adaptive"));
    }

    #[test]
    fn host_smoke_runs_on_the_probed_topology() {
        let record = run_host_smoke();
        assert_eq!(record.checksum_ok, Some(true));
        assert!(record.config.num_vprocs >= 1);
        let json = record.to_json();
        assert!(json.contains("\"placement\": \"adaptive\""));
        assert!(json.contains("\"placement_decisions\": "));
        assert!(json.contains("\"node_bindings\": "));
    }

    #[test]
    fn serve_points_report_latency_and_survive_the_json_schema() {
        // One simulated point at the fast preset: deterministic, and enough
        // to pin the whole serve reporting pipeline.
        let point = serve_point(ServeParams::small(), Backend::Simulated, None);
        assert_eq!(point.program, "Request-Server");
        assert_eq!(point.checksum_ok, Some(true));
        assert_eq!(
            point.report.requests_served(),
            ServeParams::small().total_requests()
        );
        assert!(point.report.throughput_rps() > 0.0);
        let json = point.to_json();
        for key in [
            "\"requests_served\": 400",
            "\"throughput_rps\": ",
            "\"latency_p50_ns\": ",
            "\"latency_p99_ns\": ",
            "\"latency_p999_ns\": ",
            "\"latency_max_ns\": ",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let table = format_serve(std::slice::from_ref(&point));
        assert!(table.contains("p99.9-ms"));
        assert!(table.contains("simulated"));
        assert!(table.trim_end().ends_with("ok"));
    }

    #[test]
    fn serve_budgeted_point_carries_the_budget() {
        let point = serve_point(
            ServeParams::small(),
            Backend::Simulated,
            Some(SERVE_PAUSE_BUDGET_US),
        );
        assert_eq!(point.config.gc.pause_budget_us, Some(SERVE_PAUSE_BUDGET_US));
        assert_eq!(point.checksum_ok, Some(true));
        let table = format_serve(std::slice::from_ref(&point));
        assert!(table.contains("500"));
    }

    #[test]
    fn figure_formatting_includes_every_benchmark() {
        let spec = FigureSpec {
            name: "test",
            title: "test figure",
            topology: Topology::dual_node_test(),
            policy: AllocPolicy::Local,
            threads: vec![1, 2],
        };
        let data = run_figure(&spec, Scale::tiny());
        let text = format_figure(&spec, &data);
        for workload in Workload::FIGURES {
            assert!(text.contains(workload.label()));
        }
        let csv = figure_csv(&data);
        assert_eq!(csv.lines().count(), 1 + 5 * 2);
    }
}
