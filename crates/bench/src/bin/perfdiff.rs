//! The CI perf gate: compares a fresh sweep against the checked-in
//! baseline and exits non-zero on a regression.
//!
//! ```text
//! perfdiff --baseline results/baseline/BENCH_threaded.json \
//!          --current  results/store \
//!          [--speedup-thresholds results/baseline/speedup-thresholds.json] \
//!          [--pause-thresholds results/baseline/pause-thresholds.json] \
//!          [--latency-thresholds results/baseline/latency-thresholds.json] \
//!          [--max-wall-ratio 2.5] [--max-promoted-ratio 1.5] \
//!          [--min-wall-ms 5] [--min-promoted-kb 64]
//! ```
//!
//! `--baseline` and `--current` each accept either a **results store
//! directory** (read as the latest record per run-point key through the
//! `mgc-store` query API) or a **legacy flat `RunRecord` JSON file**
//! (accepted for one PR cycle via the store's ingest shim).
//!
//! With `--speedup-thresholds`, the per-program parallel-speedup gate also
//! runs: for every pinned program, the current sweep's 1-vproc wall-clock
//! divided by its highest-vproc wall-clock must not fall below the pin.
//! (Speedup uses the current sweep only; it is not a baseline comparison,
//! so a baseline recorded on a small machine cannot mask a scaling loss.)
//!
//! With `--pause-thresholds`, the max-pause gate also runs: every threaded
//! point of a pinned program must keep its largest recorded mutator pause
//! under the absolute per-program ceiling (milliseconds). Points without
//! pause telemetry fail a pin loudly rather than passing silently.
//!
//! With `--latency-thresholds`, the request-latency gate also runs: every
//! threaded point of a pinned serving program must keep its p99 end-to-end
//! request latency under the absolute per-program ceiling (milliseconds).
//! Same discipline as the pause gate — current sweep only, and missing
//! telemetry on a pinned program fails loudly.
//!
//! The Markdown comparison table goes to stdout (the CI job tees it into
//! `$GITHUB_STEP_SUMMARY`); the exit code is the gate.

use mgc_bench::perfdiff::{
    compare, latency_markdown, latency_rows, load_points, markdown,
    missing_latency_pinned_programs, missing_pause_pinned_programs, missing_pinned_programs,
    parse_latency_thresholds, parse_pause_thresholds, parse_speedup_thresholds, pause_markdown,
    pause_rows, speedup_markdown, speedup_rows, Thresholds,
};

fn parse_f64(value: Option<&String>, flag: &str) -> f64 {
    value
        .unwrap_or_else(|| panic!("{flag} requires a positive number"))
        .parse::<f64>()
        .ok()
        .filter(|v| *v > 0.0)
        .unwrap_or_else(|| panic!("{flag} requires a positive number"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = None;
    let mut current_path = None;
    let mut speedup_path = None;
    let mut pause_path = None;
    let mut latency_path = None;
    let mut thresholds = Thresholds::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = iter.next().cloned(),
            "--current" => current_path = iter.next().cloned(),
            "--speedup-thresholds" => speedup_path = iter.next().cloned(),
            "--pause-thresholds" => pause_path = iter.next().cloned(),
            "--latency-thresholds" => latency_path = iter.next().cloned(),
            "--max-wall-ratio" => {
                thresholds.max_wall_ratio = parse_f64(iter.next(), "--max-wall-ratio");
            }
            "--max-promoted-ratio" => {
                thresholds.max_promoted_ratio = parse_f64(iter.next(), "--max-promoted-ratio");
            }
            "--min-wall-ms" => {
                thresholds.min_wall_ns = parse_f64(iter.next(), "--min-wall-ms") * 1e6;
            }
            "--min-promoted-kb" => {
                thresholds.min_promoted_bytes =
                    (parse_f64(iter.next(), "--min-promoted-kb") * 1024.0) as u64;
            }
            other => panic!(
                "unknown argument `{other}` (expected --baseline/--current <path> and optional \
                 --speedup-thresholds <path> --pause-thresholds <path> \
                 --latency-thresholds <path> \
                 --max-wall-ratio/--max-promoted-ratio/--min-wall-ms/--min-promoted-kb <n>)"
            ),
        }
    }
    let baseline_path = baseline_path.expect("--baseline <path> is required");
    let current_path = current_path.expect("--current <path> is required");

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|err| panic!("could not read {path}: {err}"))
    };
    let baseline = load_points(std::path::Path::new(&baseline_path))
        .unwrap_or_else(|err| panic!("{baseline_path}: {err}"));
    let current = load_points(std::path::Path::new(&current_path))
        .unwrap_or_else(|err| panic!("{current_path}: {err}"));

    let cmp = compare(&baseline, &current, thresholds);
    println!("{}", markdown(&cmp, thresholds));

    let mut failed = false;
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        eprintln!(
            "perfdiff: {} points compared against {baseline_path}, no regression",
            cmp.rows.len()
        );
    } else {
        eprintln!(
            "perfdiff: {} of {} points regressed beyond the thresholds",
            regressions.len(),
            cmp.rows.len()
        );
        failed = true;
    }

    if let Some(speedup_path) = speedup_path {
        let pins = parse_speedup_thresholds(&read(&speedup_path))
            .unwrap_or_else(|err| panic!("{speedup_path}: {err}"));
        let rows = speedup_rows(&current, &pins);
        let missing = missing_pinned_programs(&rows, &pins);
        println!("{}", speedup_markdown(&rows, &missing));
        let slow = rows.iter().filter(|r| r.failed()).count();
        if slow == 0 && missing.is_empty() {
            eprintln!(
                "perfdiff: speedup gate passed for {} pinned programs",
                pins.len()
            );
        } else {
            eprintln!(
                "perfdiff: speedup gate failed ({slow} below their pin, {} missing)",
                missing.len()
            );
            failed = true;
        }
    }

    if let Some(pause_path) = pause_path {
        let pins = parse_pause_thresholds(&read(&pause_path))
            .unwrap_or_else(|err| panic!("{pause_path}: {err}"));
        let rows = pause_rows(&current, &pins);
        let missing = missing_pause_pinned_programs(&rows, &pins);
        println!("{}", pause_markdown(&rows, &missing));
        let over = rows.iter().filter(|r| r.failed()).count();
        if over == 0 && missing.is_empty() {
            eprintln!(
                "perfdiff: max-pause gate passed for {} pinned programs",
                pins.len()
            );
        } else {
            eprintln!(
                "perfdiff: max-pause gate failed ({over} points over their pin, {} missing)",
                missing.len()
            );
            failed = true;
        }
    }

    if let Some(latency_path) = latency_path {
        let pins = parse_latency_thresholds(&read(&latency_path))
            .unwrap_or_else(|err| panic!("{latency_path}: {err}"));
        let rows = latency_rows(&current, &pins);
        let missing = missing_latency_pinned_programs(&rows, &pins);
        println!("{}", latency_markdown(&rows, &missing));
        let over = rows.iter().filter(|r| r.failed()).count();
        if over == 0 && missing.is_empty() {
            eprintln!(
                "perfdiff: latency gate passed for {} pinned programs",
                pins.len()
            );
        } else {
            eprintln!(
                "perfdiff: latency gate failed ({over} points over their pin, {} missing)",
                missing.len()
            );
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}
