//! The `trend` report: per-program performance trajectories read from the
//! results store and printed as Markdown (the CI `trend-report` job tees
//! this into `$GITHUB_STEP_SUMMARY`).
//!
//! ```text
//! trend [--store results/store] [--program Quicksort]
//! ```
//!
//! For every program in the store (or the one named by `--program`), the
//! report prints one row per batch: the batch's provenance (sequence, git
//! revision, scale, sweep kind), its representative point's wall clock,
//! p99 GC pause, and p99 request latency, and the wall-clock ratio against
//! the previous batch. Reading happens entirely through the `mgc-store`
//! query API; this binary never parses result JSON itself.

use mgc_bench::trend::trend_markdown;
use mgc_store::Store;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_dir = mgc_bench::STORE_DIR.to_string();
    let mut program: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = iter
                    .next()
                    .expect("--store requires a directory path")
                    .clone();
            }
            "--program" => {
                program = Some(iter.next().expect("--program requires a name").clone());
            }
            other => {
                panic!("unknown argument `{other}` (expected --store <dir> or --program <name>)")
            }
        }
    }
    let store = Store::open(&store_dir).unwrap_or_else(|err| panic!("could not open store: {err}"));
    print!("{}", trend_markdown(&store, program.as_deref()));
}
