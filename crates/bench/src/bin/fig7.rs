//! Regenerates Figure 7 of the paper. See `mgc-bench` crate docs.
fn main() {
    mgc_bench::run_and_report(&mgc_bench::figure7());
}
