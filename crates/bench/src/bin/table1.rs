//! Regenerates Table 1 of the paper (bandwidth between a node and the rest
//! of the system) from the topology models.
fn main() {
    println!("{}", mgc_bench::table1());
}
