//! Regenerates every figure and Table 1 in one run, writing CSV files under
//! `results/`. Control the workload scale with `MGC_SCALE=tiny|small|paper`.
fn main() {
    println!("{}", mgc_bench::table1());
    for spec in [
        mgc_bench::figure4(),
        mgc_bench::figure5(),
        mgc_bench::figure6(),
        mgc_bench::figure7(),
    ] {
        mgc_bench::run_and_report(&spec);
    }
}
