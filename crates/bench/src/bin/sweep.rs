//! Regenerates every figure and Table 1 in one run, writing CSV files under
//! `results/`. Control the workload scale with `MGC_SCALE=tiny|small|paper`.
//!
//! `--backend threaded` switches to the wall-clock baseline mode instead:
//! every workload runs at 1/2/4 vprocs under **both** execution backends,
//! the wall-clock and simulated times are printed side by side, and
//! `results/BENCH_threaded.json` is written (an array of `RunRecord` JSON
//! objects — the CI perf-trajectory artifact).
//!
//! Baseline-mode options opening the scenario grid beyond the paper's five
//! benchmarks:
//!
//! * `--churn` — include the synthetic allocation-churn benchmark, with
//!   its parameters derived from `MGC_SCALE`;
//! * `--churn-workers N` / `--churn-objects N` / `--churn-survive N` /
//!   `--churn-words N` — override the corresponding `ChurnParams` field
//!   (each implies `--churn`), so allocation volume, object size, survival
//!   rate, and parallelism are all reachable from the command line;
//! * `--placement <node-local|interleave|first-touch|adaptive>` — the
//!   promotion-chunk NUMA placement the baseline runs under (recorded per
//!   point in the JSON);
//! * `--figure8` — instead of the baseline, run the placement comparison:
//!   all six programs on the threaded backend under `node-local`,
//!   `interleave`, **and** `adaptive`, writing `results/figure8.csv` with
//!   the local/remote promoted-byte split, the same-/cross-node steal
//!   split, and the adaptive controller's switch count;
//! * `--host-smoke` — instead of the baseline, run one small workload on
//!   the **probed host topology** (`Topology::host()`) with adaptive
//!   placement, printing the per-vproc binding outcomes and writing
//!   `results/host_smoke.json`;
//! * `--serve` — instead of the baseline, run the **service scenario**: the
//!   Request-Server program under open-loop load on both backends (plus a
//!   bounded-pause threaded point), printing the throughput/latency table
//!   and writing `results/SERVE_threaded.json`. `MGC_SCALE=bench` selects
//!   the benchmark preset (4 workers, 2,000 req/s for 5 s);
//!   `MGC_SERVE_SECONDS` and `MGC_SERVE_RPS` override the stream shape;
//! * `--corpus <manifest.json>` — instead of the baseline, sweep the run
//!   points a corpus manifest describes (see `corpus/ci-smoke.json`) and
//!   append them to the results store as one batch of kind
//!   `corpus:<name>`. `--store <dir>` overrides the store directory
//!   (default `results/store`).

use mgc_numa::PlacementPolicy;
use mgc_workloads::churn::ChurnParams;

/// Parses the value of a `--churn-*` flag as a positive integer.
fn positive(value: Option<&String>, flag: &str) -> usize {
    let parsed = value
        .unwrap_or_else(|| panic!("{flag} requires a positive integer value"))
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("{flag} requires a positive integer value"));
    assert!(parsed > 0, "{flag} requires a positive integer value");
    parsed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backend = mgc_runtime::Backend::Simulated;
    let mut placement = PlacementPolicy::default();
    let mut figure8 = false;
    let mut host_smoke = false;
    let mut serve = false;
    let mut corpus: Option<String> = None;
    let mut store_dir = mgc_bench::STORE_DIR.to_string();
    let mut churn_requested = false;
    let mut churn_params = ChurnParams::at_scale(mgc_bench::scale_from_env());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let value = iter
                    .next()
                    .expect("--backend requires a value (simulated|threaded)");
                backend = value.parse().unwrap_or_else(|err: String| panic!("{err}"));
            }
            "--baseline" => backend = mgc_runtime::Backend::Threaded,
            "--placement" => {
                let value = iter.next().expect(
                    "--placement requires a value (node-local|interleave|first-touch|adaptive)",
                );
                placement = value.parse().unwrap_or_else(|err: String| panic!("{err}"));
                backend = mgc_runtime::Backend::Threaded;
            }
            "--figure8" => figure8 = true,
            "--host-smoke" => host_smoke = true,
            "--serve" => serve = true,
            "--corpus" => {
                corpus = Some(
                    iter.next()
                        .expect("--corpus requires a manifest path")
                        .clone(),
                );
            }
            "--store" => {
                store_dir = iter
                    .next()
                    .expect("--store requires a directory path")
                    .clone();
            }
            "--churn" => churn_requested = true,
            "--churn-workers" => {
                churn_params.workers = positive(iter.next(), "--churn-workers");
                churn_requested = true;
            }
            "--churn-objects" => {
                churn_params.objects_per_worker = positive(iter.next(), "--churn-objects");
                churn_requested = true;
            }
            "--churn-survive" => {
                churn_params.survive_every = positive(iter.next(), "--churn-survive");
                churn_requested = true;
            }
            "--churn-words" => {
                churn_params.object_words = positive(iter.next(), "--churn-words");
                churn_requested = true;
            }
            other => panic!(
                "unknown argument `{other}` (expected --backend <simulated|threaded>, \
                 --placement <node-local|interleave|first-touch|adaptive>, --figure8, \
                 --host-smoke, --serve, --corpus <manifest>, --store <dir>, --churn, or \
                 --churn-{{workers,objects,survive,words}} <n>)"
            ),
        }
    }
    let churn = churn_requested.then_some(churn_params);

    if let Some(manifest) = corpus {
        mgc_bench::corpus::run_corpus_and_report(
            std::path::Path::new(&manifest),
            std::path::Path::new(&store_dir),
        );
        return;
    }
    if figure8 {
        mgc_bench::run_figure8_and_report();
        return;
    }
    if host_smoke {
        mgc_bench::run_host_smoke_and_report();
        return;
    }
    if serve {
        mgc_bench::run_serve_and_report();
        return;
    }

    match backend {
        mgc_runtime::Backend::Threaded => mgc_bench::run_baseline_and_report(churn, placement),
        mgc_runtime::Backend::Simulated => {
            assert!(
                churn.is_none(),
                "--churn applies to the baseline mode; combine it with --backend threaded"
            );
            println!("{}", mgc_bench::table1());
            for spec in [
                mgc_bench::figure4(),
                mgc_bench::figure5(),
                mgc_bench::figure6(),
                mgc_bench::figure7(),
            ] {
                mgc_bench::run_and_report(&spec);
            }
        }
    }
}
