//! Regenerates every figure and Table 1 in one run, writing CSV files under
//! `results/`. Control the workload scale with `MGC_SCALE=tiny|small|paper`.
//!
//! `--backend threaded` switches to the wall-clock baseline mode instead:
//! every workload runs at 1/2/4 vprocs under **both** execution backends,
//! the wall-clock and simulated times are printed side by side, and
//! `results/BENCH_threaded.json` is written (the CI perf-trajectory
//! artifact).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backend = mgc_runtime::Backend::Simulated;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let value = iter
                    .next()
                    .expect("--backend requires a value (simulated|threaded)");
                backend = value.parse().unwrap_or_else(|err: String| panic!("{err}"));
            }
            "--baseline" => backend = mgc_runtime::Backend::Threaded,
            other => panic!("unknown argument `{other}` (expected --backend <simulated|threaded>)"),
        }
    }

    match backend {
        mgc_runtime::Backend::Threaded => mgc_bench::run_baseline_and_report(),
        mgc_runtime::Backend::Simulated => {
            println!("{}", mgc_bench::table1());
            for spec in [
                mgc_bench::figure4(),
                mgc_bench::figure5(),
                mgc_bench::figure6(),
                mgc_bench::figure7(),
            ] {
                mgc_bench::run_and_report(&spec);
            }
        }
    }
}
