//! Dev probe: wall-clock per workload at a given scale (threaded backend).

use mgc_numa::{AllocPolicy, PlacementPolicy, Topology};
use mgc_runtime::{Backend, Experiment};
use mgc_workloads::{Scale, Workload};

fn main() {
    let scale = Scale(
        std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.25),
    );
    let backend = match std::env::args().nth(2).as_deref() {
        Some("sim") => Backend::Simulated,
        _ => Backend::Threaded,
    };
    for workload in Workload::ALL {
        for vprocs in [1usize, 4] {
            let start = std::time::Instant::now();
            let record = Experiment::new(workload.program(scale))
                .backend(backend)
                .topology(Topology::dual_node_test())
                .vprocs(vprocs)
                .policy(AllocPolicy::Local)
                .placement(PlacementPolicy::NodeLocal)
                .verify_checksum(false)
                .run()
                .expect("valid");
            println!(
                "{:<24} {}v wall {:>10.2} ms (outer {:>10.2} ms) tasks {:>5} globals {:>4} \
                 minors {:>6} promoted-kb {:>8}",
                workload.label(),
                vprocs,
                record.wall_clock_ns().unwrap_or(0.0) / 1e6,
                start.elapsed().as_secs_f64() * 1e3,
                record.report.total_tasks(),
                record.report.gc.global_collections,
                record.report.gc.minor_collections,
                (record.report.gc.promotion_bytes + record.report.gc.global_copied_bytes) / 1024,
            );
        }
    }
}
