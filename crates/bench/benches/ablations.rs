//! Ablation benchmarks for two of the collector's design choices:
//! Appel young-data exclusion during major collections, and node-affine
//! chunk reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use mgc_core::GcConfig;
use mgc_numa::Topology;
use mgc_runtime::{Machine, MachineConfig};
use mgc_workloads::{churn, Scale, Workload};
use std::time::Duration;

fn run_with_gc_config(gc: GcConfig) -> f64 {
    let mut config = MachineConfig::new(Topology::amd_magny_cours_48(), 8).with_gc(gc);
    config.gc.verify_after_gc = false;
    let mut machine = Machine::new(config);
    churn::spawn(
        &mut machine,
        churn::ChurnParams {
            objects_per_worker: 4_000,
            object_words: 16,
            survive_every: 16,
            workers: 16,
        },
    );
    machine.run().elapsed_ns
}

fn bench_young_exclusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/major_young_data");
    group.bench_function("exclude_young_(paper)", |b| {
        b.iter(|| run_with_gc_config(GcConfig::default()))
    });
    group.bench_function("promote_young_(ablation)", |b| {
        b.iter(|| {
            run_with_gc_config(GcConfig {
                promote_young_in_major: true,
                ..GcConfig::default()
            })
        })
    });
    group.finish();
}

fn bench_chunk_affinity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/chunk_node_affinity");
    group.bench_function("affine_(paper)", |b| {
        b.iter(|| run_with_gc_config(GcConfig::default()))
    });
    group.bench_function("non_affine_(ablation)", |b| {
        b.iter(|| {
            run_with_gc_config(GcConfig {
                chunk_node_affinity: false,
                ..GcConfig::default()
            })
        })
    });
    group.finish();
}

fn bench_workload_virtual_time(c: &mut Criterion) {
    // Also report how long the simulator itself takes to run one small
    // Barnes-Hut iteration set, as a guard against regressions in the
    // harness.
    let mut group = c.benchmark_group("ablations/simulator_cost");
    group.bench_function("barnes_hut_tiny_8_threads", |b| {
        b.iter(|| {
            Workload::BarnesHut
                .experiment(Scale::tiny())
                .topology(Topology::amd_magny_cours_48())
                .vprocs(8)
                .policy(mgc_numa::AllocPolicy::Local)
                .verify_checksum(false)
                .run()
                .expect("eight vprocs fit the AMD topology")
                .report
                .elapsed_ns
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = ablations;
    config = config();
    targets = bench_young_exclusion, bench_chunk_affinity, bench_workload_virtual_time
}
criterion_main!(ablations);
