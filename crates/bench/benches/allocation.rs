//! Microbenchmarks of the allocation fast path and of rope construction
//! through the full runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use mgc_heap::{Heap, HeapConfig};
use mgc_numa::NodeId;
use mgc_runtime::{Machine, MachineConfig, TaskResult, TaskSpec};
use std::time::Duration;

fn bench_nursery_alloc(c: &mut Criterion) {
    c.bench_function("alloc/nursery_bump_allocation", |b| {
        b.iter_batched(
            || Heap::new(HeapConfig::default(), &[NodeId::new(0)], 1),
            |mut heap| {
                let mut last = None;
                for i in 0..1_000u64 {
                    if let Ok(obj) = heap.alloc_raw(0, &[i, i + 1]) {
                        last = Some(obj);
                    } else {
                        break;
                    }
                }
                (heap, last)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_runtime_churn(c: &mut Criterion) {
    c.bench_function("alloc/runtime_churn_simulation", |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::small_for_tests(2));
            machine.spawn_root(TaskSpec::new("churn", |ctx| {
                let mark = ctx.root_mark();
                for i in 0..2_000u64 {
                    ctx.alloc_raw(&[i; 8]);
                    if i % 8 == 0 {
                        ctx.truncate_roots(mark);
                    }
                }
                TaskResult::Unit
            }));
            machine.run().elapsed_ns
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = allocation;
    config = config();
    targets = bench_nursery_alloc, bench_runtime_churn
}
criterion_main!(allocation);
