//! Smoke benchmarks that exercise one point of each figure's parameter
//! space (full figures are produced by the `fig4`–`fig7` and `sweep`
//! binaries; see the crate documentation).

use criterion::{criterion_group, criterion_main, Criterion};
use mgc_numa::{AllocPolicy, Topology};
use mgc_workloads::{Scale, Workload};
use std::time::Duration;

fn bench_figure_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    for (name, topology, policy) in [
        (
            "fig4_intel_local",
            Topology::intel_xeon_32(),
            AllocPolicy::Local,
        ),
        (
            "fig5_amd_local",
            Topology::amd_magny_cours_48(),
            AllocPolicy::Local,
        ),
        (
            "fig6_amd_interleaved",
            Topology::amd_magny_cours_48(),
            AllocPolicy::Interleaved,
        ),
        (
            "fig7_amd_socket0",
            Topology::amd_magny_cours_48(),
            AllocPolicy::SocketZero,
        ),
    ] {
        group.bench_function(format!("{name}/dmm_8_threads"), |b| {
            b.iter(|| {
                Workload::Dmm
                    .experiment(Scale::tiny())
                    .topology(topology.clone())
                    .vprocs(8)
                    .policy(policy)
                    .verify_checksum(false)
                    .run()
                    .expect("eight vprocs fit the figure topologies")
                    .report
                    .elapsed_ns
            })
        });
    }
    group.finish();
}

fn bench_smvm_policy_contrast(c: &mut Criterion) {
    // The §4.3 observation in miniature: SMVM under socket-zero vs local.
    let mut group = c.benchmark_group("figures/smvm_policy");
    let topology = Topology::amd_magny_cours_48();
    for policy in [AllocPolicy::Local, AllocPolicy::SocketZero] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                Workload::Smvm
                    .experiment(Scale::tiny())
                    .topology(topology.clone())
                    .vprocs(12)
                    .policy(policy)
                    .verify_checksum(false)
                    .run()
                    .expect("twelve vprocs fit the AMD topology")
                    .report
                    .elapsed_ns
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = figures;
    config = config();
    targets = bench_figure_points, bench_smvm_policy_contrast
}
criterion_main!(figures);
