//! Microbenchmarks of the collector's individual operations (minor, major,
//! promotion, global), measured directly against `mgc-core`.

use criterion::{criterion_group, criterion_main, Criterion};
use mgc_core::{Collector, GcConfig};
use mgc_heap::{Addr, Heap, HeapConfig};
use mgc_numa::NodeId;
use std::time::Duration;

fn fresh() -> (Heap, Collector) {
    let nodes = [NodeId::new(0), NodeId::new(1)];
    let heap = Heap::new(HeapConfig::default(), &nodes, 2);
    let config = GcConfig {
        verify_after_gc: false,
        ..GcConfig::default()
    };
    let collector = Collector::new(config, 2, 2);
    (heap, collector)
}

fn fill_nursery(heap: &mut Heap, vproc: usize) -> Vec<Addr> {
    let mut roots = Vec::new();
    while let Ok(obj) = heap.alloc_raw(vproc, &[7; 16]) {
        roots.push(obj);
        if roots.len() % 4 != 0 {
            // Three quarters of the data is garbage.
            roots.pop();
        }
    }
    roots
}

fn bench_minor(c: &mut Criterion) {
    c.bench_function("gc/minor_collection", |b| {
        b.iter_batched(
            || {
                let (mut heap, collector) = fresh();
                let roots = fill_nursery(&mut heap, 0);
                (heap, collector, roots)
            },
            |(mut heap, mut collector, mut roots)| {
                collector.minor(&mut heap, 0, &mut roots);
                (heap, collector)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_major(c: &mut Criterion) {
    c.bench_function("gc/major_collection", |b| {
        b.iter_batched(
            || {
                let (mut heap, mut collector) = fresh();
                let mut roots = fill_nursery(&mut heap, 0);
                collector.minor(&mut heap, 0, &mut roots);
                collector.minor(&mut heap, 0, &mut roots);
                (heap, collector, roots)
            },
            |(mut heap, mut collector, mut roots)| {
                collector.major(&mut heap, 0, &mut roots);
                (heap, collector)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_promotion(c: &mut Criterion) {
    c.bench_function("gc/promotion_of_small_graph", |b| {
        b.iter_batched(
            || {
                let (mut heap, collector) = fresh();
                let leaf = heap.alloc_raw(0, &[1; 8]).unwrap();
                let root = heap.alloc_vector(0, &[leaf.raw(), leaf.raw()]).unwrap();
                (heap, collector, root)
            },
            |(mut heap, mut collector, root)| {
                let (promoted, _) = collector.promote(&mut heap, 0, root);
                (heap, collector, promoted)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_global(c: &mut Criterion) {
    c.bench_function("gc/global_collection", |b| {
        b.iter_batched(
            || {
                let (mut heap, mut collector) = fresh();
                let mut roots_per_vproc = vec![Vec::new(), Vec::new()];
                for (vproc, roots) in roots_per_vproc.iter_mut().enumerate() {
                    for i in 0..200u64 {
                        let obj = heap.alloc_raw(vproc, &[i; 8]).unwrap();
                        let (promoted, _) = collector.promote(&mut heap, vproc, obj);
                        if i % 4 == 0 {
                            roots.push(promoted);
                        }
                    }
                }
                (heap, collector, roots_per_vproc)
            },
            |(mut heap, mut collector, mut roots)| {
                collector.global(&mut heap, &mut roots);
                (heap, collector)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = gc_ops;
    config = config();
    targets = bench_minor, bench_major, bench_promotion, bench_global
}
criterion_main!(gc_ops);
