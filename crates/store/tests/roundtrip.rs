//! End-to-end round-trip: a real `RunRecord` appended to a store, read
//! back through a query, and compared byte-for-byte against what
//! `RunRecord::to_json` emitted.

use std::fs;
use std::path::PathBuf;

use mgc_heap::i64_to_word;
use mgc_runtime::{
    EnvOverrides, Executor, Experiment, Program, RunRecord, TaskResult, TaskSpec,
    RUN_RECORD_SCHEMA_VERSION,
};
use mgc_store::{Query, RunMeta, Store};

/// A minimal program: one root task returning a constant.
struct Constant(i64);

impl Program for Constant {
    fn name(&self) -> &str {
        "constant"
    }

    fn spawn(&self, executor: &mut dyn Executor) {
        let value = self.0;
        executor.spawn_root(TaskSpec::new("constant", move |ctx| {
            ctx.work(10);
            TaskResult::Value(i64_to_word(value))
        }));
    }

    fn params_json(&self) -> String {
        format!("{{\"value\": {}}}", self.0)
    }
}

fn run_record(value: i64, vprocs: usize) -> RunRecord {
    Experiment::new(Constant(value))
        .env_overrides(EnvOverrides::default())
        .vprocs(vprocs)
        .run()
        .expect("the configuration is valid")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mgc-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn run_record_to_store_to_query_is_byte_identical() {
    let dir = tempdir("roundtrip");
    let records = [run_record(5, 1), run_record(7, 2)];
    let meta = RunMeta::capture("integration-test", "tiny");
    let seq = Store::append(&dir, &meta, &records).expect("append succeeds");
    assert_eq!(seq, 1);

    let store = Store::open(&dir).expect("the store opens");
    assert_eq!(store.num_records(), 2);

    // Every stored record is the exact text to_json produced.
    for (record, stored) in records.iter().zip(store.records()) {
        assert_eq!(stored.raw(), record.to_json());
        assert_eq!(stored.schema_version(), RUN_RECORD_SCHEMA_VERSION);
    }

    // And the typed query finds it again with the typed fields intact.
    let matches = Query::new()
        .program("constant")
        .backend("simulated")
        .vprocs(2)
        .run(&store);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].raw(), records[1].to_json());
    assert_eq!(matches[0].simulated_ns(), records[1].simulated_ns());

    // The batch meta survives too.
    let batch = store.latest_batch().expect("one batch");
    assert_eq!(batch.meta, meta);
    assert_eq!(batch.meta.kind, "integration-test");

    // Exporting the batch flat and re-ingesting it loses nothing.
    let flat = batch.flat_records_json();
    let reingested = mgc_store::parse_flat_records(&flat, "export").expect("the export parses");
    for (record, stored) in records.iter().zip(reingested.iter()) {
        assert_eq!(stored.raw(), record.to_json());
    }

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn latest_per_key_resolves_re_runs_across_batches() {
    let dir = tempdir("latest");
    let first = [run_record(5, 1)];
    let second = [run_record(9, 1)];
    Store::append(&dir, &RunMeta::capture("first", "tiny"), &first).unwrap();
    Store::append(&dir, &RunMeta::capture("second", "tiny"), &second).unwrap();

    let store = Store::open(&dir).unwrap();
    assert_eq!(store.batches().len(), 2);
    let latest = Query::new().program("constant").latest_per_key(&store);
    assert_eq!(latest.len(), 1, "both runs share one key");
    assert_eq!(
        latest[0].raw(),
        second[0].to_json(),
        "the newer batch shadows the older one"
    );
    assert_eq!(latest[0].batch_seq(), 2);

    fs::remove_dir_all(&dir).unwrap();
}
