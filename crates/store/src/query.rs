//! The typed query API: how gates and reports read the store.

use crate::record::{RecordKey, StoredRecord};
use crate::store::Store;

/// A typed filter over stored records, built up fluently:
///
/// ```
/// use mgc_store::Query;
/// let q = Query::new()
///     .program("Quicksort")
///     .backend("threaded")
///     .vprocs(4);
/// # let _ = q;
/// ```
///
/// Every field left unset matches everything. [`Query::run`] returns the
/// matches in store order; [`Query::latest_per_key`] collapses them to the
/// newest record per run-point key, which is what the perf gates compare.
#[derive(Debug, Clone, Default)]
pub struct Query {
    program: Option<String>,
    backend: Option<String>,
    vprocs: Option<u64>,
    placement: Option<String>,
    pause_budget_us: Option<Option<u64>>,
    since_batch: Option<u64>,
}

impl Query {
    /// A query matching every record.
    pub fn new() -> Self {
        Query::default()
    }

    /// Keep only records of this program.
    pub fn program(mut self, name: impl Into<String>) -> Self {
        self.program = Some(name.into());
        self
    }

    /// Keep only records from this backend (`"simulated"`/`"threaded"`).
    pub fn backend(mut self, backend: impl Into<String>) -> Self {
        self.backend = Some(backend.into());
        self
    }

    /// Keep only records that ran on this many vprocs.
    pub fn vprocs(mut self, vprocs: u64) -> Self {
        self.vprocs = Some(vprocs);
        self
    }

    /// Keep only records under this placement policy.
    pub fn placement(mut self, placement: impl Into<String>) -> Self {
        self.placement = Some(placement.into());
        self
    }

    /// Keep only records with exactly this pause budget (`None` selects
    /// the unbudgeted runs — it is a filter value, not "don't filter").
    pub fn pause_budget(mut self, budget_us: Option<u64>) -> Self {
        self.pause_budget_us = Some(budget_us);
        self
    }

    /// Keep only records from batch `seq` or newer.
    pub fn since_batch(mut self, seq: u64) -> Self {
        self.since_batch = Some(seq);
        self
    }

    /// Whether one record passes every set filter.
    pub fn matches(&self, record: &StoredRecord) -> bool {
        if let Some(p) = &self.program {
            if record.program() != p {
                return false;
            }
        }
        if let Some(b) = &self.backend {
            if record.backend() != b {
                return false;
            }
        }
        if let Some(v) = self.vprocs {
            if record.vprocs() != v {
                return false;
            }
        }
        if let Some(pl) = &self.placement {
            if record.placement() != pl {
                return false;
            }
        }
        if let Some(budget) = self.pause_budget_us {
            if record.pause_budget_us() != budget {
                return false;
            }
        }
        if let Some(seq) = self.since_batch {
            if record.batch_seq() < seq {
                return false;
            }
        }
        true
    }

    /// All matching records in a store, in store order (batches by
    /// sequence number, sweep order within a batch).
    pub fn run<'a>(&self, store: &'a Store) -> Vec<&'a StoredRecord> {
        self.run_over(store.records())
    }

    /// All matching records from any record iterator (a single batch, a
    /// flat-file ingest, ...), preserving the input order.
    pub fn run_over<'a>(
        &self,
        records: impl IntoIterator<Item = &'a StoredRecord>,
    ) -> Vec<&'a StoredRecord> {
        records.into_iter().filter(|r| self.matches(r)).collect()
    }

    /// The newest matching record for each run-point key: later batches
    /// shadow earlier ones (and later records shadow earlier ones within a
    /// batch), so re-running a sweep updates the comparison set without
    /// rewriting history. Keys keep first-seen order.
    pub fn latest_per_key<'a>(&self, store: &'a Store) -> Vec<&'a StoredRecord> {
        self.latest_per_key_over(store.records())
    }

    /// [`Query::latest_per_key`] over any record iterator (the input must
    /// be ordered oldest-first, as [`Store::records`] is).
    pub fn latest_per_key_over<'a>(
        &self,
        records: impl IntoIterator<Item = &'a StoredRecord>,
    ) -> Vec<&'a StoredRecord> {
        let mut keys: Vec<RecordKey> = Vec::new();
        let mut latest: Vec<&'a StoredRecord> = Vec::new();
        for record in records {
            if !self.matches(record) {
                continue;
            }
            let key = record.record_key();
            match keys.iter().position(|k| *k == key) {
                Some(i) => latest[i] = record,
                None => {
                    keys.push(key);
                    latest.push(record);
                }
            }
        }
        latest
    }
}

/// One run-point key paired across two record sets — the unit of a
/// cross-run diff.
#[derive(Debug, Clone)]
pub struct DiffRow<'a> {
    /// The shared identity.
    pub key: RecordKey,
    /// The record from the older set.
    pub older: &'a StoredRecord,
    /// The record from the newer set.
    pub newer: &'a StoredRecord,
}

impl DiffRow<'_> {
    /// newer/older ratio of a metric both sides report with a non-zero
    /// older value.
    fn ratio(&self, metric: impl Fn(&StoredRecord) -> Option<f64>) -> Option<f64> {
        match (metric(self.older), metric(self.newer)) {
            (Some(old), Some(new)) if old > 0.0 => Some(new / old),
            _ => None,
        }
    }

    /// Wall-clock ratio (newer/older); `None` unless both sides measured.
    pub fn wall_ratio(&self) -> Option<f64> {
        self.ratio(StoredRecord::wall_clock_ns)
    }

    /// Promoted-bytes ratio (newer/older).
    pub fn promoted_ratio(&self) -> Option<f64> {
        self.ratio(|r| r.promoted_bytes().map(|b| b as f64))
    }

    /// p99-pause ratio (newer/older).
    pub fn pause_p99_ratio(&self) -> Option<f64> {
        self.ratio(StoredRecord::pause_p99_ns)
    }

    /// p99-latency ratio (newer/older).
    pub fn latency_p99_ratio(&self) -> Option<f64> {
        self.ratio(StoredRecord::latency_p99_ns)
    }
}

/// Pairs two record sets by run-point key: one row per key present in
/// both, in the newer set's order. Keys only one side has are simply not
/// rows — callers that care (the wall-clock gate's "missing baseline"
/// report) detect them from the inputs.
pub fn diff<'a>(older: &[&'a StoredRecord], newer: &[&'a StoredRecord]) -> Vec<DiffRow<'a>> {
    newer
        .iter()
        .filter_map(|n| {
            let key = n.record_key();
            older
                .iter()
                .find(|o| o.record_key() == key)
                .map(|o| DiffRow {
                    key,
                    older: o,
                    newer: n,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        program: &str,
        backend: &str,
        vprocs: u64,
        budget: Option<u64>,
        wall: u64,
        seq: u64,
    ) -> StoredRecord {
        let budget = match budget {
            Some(us) => us.to_string(),
            None => "null".to_string(),
        };
        StoredRecord::from_raw(
            &format!(
                "{{\"schema_version\": 2, \"program\": \"{program}\", \
                 \"backend\": \"{backend}\", \"vprocs\": {vprocs}, \
                 \"placement\": \"node-local\", \"pause_budget_us\": {budget}, \
                 \"wall_clock_ns\": {wall}, \"promoted_bytes\": {}}}",
                wall / 1000
            ),
            seq,
            0,
            "query test",
        )
        .unwrap()
    }

    #[test]
    fn filters_compose() {
        let records = vec![
            record("Quicksort", "threaded", 1, None, 90, 1),
            record("Quicksort", "threaded", 4, None, 34, 1),
            record("Quicksort", "simulated", 4, None, 34, 1),
            record("SMVM", "threaded", 4, None, 24, 1),
            record("Quicksort", "threaded", 4, Some(500), 36, 1),
        ];
        let q = Query::new().program("Quicksort").backend("threaded");
        assert_eq!(q.run_over(&records).len(), 3);
        assert_eq!(q.clone().vprocs(4).run_over(&records).len(), 2);
        assert_eq!(
            q.clone()
                .vprocs(4)
                .pause_budget(None)
                .run_over(&records)
                .len(),
            1
        );
        assert_eq!(
            q.vprocs(4).pause_budget(Some(500)).run_over(&records)[0].wall_clock_ns(),
            Some(36.0)
        );
        assert_eq!(Query::new().run_over(&records).len(), 5);
        assert_eq!(Query::new().since_batch(2).run_over(&records).len(), 0);
    }

    #[test]
    fn latest_per_key_prefers_newer_batches_and_keeps_order() {
        let records = vec![
            record("DMM", "threaded", 1, None, 100, 1),
            record("SMVM", "threaded", 1, None, 50, 1),
            record("DMM", "threaded", 1, None, 90, 2),
            record("DMM", "threaded", 4, None, 40, 2),
        ];
        let latest = Query::new().latest_per_key_over(&records);
        assert_eq!(latest.len(), 3);
        // First-seen key order: DMM/1v, SMVM/1v, DMM/4v.
        assert_eq!(latest[0].program(), "DMM");
        assert_eq!(
            latest[0].wall_clock_ns(),
            Some(90.0),
            "batch 2 shadows batch 1"
        );
        assert_eq!(latest[1].program(), "SMVM");
        assert_eq!(latest[2].vprocs(), 4);
    }

    #[test]
    fn diff_pairs_matching_keys() {
        let old = [
            record("DMM", "threaded", 4, None, 100, 1),
            record("SMVM", "threaded", 4, None, 50, 1),
        ];
        let new = [
            record("SMVM", "threaded", 4, None, 60, 2),
            record("Raytracer", "threaded", 4, None, 10, 2),
        ];
        let old_refs: Vec<&StoredRecord> = old.iter().collect();
        let new_refs: Vec<&StoredRecord> = new.iter().collect();
        let rows = diff(&old_refs, &new_refs);
        assert_eq!(rows.len(), 1, "only SMVM exists on both sides");
        assert_eq!(rows[0].key.program, "SMVM");
        assert_eq!(rows[0].wall_ratio(), Some(1.2));
        // Older promoted_bytes is 0 here (wall/1000 rounds down): a ratio
        // against zero is meaningless, so the diff declines to produce one.
        assert_eq!(rows[0].promoted_ratio(), None);
    }
}
