//! A minimal recursive-descent JSON parser.
//!
//! The vendored `serde` shim derives but does not serialise or parse, so
//! the store reads its inputs — batch files, legacy flat arrays, corpus
//! manifests — with this parser instead of the hand-rolled line scanning
//! `perfdiff` used to do. Two properties matter here:
//!
//! * object fields keep **file order** (the flat record schema is
//!   order-sensitive for humans diffing it);
//! * numbers keep their **raw source text**, so 64-bit counters round-trip
//!   exactly instead of taking a lossy detour through `f64`.
//!
//! The parser exposes its cursor to the rest of the crate so the store
//! can capture the exact byte span of each record inside a `records` array
//! — that raw text is what makes round-trips through the store
//! byte-identical.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number, kept as its raw source text (see the module docs).
    Number(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in file order. Lookup is linear — records have a
    /// few dozen fields and are parsed far more often than queried twice.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a field up in an object; `None` for absent fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number with an exact unsigned
    /// integer representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What the parser expected or found instead.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value, optionally surrounded by
/// whitespace).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing data after the JSON value"));
    }
    Ok(value)
}

/// The cursor-style parser behind [`parse`]. `pub(crate)` so the store can
/// drive it manually where it needs byte spans (record arrays) or
/// streaming-style header handling (batch files).
pub(crate) struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn slice(&self, start: usize, end: usize) -> &'a str {
        &self.text[start..end]
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes `byte` if it is next; reports whether it did.
    pub(crate) fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes `byte` or fails.
    pub(crate) fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', found {}",
                byte as char,
                self.describe_next()
            )))
        }
    }

    fn describe_next(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("'{}'", b as char),
            Some(b) => format!("byte {b:#04x}"),
            None => "end of input".to_string(),
        }
    }

    /// Parses one JSON value starting at the cursor (no leading
    /// whitespace).
    pub(crate) fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error(format!("expected a value, found {}", self.describe_next()))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(JsonValue::Object(fields));
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(JsonValue::Array(items));
        }
    }

    pub(crate) fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(
                                self.error(format!("unsupported escape '\\{}'", other as char))
                            );
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // char boundaries are reliable).
                    let rest = &self.text[self.pos..];
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pairs: records never emit them (escape_json only
        // escapes ASCII controls), but accept well-formed pairs anyway.
        if (0xd800..0xdc00).contains(&code) {
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.error("lone high surrogate in \\u escape"));
            }
            let low = self.hex4()?;
            if !(0xdc00..0xe000).contains(&low) {
                return Err(self.error("invalid low surrogate in \\u escape"));
            }
            let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            return char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"));
        }
        char::from_u32(code).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected four hex digits after \\u"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        if !self.digits() {
            return Err(self.error("expected digits in number"));
        }
        if self.eat(b'.') && !self.digits() {
            return Err(self.error("expected digits after decimal point"));
        }
        if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
            self.pos += 1;
            if self.peek() == Some(b'+') || self.peek() == Some(b'-') {
                self.pos += 1;
            }
            if !self.digits() {
                return Err(self.error("expected digits in exponent"));
            }
        }
        Ok(JsonValue::Number(self.slice(start, self.pos).to_string()))
    }

    fn digits(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos > start
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scalar_zoo() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse(" \"hi\" ").unwrap(), JsonValue::Str("hi".into()));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn numbers_keep_their_raw_text() {
        // 2^63 + 1 is not representable in f64; the raw text preserves it.
        let v = parse("9223372036854775809").unwrap();
        assert_eq!(v, JsonValue::Number("9223372036854775809".into()));
        assert_eq!(v.as_u64(), Some(9223372036854775809));
    }

    #[test]
    fn objects_keep_field_order() {
        let v = parse(r#"{"z": 1, "a": [2, null], "m": {"x": true}}"#).unwrap();
        match &v {
            JsonValue::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("expected an object, got {other:?}"),
        }
        assert_eq!(v.get("z").unwrap().as_u64(), Some(1));
        assert!(v.get("a").unwrap().as_array().unwrap()[1].is_null());
        assert_eq!(v.get("m").unwrap().get("x").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            parse(r#""a\"b\\c\ndAé""#).unwrap().as_str(),
            Some("a\"b\\c\ndA\u{e9}")
        );
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn malformed_input_reports_the_offset() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.message.contains("expected a value"), "{err}");

        let err = parse("[1, 2").unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");

        let err = parse("{} trailing").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");

        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn a_real_record_line_parses() {
        let line = "{\"schema_version\": 2, \"program\": \"Quicksort\", \
                    \"params\": {\"elements\": 65536}, \"backend\": \"threaded\", \
                    \"vprocs\": 4, \"wall_clock_ns\": 34000000, \
                    \"pause_budget_us\": null, \"throughput_rps\": 0.000}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("program").unwrap().as_str(), Some("Quicksort"));
        assert_eq!(v.get("vprocs").unwrap().as_u64(), Some(4));
        assert!(v.get("pause_budget_us").unwrap().is_null());
        assert_eq!(v.get("throughput_rps").unwrap().as_f64(), Some(0.0));
    }
}
