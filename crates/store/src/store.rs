//! The on-disk store: append-only batch files under a store directory.
//!
//! Layout: one file per appended run, `run-000001.json`, `run-000002.json`,
//! ... in claim order. Each file is
//!
//! ```json
//! {
//!   "store_schema_version": 1,
//!   "meta": {"git_rev": "...", "timestamp_unix": 0, "host_nodes": 1,
//!            "host_cores": 1, "scale": "bench", "kind": "bench-baseline"},
//!   "records": [
//!     {"schema_version": 2, "program": "...", ...},
//!     {"schema_version": 2, "program": "...", ...}
//!   ]
//! }
//! ```
//!
//! with the records exactly as [`mgc_runtime::RunRecord::to_json`] emitted
//! them, one per line. Appending never opens an existing file for writing:
//! a writer claims the next sequence number with `O_CREAT|O_EXCL`
//! (`create_new`) and retries on collision, so concurrent sweeps interleave
//! instead of clobbering each other and history is immutable once written.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use mgc_numa::Topology;
use mgc_runtime::RunRecord;

use crate::json::{JsonValue, Parser};
use crate::record::StoredRecord;
use crate::StoreError;

/// Version of the batch-file layout. Independent of the record schema: this
/// guards the header shape, `schema_version` inside each record guards the
/// record fields.
pub const STORE_SCHEMA_VERSION: u64 = 1;

/// Batch files are `run-NNNNNN.json`; anything else in the directory is
/// ignored (editor droppings, `.gitkeep`, future sidecars).
const BATCH_PREFIX: &str = "run-";
const BATCH_SUFFIX: &str = ".json";

/// How many sequence-number collisions [`Store::append`] tolerates before
/// giving up. Collisions require another writer appending at the same
/// instant, so in practice one retry is already rare.
const APPEND_ATTEMPTS: u32 = 1000;

/// Metadata recorded alongside every appended batch: enough to know where
/// a number came from when reading trends months later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Git revision the run was built from (`GITHUB_SHA` in CI, `git
    /// rev-parse` locally, `"unknown"` outside a checkout).
    pub git_rev: String,
    /// Seconds since the Unix epoch when the batch was appended.
    pub timestamp_unix: u64,
    /// NUMA nodes probed on the host that ran the sweep.
    pub host_nodes: u64,
    /// Cores probed on the host that ran the sweep.
    pub host_cores: u64,
    /// Scale preset the sweep ran at (`tiny`/`small`/`bench`/`paper`).
    pub scale: String,
    /// What produced the batch (`"bench-baseline"`, `"serve"`,
    /// `"corpus:<name>"`, ...).
    pub kind: String,
}

impl RunMeta {
    /// Captures metadata for a batch appended right now on this host.
    pub fn capture(kind: &str, scale: &str) -> Self {
        let host = Topology::host();
        RunMeta {
            git_rev: current_git_rev(),
            timestamp_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            host_nodes: host.num_nodes() as u64,
            host_cores: host.num_cores() as u64,
            scale: scale.to_string(),
            kind: kind.to_string(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"git_rev\": \"{}\", \"timestamp_unix\": {}, \"host_nodes\": {}, \
             \"host_cores\": {}, \"scale\": \"{}\", \"kind\": \"{}\"}}",
            escape(&self.git_rev),
            self.timestamp_unix,
            self.host_nodes,
            self.host_cores,
            escape(&self.scale),
            escape(&self.kind),
        )
    }

    fn from_value(v: &JsonValue) -> Self {
        let string = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        let number = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        RunMeta {
            git_rev: string("git_rev"),
            timestamp_unix: number("timestamp_unix"),
            host_nodes: number("host_nodes"),
            host_cores: number("host_cores"),
            scale: string("scale"),
            kind: string("kind"),
        }
    }
}

/// Best-effort current revision: CI exposes `GITHUB_SHA`; locally ask git;
/// outside a checkout record `"unknown"` rather than failing the sweep.
fn current_git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Minimal JSON string escape for metadata values (keys are fixed).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One appended run: its sequence number, metadata, and records.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Sequence number from the file name (`run-000003.json` → 3).
    pub seq: u64,
    /// The metadata recorded when the batch was appended.
    pub meta: RunMeta,
    /// The batch's records, in sweep order.
    pub records: Vec<StoredRecord>,
}

impl Batch {
    /// Renders the batch's records in the legacy flat-array format
    /// (`results/baseline/*.json`), byte-for-byte from the stored record
    /// text. This is how the checked-in flat baselines are generated now:
    /// the store is written first and the flat file is an export of it, so
    /// the two can never drift apart.
    pub fn flat_records_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, record) in self.records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(record.raw());
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

/// A store directory opened for reading: every batch, parsed and ordered
/// by sequence number.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    batches: Vec<Batch>,
}

impl Store {
    /// Opens a store directory, reading every `run-*.json` batch in
    /// sequence order. Fails on a missing directory, unreadable files,
    /// malformed batches, and unknown schema versions — a perf gate must
    /// never silently run against a store it half-understood.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mut seqs = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| StoreError::Io {
                path: dir.clone(),
                source,
            })?;
            if let Some(seq) = batch_seq_of(&entry.file_name().to_string_lossy()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        let mut batches = Vec::with_capacity(seqs.len());
        for seq in seqs {
            let path = batch_path(&dir, seq);
            let text = fs::read_to_string(&path).map_err(|source| StoreError::Io {
                path: path.clone(),
                source,
            })?;
            batches.push(parse_batch(&text, seq, &path.display().to_string())?);
        }
        Ok(Store { dir, batches })
    }

    /// The directory this store reads from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All batches, ordered by sequence number.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// The most recently appended batch.
    pub fn latest_batch(&self) -> Option<&Batch> {
        self.batches.last()
    }

    /// The batch with the given sequence number.
    pub fn batch(&self, seq: u64) -> Option<&Batch> {
        self.batches.iter().find(|b| b.seq == seq)
    }

    /// Every record in the store, batches in sequence order, records in
    /// sweep order within each batch.
    pub fn records(&self) -> impl Iterator<Item = &StoredRecord> {
        self.batches.iter().flat_map(|b| b.records.iter())
    }

    /// Total record count across all batches.
    pub fn num_records(&self) -> usize {
        self.batches.iter().map(|b| b.records.len()).sum()
    }

    /// Appends one batch of records to `dir`, creating the directory if
    /// needed, and returns the claimed sequence number. Never modifies an
    /// existing file: the next free sequence number is claimed with
    /// `create_new`, and a collision with a concurrent writer just moves
    /// on to the following number.
    pub fn append(
        dir: impl AsRef<Path>,
        meta: &RunMeta,
        records: &[RunRecord],
    ) -> Result<u64, StoreError> {
        let lines: Vec<String> = records.iter().map(RunRecord::to_json).collect();
        Self::append_lines(dir, meta, &lines)
    }

    /// The raw-text layer under [`Store::append`]: appends records already
    /// serialised as JSON object lines. Each line is validated as a
    /// well-formed record of a supported schema version before anything is
    /// written, so a bad writer cannot poison the store.
    pub fn append_lines(
        dir: impl AsRef<Path>,
        meta: &RunMeta,
        lines: &[String],
    ) -> Result<u64, StoreError> {
        let dir = dir.as_ref();
        for (i, line) in lines.iter().enumerate() {
            StoredRecord::from_raw(line, 0, i, "record to append")?;
        }
        fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let body = render_batch(meta, lines);
        for _ in 0..APPEND_ATTEMPTS {
            let seq = next_seq(dir)?;
            let path = batch_path(dir, seq);
            match fs::File::options().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(body.as_bytes())
                        .map_err(|source| StoreError::Io {
                            path: path.clone(),
                            source,
                        })?;
                    return Ok(seq);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(source) => return Err(StoreError::Io { path, source }),
            }
        }
        Err(StoreError::AppendContention {
            dir: dir.to_path_buf(),
            attempts: APPEND_ATTEMPTS,
        })
    }
}

/// Parses a legacy flat RunRecord-JSON array (the pre-store
/// `results/*.json` format) into stored records, batch sequence 0. This is
/// the one-PR-cycle ingest shim that keeps `perfdiff` working against flat
/// files while baselines migrate into the store.
pub fn parse_flat_records(text: &str, context: &str) -> Result<Vec<StoredRecord>, StoreError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let spans = record_array_spans(&mut p, context)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(StoreError::Malformed {
            context: context.to_string(),
            message: "trailing data after the record array".to_string(),
        });
    }
    spans
        .into_iter()
        .enumerate()
        .map(|(i, raw)| StoredRecord::from_raw(raw, 0, i, context))
        .collect()
}

/// Reads and parses a legacy flat RunRecord-JSON file (see
/// [`parse_flat_records`]).
pub fn ingest_flat_file(path: impl AsRef<Path>) -> Result<Vec<StoredRecord>, StoreError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    parse_flat_records(&text, &path.display().to_string())
}

/// Extracts the sequence number from a batch file name
/// (`run-000042.json` → 42).
fn batch_seq_of(name: &str) -> Option<u64> {
    name.strip_prefix(BATCH_PREFIX)?
        .strip_suffix(BATCH_SUFFIX)?
        .parse()
        .ok()
}

fn batch_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{BATCH_PREFIX}{seq:06}{BATCH_SUFFIX}"))
}

/// One past the highest sequence number currently in `dir`.
fn next_seq(dir: &Path) -> Result<u64, StoreError> {
    let entries = fs::read_dir(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut max = 0;
    for entry in entries {
        let entry = entry.map_err(|source| StoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        if let Some(seq) = batch_seq_of(&entry.file_name().to_string_lossy()) {
            max = max.max(seq);
        }
    }
    Ok(max + 1)
}

/// Renders a batch file body (see the module docs for the layout).
fn render_batch(meta: &RunMeta, lines: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"store_schema_version\": {STORE_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"meta\": {},", meta.to_json());
    let _ = writeln!(out, "  \"records\": [");
    for (i, line) in lines.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {line}{}",
            if i + 1 < lines.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Parses one batch file. Drives the [`Parser`] by hand so each record's
/// exact byte span can be captured — re-serialising parsed JSON would risk
/// drifting from what `RunRecord::to_json` wrote.
fn parse_batch(text: &str, seq: u64, context: &str) -> Result<Batch, StoreError> {
    let malformed = |message: String| StoreError::Malformed {
        context: context.to_string(),
        message,
    };
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect(b'{').map_err(|e| malformed(e.to_string()))?;
    let mut version: Option<JsonValue> = None;
    let mut meta = None;
    let mut record_spans: Option<Vec<&str>> = None;
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            p.skip_ws();
            let key = p.parse_string().map_err(|e| malformed(e.to_string()))?;
            p.skip_ws();
            p.expect(b':').map_err(|e| malformed(e.to_string()))?;
            p.skip_ws();
            match key.as_str() {
                "store_schema_version" => {
                    version = Some(p.value().map_err(|e| malformed(e.to_string()))?);
                }
                "meta" => {
                    let v = p.value().map_err(|e| malformed(e.to_string()))?;
                    meta = Some(RunMeta::from_value(&v));
                }
                "records" => {
                    record_spans = Some(record_array_spans(&mut p, context)?);
                }
                // Unknown header keys are skipped: adding one later must
                // not break older readers (the version field guards
                // incompatible changes).
                _ => {
                    p.value().map_err(|e| malformed(e.to_string()))?;
                }
            }
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.expect(b'}').map_err(|e| malformed(e.to_string()))?;
            break;
        }
    }
    match version.as_ref().and_then(JsonValue::as_u64) {
        Some(STORE_SCHEMA_VERSION) => {}
        _ => {
            return Err(StoreError::UnknownSchemaVersion {
                field: "store_schema_version",
                found: version
                    .map(|v| match v {
                        JsonValue::Number(raw) => raw,
                        other => format!("{other:?}"),
                    })
                    .unwrap_or_else(|| "absent".to_string()),
                context: context.to_string(),
            });
        }
    }
    let meta = meta.ok_or_else(|| malformed("batch has no \"meta\" header".to_string()))?;
    let records = record_spans
        .ok_or_else(|| malformed("batch has no \"records\" array".to_string()))?
        .into_iter()
        .enumerate()
        .map(|(i, raw)| StoredRecord::from_raw(raw, seq, i, context))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Batch { seq, meta, records })
}

/// Parses a JSON array whose elements are returned as raw byte spans of
/// the input (the elements are validated by parsing, but the returned text
/// is the verbatim source).
fn record_array_spans<'a>(p: &mut Parser<'a>, context: &str) -> Result<Vec<&'a str>, StoreError> {
    let malformed = |message: String| StoreError::Malformed {
        context: context.to_string(),
        message,
    };
    p.expect(b'[').map_err(|e| malformed(e.to_string()))?;
    let mut spans = Vec::new();
    p.skip_ws();
    if p.eat(b']') {
        return Ok(spans);
    }
    loop {
        p.skip_ws();
        let start = p.pos();
        p.value().map_err(|e| malformed(e.to_string()))?;
        spans.push(p.slice(start, p.pos()));
        p.skip_ws();
        if p.eat(b',') {
            continue;
        }
        p.expect(b']').map_err(|e| malformed(e.to_string()))?;
        return Ok(spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(program: &str, vprocs: u64, wall: u64) -> String {
        format!(
            "{{\"schema_version\": 2, \"program\": \"{program}\", \
             \"backend\": \"threaded\", \"vprocs\": {vprocs}, \
             \"placement\": \"node-local\", \"pause_budget_us\": null, \
             \"wall_clock_ns\": {wall}, \"promoted_bytes\": 4096}}"
        )
    }

    fn meta() -> RunMeta {
        RunMeta {
            git_rev: "abc123def456".to_string(),
            timestamp_unix: 1754500000,
            host_nodes: 2,
            host_cores: 8,
            scale: "bench".to_string(),
            kind: "test".to_string(),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mgc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_open_round_trips_records_byte_for_byte() {
        let dir = tempdir("roundtrip");
        let lines = vec![
            line("Quicksort", 1, 90000000),
            line("Quicksort", 4, 34000000),
        ];
        let seq = Store::append_lines(&dir, &meta(), &lines).unwrap();
        assert_eq!(seq, 1);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.num_records(), 2);
        let batch = store.latest_batch().unwrap();
        assert_eq!(batch.seq, 1);
        assert_eq!(batch.meta, meta());
        let raws: Vec<&str> = batch.records.iter().map(|r| r.raw()).collect();
        assert_eq!(raws, lines.iter().map(String::as_str).collect::<Vec<_>>());

        // The flat export is the classic format, built from the same bytes.
        let flat = batch.flat_records_json();
        assert_eq!(flat, format!("[\n  {},\n  {}\n]\n", lines[0], lines[1]));
        let reingested = parse_flat_records(&flat, "export").unwrap();
        assert_eq!(reingested.len(), 2);
        assert_eq!(reingested[0].raw(), lines[0]);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_never_rewrite_existing_batches() {
        let dir = tempdir("appendonly");
        let first = vec![line("SMVM", 1, 24000000)];
        Store::append_lines(&dir, &meta(), &first).unwrap();
        let first_body = fs::read_to_string(batch_path(&dir, 1)).unwrap();

        let second = vec![line("SMVM", 1, 23000000)];
        let seq = Store::append_lines(&dir, &meta(), &second).unwrap();
        assert_eq!(seq, 2);
        assert_eq!(
            fs::read_to_string(batch_path(&dir, 1)).unwrap(),
            first_body,
            "an append must never touch an existing batch"
        );

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.batches().len(), 2);
        assert_eq!(
            store.batches()[1].records[0].wall_clock_ns(),
            Some(23000000.0)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_all_land_without_clobbering() {
        let dir = tempdir("concurrent");
        fs::create_dir_all(&dir).unwrap();
        const WRITERS: usize = 8;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let dir = dir.clone();
                scope.spawn(move || {
                    let lines = vec![line("Barnes-Hut", w as u64 + 1, 50000000)];
                    Store::append_lines(&dir, &meta(), &lines).unwrap();
                });
            }
        });
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.batches().len(), WRITERS, "every writer landed");
        let seqs: Vec<u64> = store.batches().iter().map(|b| b.seq).collect();
        assert_eq!(seqs, (1..=WRITERS as u64).collect::<Vec<_>>());
        // Each writer's record survived intact — nothing was clobbered.
        let mut vprocs: Vec<u64> = store.records().map(|r| r.vprocs()).collect();
        vprocs.sort_unstable();
        assert_eq!(vprocs, (1..=WRITERS as u64).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_records_are_rejected_before_anything_is_written() {
        let dir = tempdir("validate");
        let err = Store::append_lines(
            &dir,
            &meta(),
            &[
                "{\"schema_version\": 7, \"program\": \"x\", \"backend\": \"threaded\", \
               \"vprocs\": 1}"
                    .to_string(),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::UnknownSchemaVersion { .. }));
        assert!(!dir.exists() || fs::read_dir(&dir).unwrap().next().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_store_schema_version_is_a_typed_error() {
        let dir = tempdir("storever");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            batch_path(&dir, 1),
            "{\"store_schema_version\": 9, \"meta\": {}, \"records\": []}",
        )
        .unwrap();
        let err = Store::open(&dir).unwrap_err();
        match &err {
            StoreError::UnknownSchemaVersion { field, found, .. } => {
                assert_eq!(*field, "store_schema_version");
                assert_eq!(found, "9");
            }
            other => panic!("expected UnknownSchemaVersion, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_a_missing_directory_is_an_io_error() {
        let err = Store::open(tempdir("missing")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    #[test]
    fn non_batch_files_are_ignored() {
        let dir = tempdir("ignore");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".gitkeep"), "").unwrap();
        fs::write(dir.join("notes.txt"), "scribble").unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.batches().is_empty());
        assert_eq!(
            Store::append_lines(&dir, &meta(), &[line("DMM", 1, 1)]).unwrap(),
            1
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flat_ingest_accepts_legacy_records_without_versions() {
        let text = "[\n  {\"program\": \"DMM\", \"backend\": \"threaded\", \"vprocs\": 1, \
                    \"wall_clock_ns\": 55990000, \"promoted_bytes\": 128},\n  \
                    {\"program\": \"DMM\", \"backend\": \"threaded\", \"vprocs\": 4, \
                    \"wall_clock_ns\": 30264000, \"promoted_bytes\": 128}\n]\n";
        let records = parse_flat_records(text, "legacy").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].schema_version(), crate::LEGACY_RECORD_VERSION);
        assert_eq!(records[0].batch_seq(), 0);
        assert_eq!(records[1].index(), 1);
        assert_eq!(records[1].wall_clock_ns(), Some(30264000.0));
    }

    #[test]
    fn batch_seq_parsing_is_strict() {
        assert_eq!(batch_seq_of("run-000042.json"), Some(42));
        assert_eq!(batch_seq_of("run-1.json"), Some(1));
        assert_eq!(batch_seq_of("run-.json"), None);
        assert_eq!(batch_seq_of("run-abc.json"), None);
        assert_eq!(batch_seq_of("other.json"), None);
        assert_eq!(batch_seq_of("run-000001.json.bak"), None);
    }
}
