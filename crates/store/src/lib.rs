//! The queryable results store behind the bench harness and the CI perf
//! gates.
//!
//! Every sweep — the checked-in baselines, `sweep --corpus`, the CI
//! perf-gate runs — appends one **batch** to a store directory
//! (`results/store/` by default). A batch is a single JSON file holding the
//! run's metadata (git revision, timestamp, host topology, scale, what kind
//! of sweep it was) and the full [`RunRecord`](mgc_runtime::RunRecord)
//! payload of every point in the run, one record per line, byte-for-byte as
//! [`RunRecord::to_json`](mgc_runtime::RunRecord::to_json) emitted it.
//!
//! Three properties the rest of the tree leans on:
//!
//! * **Append-only.** [`Store::append`] claims the next sequence number
//!   with `O_CREAT|O_EXCL` and never rewrites an existing file, so
//!   concurrent writers interleave instead of clobbering and history is
//!   never edited in place.
//! * **Schema-versioned.** Batch headers carry
//!   [`STORE_SCHEMA_VERSION`] and every record
//!   carries the runtime's
//!   [`RUN_RECORD_SCHEMA_VERSION`](mgc_runtime::RUN_RECORD_SCHEMA_VERSION);
//!   ingest rejects versions it does not understand with a typed error
//!   naming the offending field instead of silently misreading the data.
//! * **Raw fidelity.** A [`StoredRecord`] keeps the exact source text of
//!   its record object alongside the parsed fields, so exporting a batch
//!   back to the legacy flat-array format
//!   ([`Batch::flat_records_json`](store::Batch::flat_records_json)) and
//!   round-tripping a record through the store are byte-identical
//!   operations.
//!
//! Reading happens through [`Query`]: a typed filter builder
//! (`Query::new().program("Quicksort").backend("threaded").vprocs(4)`)
//! that yields matched records, the latest record per run-point key, or
//! cross-run [`diff`] rows. `perfdiff` and the `trend` report are both
//! built on it; nothing in the tree parses result JSON by hand anymore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod query;
pub mod record;
pub mod store;

pub use json::{JsonError, JsonValue};
pub use query::{diff, DiffRow, Query};
pub use record::{RecordKey, StoredRecord, LEGACY_RECORD_VERSION};
pub use store::{
    ingest_flat_file, parse_flat_records, Batch, RunMeta, Store, STORE_SCHEMA_VERSION,
};

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong opening, appending to, or ingesting into
/// the store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure reading or writing under the store directory.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A batch file, record, or flat input was not valid JSON or not the
    /// shape the store expects.
    Malformed {
        /// Where the bad input came from (file path or a description).
        context: String,
        /// What the parser objected to.
        message: String,
    },
    /// A schema-version field carried a value this build does not read.
    /// `field` names the offending field — `"schema_version"` on a record,
    /// `"store_schema_version"` on a batch header.
    UnknownSchemaVersion {
        /// The schema-version field that was rejected.
        field: &'static str,
        /// The value found, as source text (may be non-numeric).
        found: String,
        /// Where the rejected value came from.
        context: String,
    },
    /// A record is missing one of the identity fields every version of the
    /// schema requires (`program`, `backend`, `vprocs`).
    MissingField {
        /// The absent field.
        field: &'static str,
        /// Where the incomplete record came from.
        context: String,
    },
    /// The append loop lost the race for a fresh sequence number too many
    /// times in a row.
    AppendContention {
        /// The store directory being appended to.
        dir: PathBuf,
        /// How many sequence numbers were tried.
        attempts: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            StoreError::Malformed { context, message } => {
                write!(f, "{context}: {message}")
            }
            StoreError::UnknownSchemaVersion {
                field,
                found,
                context,
            } => {
                let newest = if *field == "store_schema_version" {
                    STORE_SCHEMA_VERSION
                } else {
                    mgc_runtime::RUN_RECORD_SCHEMA_VERSION
                };
                write!(
                    f,
                    "{context}: field \"{field}\" is {found}, but this build \
                     reads versions {LEGACY_RECORD_VERSION}..={newest}"
                )
            }
            StoreError::MissingField { field, context } => {
                write!(f, "{context}: record is missing \"{field}\"")
            }
            StoreError::AppendContention { dir, attempts } => {
                write!(
                    f,
                    "{}: could not claim a batch sequence number after {attempts} attempts",
                    dir.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
