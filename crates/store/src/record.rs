//! A single stored run result: raw record text plus parsed, typed fields.

use crate::json::{self, JsonValue};
use crate::StoreError;

/// The schema version assumed for records that predate the
/// `schema_version` field — the flat `results/baseline/*.json` arrays
/// written before the store existed. The ingest shim accepts them for one
/// PR cycle; everything the store writes carries
/// [`mgc_runtime::RUN_RECORD_SCHEMA_VERSION`].
pub const LEGACY_RECORD_VERSION: u64 = 1;

/// The identity of a run point across batches: re-running the same point
/// appends a new record with the same key, and
/// [`Query::latest_per_key`](crate::Query::latest_per_key) resolves the
/// newest one. This is the same five-field key `perfdiff` has always
/// matched baselines on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecordKey {
    /// Program name (`"Quicksort"`, `"Request-Server"`, ...).
    pub program: String,
    /// Backend label (`"simulated"` or `"threaded"`).
    pub backend: String,
    /// Number of vprocs the point ran on.
    pub vprocs: u64,
    /// Placement policy label.
    pub placement: String,
    /// GC pause budget in microseconds, `None` when unbudgeted.
    pub pause_budget_us: Option<u64>,
}

impl std::fmt::Display for RecordKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}v/{}",
            self.program, self.backend, self.vprocs, self.placement
        )?;
        match self.pause_budget_us {
            Some(us) => write!(f, "/budget={us}us"),
            None => Ok(()),
        }
    }
}

/// One run record as read from the store (or from a legacy flat file via
/// the ingest shim): the exact source text it was parsed from, the parsed
/// field tree, and where in the store it came from.
#[derive(Debug, Clone)]
pub struct StoredRecord {
    raw: String,
    fields: JsonValue,
    version: u64,
    batch_seq: u64,
    index: usize,
}

impl StoredRecord {
    /// Parses one record object from its source text. `batch_seq` is the
    /// sequence number of the batch it came from (0 for legacy flat files)
    /// and `index` its position within that batch.
    ///
    /// Rejects records whose `schema_version` is not one this build reads
    /// (absent counts as [`LEGACY_RECORD_VERSION`]) and records missing an
    /// identity field — both with typed errors, so a store poisoned by a
    /// future or foreign writer fails loudly at ingest rather than
    /// producing nonsense diffs later.
    pub fn from_raw(
        raw: &str,
        batch_seq: u64,
        index: usize,
        context: &str,
    ) -> Result<Self, StoreError> {
        let fields = json::parse(raw).map_err(|e| StoreError::Malformed {
            context: context.to_string(),
            message: e.to_string(),
        })?;
        if !matches!(fields, JsonValue::Object(_)) {
            return Err(StoreError::Malformed {
                context: context.to_string(),
                message: "a record must be a JSON object".to_string(),
            });
        }
        let version = match fields.get("schema_version") {
            None => LEGACY_RECORD_VERSION,
            Some(v) => match v.as_u64() {
                Some(n)
                    if (LEGACY_RECORD_VERSION..=mgc_runtime::RUN_RECORD_SCHEMA_VERSION)
                        .contains(&n) =>
                {
                    n
                }
                _ => {
                    return Err(StoreError::UnknownSchemaVersion {
                        field: "schema_version",
                        found: render_found(v),
                        context: context.to_string(),
                    });
                }
            },
        };
        let record = StoredRecord {
            raw: raw.to_string(),
            fields,
            version,
            batch_seq,
            index,
        };
        for field in ["program", "backend", "vprocs"] {
            if record.fields.get(field).is_none() {
                return Err(StoreError::MissingField {
                    field,
                    context: context.to_string(),
                });
            }
        }
        Ok(record)
    }

    /// The exact source text this record was parsed from. Writing this
    /// string back out reproduces the record byte-for-byte.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The record's `schema_version` ([`LEGACY_RECORD_VERSION`] when the
    /// field is absent).
    pub fn schema_version(&self) -> u64 {
        self.version
    }

    /// Sequence number of the batch this record came from (0 for records
    /// ingested from legacy flat files).
    pub fn batch_seq(&self) -> u64 {
        self.batch_seq
    }

    /// Position of this record within its batch.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Raw access to any field of the record.
    pub fn field(&self, key: &str) -> Option<&JsonValue> {
        self.fields.get(key)
    }

    /// A string field; `None` when absent or not a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(JsonValue::as_str)
    }

    /// An unsigned integer field; `None` when absent, `null`, or not an
    /// integer.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(JsonValue::as_u64)
    }

    /// A numeric field as `f64`; `None` when absent, `null`, or not a
    /// number.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(JsonValue::as_f64)
    }

    /// The program name (validated present at ingest).
    pub fn program(&self) -> &str {
        self.str_field("program").unwrap_or("")
    }

    /// The backend label (validated present at ingest).
    pub fn backend(&self) -> &str {
        self.str_field("backend").unwrap_or("")
    }

    /// The vproc count (validated present at ingest).
    pub fn vprocs(&self) -> u64 {
        self.u64_field("vprocs").unwrap_or(0)
    }

    /// The placement policy label. Records from before placement existed
    /// default to `"node-local"`, the policy those runs actually used.
    pub fn placement(&self) -> &str {
        self.str_field("placement").unwrap_or("node-local")
    }

    /// The GC pause budget in microseconds; `None` when unbudgeted (or on
    /// records from before budgets existed).
    pub fn pause_budget_us(&self) -> Option<u64> {
        self.u64_field("pause_budget_us")
    }

    /// Measured wall-clock nanoseconds; `None` on simulated runs.
    pub fn wall_clock_ns(&self) -> Option<f64> {
        self.f64_field("wall_clock_ns")
    }

    /// Modelled virtual nanoseconds; `None` on threaded runs.
    pub fn simulated_ns(&self) -> Option<f64> {
        self.f64_field("simulated_ns")
    }

    /// Total bytes promoted to the global heap.
    pub fn promoted_bytes(&self) -> Option<u64> {
        self.u64_field("promoted_bytes")
    }

    /// Longest single GC pause in nanoseconds.
    pub fn pause_max_ns(&self) -> Option<f64> {
        self.f64_field("pause_max_ns")
    }

    /// 99th-percentile GC pause in nanoseconds.
    pub fn pause_p99_ns(&self) -> Option<f64> {
        self.f64_field("pause_p99_ns")
    }

    /// 99th-percentile request latency in nanoseconds (0 on runs that
    /// served no requests).
    pub fn latency_p99_ns(&self) -> Option<f64> {
        self.f64_field("latency_p99_ns")
    }

    /// 99.9th-percentile request latency in nanoseconds.
    pub fn latency_p999_ns(&self) -> Option<f64> {
        self.f64_field("latency_p999_ns")
    }

    /// The five-field identity this record is matched across batches by.
    pub fn record_key(&self) -> RecordKey {
        RecordKey {
            program: self.program().to_string(),
            backend: self.backend().to_string(),
            vprocs: self.vprocs(),
            placement: self.placement().to_string(),
            pause_budget_us: self.pause_budget_us(),
        }
    }
}

/// Renders a rejected schema-version value for the error message.
fn render_found(v: &JsonValue) -> String {
    match v {
        JsonValue::Number(raw) => raw.clone(),
        JsonValue::Str(s) => format!("\"{s}\""),
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        _ => "a non-scalar value".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(raw: &str) -> Result<StoredRecord, StoreError> {
        StoredRecord::from_raw(raw, 3, 1, "test input")
    }

    const OK_LINE: &str = "{\"schema_version\": 2, \"program\": \"Quicksort\", \
                           \"backend\": \"threaded\", \"vprocs\": 4, \
                           \"placement\": \"interleave\", \"pause_budget_us\": 500, \
                           \"wall_clock_ns\": 34000000, \"promoted_bytes\": 1024, \
                           \"latency_p99_ns\": 0}";

    #[test]
    fn typed_accessors_read_the_fields() {
        let r = record(OK_LINE).unwrap();
        assert_eq!(r.schema_version(), 2);
        assert_eq!(r.program(), "Quicksort");
        assert_eq!(r.backend(), "threaded");
        assert_eq!(r.vprocs(), 4);
        assert_eq!(r.placement(), "interleave");
        assert_eq!(r.pause_budget_us(), Some(500));
        assert_eq!(r.wall_clock_ns(), Some(34000000.0));
        assert_eq!(r.promoted_bytes(), Some(1024));
        assert_eq!(r.latency_p99_ns(), Some(0.0));
        assert_eq!(r.batch_seq(), 3);
        assert_eq!(r.index(), 1);
        assert_eq!(r.raw(), OK_LINE);
        assert_eq!(
            r.record_key().to_string(),
            "Quicksort/threaded/4v/interleave/budget=500us"
        );
    }

    #[test]
    fn records_without_a_version_are_legacy_v1() {
        let r =
            record("{\"program\": \"SMVM\", \"backend\": \"simulated\", \"vprocs\": 1}").unwrap();
        assert_eq!(r.schema_version(), LEGACY_RECORD_VERSION);
        // Pre-placement records default to the policy they actually ran.
        assert_eq!(r.placement(), "node-local");
        assert_eq!(r.pause_budget_us(), None);
        assert_eq!(r.wall_clock_ns(), None);
    }

    #[test]
    fn unknown_versions_are_a_typed_error_naming_the_field() {
        let err = record(
            "{\"schema_version\": 99, \"program\": \"x\", \
             \"backend\": \"threaded\", \"vprocs\": 1}",
        )
        .unwrap_err();
        match &err {
            StoreError::UnknownSchemaVersion { field, found, .. } => {
                assert_eq!(*field, "schema_version");
                assert_eq!(found, "99");
            }
            other => panic!("expected UnknownSchemaVersion, got {other:?}"),
        }
        assert!(err.to_string().contains("\"schema_version\""), "{err}");
        assert!(err.to_string().contains("99"), "{err}");

        // Non-numeric versions are rejected the same way.
        let err = record(
            "{\"schema_version\": \"v2\", \"program\": \"x\", \
             \"backend\": \"threaded\", \"vprocs\": 1}",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            StoreError::UnknownSchemaVersion {
                field: "schema_version",
                ..
            }
        ));
    }

    #[test]
    fn missing_identity_fields_are_typed_errors() {
        let err = record("{\"schema_version\": 2, \"backend\": \"threaded\", \"vprocs\": 1}")
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::MissingField {
                field: "program",
                ..
            }
        ));
        let err = record("{\"program\": \"x\", \"backend\": \"threaded\"}").unwrap_err();
        assert!(matches!(
            err,
            StoreError::MissingField {
                field: "vprocs",
                ..
            }
        ));
    }

    #[test]
    fn null_wall_clock_reads_as_none() {
        let r = record(
            "{\"program\": \"x\", \"backend\": \"simulated\", \"vprocs\": 2, \
             \"wall_clock_ns\": null, \"simulated_ns\": 123456}",
        )
        .unwrap();
        assert_eq!(r.wall_clock_ns(), None);
        assert_eq!(r.simulated_ns(), Some(123456.0));
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        assert!(matches!(
            record("not json"),
            Err(StoreError::Malformed { .. })
        ));
        assert!(matches!(
            record("[1, 2]"),
            Err(StoreError::Malformed { .. })
        ));
    }
}
