//! Adaptive placement over real workloads.
//!
//! The controller's hysteresis arithmetic is pinned by deterministic unit
//! tests in `mgc-numa`; this suite checks the end-to-end contract instead:
//! a churning workload drives at least one recorded placement switch on
//! **both** backends without changing what the program computes, the
//! decision telemetry reaches the `RunRecord` JSON, and adaptive stays
//! byte-competitive with the better static policy.

use mgc_heap::HeapConfig;
use mgc_numa::{DecisionReason, PlacementMode, PlacementPolicy, Topology};
use mgc_runtime::{Backend, EnvOverrides, Experiment, RunRecord};
use mgc_workloads::churn::{Churn, ChurnParams};
use mgc_workloads::{Scale, Workload};

/// A churn that promotes often: every fourth object survives into the
/// global heap, across four workers spread over both nodes.
fn churn_params() -> ChurnParams {
    ChurnParams {
        objects_per_worker: 600,
        object_words: 8,
        survive_every: 4,
        workers: 4,
    }
}

fn run_churn(backend: Backend, placement: PlacementPolicy) -> RunRecord {
    Experiment::new(Churn::new(churn_params()))
        .env_overrides(EnvOverrides::default())
        .backend(backend)
        .topology(Topology::dual_node_test())
        .vprocs(4)
        .heap(HeapConfig::small_for_tests())
        .placement(placement)
        .run()
        .expect("the adaptive churn configuration is valid")
}

/// The acceptance criterion for the adaptive integration: a churning
/// workload makes the controller record at least one switch on both
/// backends, the first recorded decision is the cold-start adoption of
/// node-local placement, and the checksum still verifies.
#[test]
fn churning_workload_triggers_a_switch_on_both_backends() {
    for backend in Backend::ALL {
        let record = run_churn(backend, PlacementPolicy::Adaptive);
        assert_eq!(
            record.checksum_ok,
            Some(true),
            "{backend}: adaptive placement must not change the computed result"
        );
        assert!(
            record.report.placement_switches() >= 1,
            "{backend}: a promoting run must record at least the cold-start switch"
        );
        assert_eq!(
            record.report.placement_decisions.len() as u64,
            record.report.placement_switches(),
            "{backend}: every counted switch carries a recorded decision"
        );
        let first = record
            .report
            .placement_decisions
            .first()
            .expect("at least one decision is recorded");
        assert_eq!(first.decision.reason, DecisionReason::ColdStart);
        assert_eq!(first.decision.to, PlacementMode::NodeLocal);

        // The telemetry CI greps for must land in the record JSON.
        let json = record.to_json();
        assert!(json.contains("\"placement_switches\": "));
        assert!(json.contains("\"placement_decisions\": "));
        assert!(json.contains("\"reason\": \"cold-start\""));
        assert!(json.contains("\"node_bindings\": "));
    }
}

/// Static policies must not grow adaptive telemetry: no switches, no
/// decisions, under either backend.
#[test]
fn static_policies_record_no_adaptive_telemetry() {
    for backend in Backend::ALL {
        for placement in [PlacementPolicy::NodeLocal, PlacementPolicy::Interleave] {
            let record = run_churn(backend, placement);
            assert_eq!(record.checksum_ok, Some(true));
            assert_eq!(
                record.report.placement_switches(),
                0,
                "{backend}/{placement}: static policies never switch"
            );
            assert!(record.report.placement_decisions.is_empty());
        }
    }
}

/// The figure-8 acceptance in miniature: on Barnes-Hut (the most
/// promotion-heavy figure workload) adaptive placement's remote bytes stay
/// within 1.1× of the better static policy — after the cold-start adoption
/// it behaves exactly like node-local until the ledger shows real remote
/// pressure.
#[test]
fn adaptive_is_byte_competitive_with_the_better_static_policy() {
    let run = |placement| {
        Workload::BarnesHut
            .experiment(Scale::tiny())
            .env_overrides(EnvOverrides::default())
            .backend(Backend::Threaded)
            .topology(Topology::dual_node_test())
            .vprocs(4)
            .heap(HeapConfig::small_for_tests())
            .placement(placement)
            .run()
            .expect("the figure-8 configurations are valid")
    };
    let node_local = run(PlacementPolicy::NodeLocal);
    let interleave = run(PlacementPolicy::Interleave);
    let adaptive = run(PlacementPolicy::Adaptive);
    for record in [&node_local, &interleave, &adaptive] {
        assert_eq!(record.checksum_ok, Some(true));
        assert!(record.report.total_promoted_bytes() > 0);
    }
    let better_static = node_local
        .report
        .promoted_bytes_remote()
        .min(interleave.report.promoted_bytes_remote());
    let adaptive_remote = adaptive.report.promoted_bytes_remote();
    assert!(
        adaptive_remote as f64 <= (better_static as f64) * 1.1 + 0.5,
        "adaptive must stay within 1.1× of the better static policy's remote \
         bytes (adaptive {adaptive_remote} vs better static {better_static})"
    );
    assert!(adaptive.report.placement_switches() >= 1);
}
