//! The `Experiment` front door, exercised over the workload programs:
//!
//! * a property test: any configuration *accepted by validation* runs to
//!   completion on **both** backends at tiny scale and produces a correct
//!   checksum — validation is the only gate between a builder chain and a
//!   successful run;
//! * rejected configurations fail with the matching typed [`ConfigError`],
//!   never a panic;
//! * the deprecated free-function shims (`run_workload`,
//!   `run_workload_on`) still work and agree with the `Experiment` they
//!   delegate to (the one compat test keeping them honest for their final
//!   PR cycle).

use mgc_heap::HeapConfig;
use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Backend, ConfigError, EnvOverrides};
use mgc_workloads::{churn, Scale, Workload};
use proptest::prelude::*;

/// The cheap programs the property test cycles through (tiny scale keeps
/// each run in the tens of milliseconds).
const PROGRAMS: [Workload; 3] = [Workload::Dmm, Workload::Raytracer, Workload::Quicksort];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn accepted_experiments_run_to_completion_on_both_backends(
        vprocs in 0usize..6,
        policy_index in 0usize..4,
        program_index in 0usize..3,
        small_heap in any::<u8>(),
    ) {
        let workload = PROGRAMS[program_index];
        let heap = if small_heap.is_multiple_of(2) {
            HeapConfig::default()
        } else {
            HeapConfig::small_for_tests()
        };
        let build = || {
            workload
                .experiment(Scale::tiny())
                .env_overrides(EnvOverrides::default())
                .topology(Topology::dual_node_test())
                .vprocs(vprocs)
                .policy(AllocPolicy::ALL[policy_index])
                .heap(heap)
        };
        match build().validate() {
            Err(err) => {
                // The dual-node test topology has 4 cores, so the only
                // rejectable dimension here is the vproc count.
                prop_assert!(
                    matches!(
                        err,
                        ConfigError::ZeroVprocs | ConfigError::VprocsExceedTopology { .. }
                    ),
                    "unexpected rejection: {err}"
                );
                prop_assert!(vprocs == 0 || vprocs > 4);
            }
            Ok(_) => {
                for backend in Backend::ALL {
                    let record = build()
                        .backend(backend)
                        .run()
                        .expect("validation already accepted this configuration");
                    prop_assert!(record.report.total_tasks() > 0, "{workload} ran no tasks");
                    prop_assert_eq!(
                        record.checksum_ok,
                        Some(true),
                        "{} produced a wrong checksum on {}",
                        workload,
                        backend
                    );
                }
            }
        }
    }
}

#[test]
fn every_config_error_is_reachable_from_the_builder() {
    let experiment = || {
        Workload::Dmm
            .experiment(Scale::tiny())
            .env_overrides(EnvOverrides::default())
            .topology(Topology::dual_node_test())
    };
    assert_eq!(
        experiment().vprocs(0).validate().unwrap_err(),
        ConfigError::ZeroVprocs
    );
    assert_eq!(
        experiment().vprocs(9).validate().unwrap_err(),
        ConfigError::VprocsExceedTopology {
            vprocs: 9,
            cores: 4
        }
    );
    let degenerate = experiment()
        .vprocs(1)
        .heap(HeapConfig {
            chunk_size_bytes: 0,
            ..HeapConfig::default()
        })
        .validate()
        .unwrap_err();
    assert!(matches!(
        degenerate,
        ConfigError::DegenerateHeap {
            field: "chunk_size_bytes",
            ..
        }
    ));
    let degenerate = experiment()
        .vprocs(1)
        .heap(HeapConfig {
            local_heap_bytes: 1,
            ..HeapConfig::default()
        })
        .validate()
        .unwrap_err();
    assert!(matches!(
        degenerate,
        ConfigError::DegenerateHeap {
            field: "local_heap_bytes",
            ..
        }
    ));
    assert_eq!(
        experiment()
            .vprocs(1)
            .quantum_ns(-1.0)
            .validate()
            .unwrap_err(),
        ConfigError::NonPositiveQuantum { quantum_ns: -1.0 }
    );
}

/// The one compat test exercising the deprecated shims for their final PR
/// cycle: they must still run and agree with the `Experiment` they now
/// delegate to.
#[test]
#[allow(deprecated)]
fn deprecated_shims_agree_with_the_experiment_front_door() {
    let topology = Topology::dual_node_test();
    let scale = Scale::tiny();

    let record = Workload::Dmm
        .experiment(scale)
        .backend(Backend::Simulated)
        .topology(topology.clone())
        .vprocs(2)
        .policy(AllocPolicy::Local)
        .run()
        .expect("the compat configuration is valid");

    let report =
        mgc_workloads::run_workload(&topology, 2, AllocPolicy::Local, Workload::Dmm, scale);
    assert_eq!(report.total_tasks(), record.report.total_tasks());
    assert_eq!(report.allocated_objects, record.report.allocated_objects);

    let (report_on, result_on) = mgc_workloads::run_workload_on(
        Backend::Simulated,
        &topology,
        2,
        AllocPolicy::Local,
        Workload::Dmm,
        scale,
    );
    assert_eq!(report_on.total_tasks(), record.report.total_tasks());
    assert_eq!(report_on.elapsed_ns, record.report.elapsed_ns);
    assert_eq!(result_on, record.result);

    let mut machine = mgc_workloads::machine_for(&topology, 2, AllocPolicy::Local);
    churn::spawn(&mut machine, churn::ChurnParams::small());
    machine.run();
    assert_eq!(
        churn::take_survivors(&mut machine),
        Some(churn::expected_survivors(churn::ChurnParams::small()))
    );

    let mut executor =
        mgc_workloads::executor_for(Backend::Threaded, &topology, 2, AllocPolicy::Local);
    Workload::Raytracer.spawn(&mut *executor, scale);
    let report = executor.run();
    assert!(report.wall_clock_ns.is_some());
}
