//! The `Experiment` front door, exercised over the workload programs:
//!
//! * a property test: any configuration *accepted by validation* runs to
//!   completion on **both** backends at tiny scale and produces a correct
//!   checksum — validation is the only gate between a builder chain and a
//!   successful run;
//! * rejected configurations fail with the matching typed [`ConfigError`],
//!   never a panic.

use mgc_heap::HeapConfig;
use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Backend, ConfigError, EnvOverrides};
use mgc_workloads::{Scale, Workload};
use proptest::prelude::*;

/// The cheap programs the property test cycles through (tiny scale keeps
/// each run in the tens of milliseconds).
const PROGRAMS: [Workload; 3] = [Workload::Dmm, Workload::Raytracer, Workload::Quicksort];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn accepted_experiments_run_to_completion_on_both_backends(
        vprocs in 0usize..6,
        policy_index in 0usize..4,
        program_index in 0usize..3,
        small_heap in any::<u8>(),
    ) {
        let workload = PROGRAMS[program_index];
        let heap = if small_heap.is_multiple_of(2) {
            HeapConfig::default()
        } else {
            HeapConfig::small_for_tests()
        };
        let build = || {
            workload
                .experiment(Scale::tiny())
                .env_overrides(EnvOverrides::default())
                .topology(Topology::dual_node_test())
                .vprocs(vprocs)
                .policy(AllocPolicy::ALL[policy_index])
                .heap(heap)
        };
        match build().validate() {
            Err(err) => {
                // The dual-node test topology has 4 cores, so the only
                // rejectable dimension here is the vproc count.
                prop_assert!(
                    matches!(
                        err,
                        ConfigError::ZeroVprocs | ConfigError::VprocsExceedTopology { .. }
                    ),
                    "unexpected rejection: {err}"
                );
                prop_assert!(vprocs == 0 || vprocs > 4);
            }
            Ok(_) => {
                for backend in Backend::ALL {
                    let record = build()
                        .backend(backend)
                        .run()
                        .expect("validation already accepted this configuration");
                    prop_assert!(record.report.total_tasks() > 0, "{workload} ran no tasks");
                    prop_assert_eq!(
                        record.checksum_ok,
                        Some(true),
                        "{} produced a wrong checksum on {}",
                        workload,
                        backend
                    );
                }
            }
        }
    }
}

#[test]
fn every_config_error_is_reachable_from_the_builder() {
    let experiment = || {
        Workload::Dmm
            .experiment(Scale::tiny())
            .env_overrides(EnvOverrides::default())
            .topology(Topology::dual_node_test())
    };
    assert_eq!(
        experiment().vprocs(0).validate().unwrap_err(),
        ConfigError::ZeroVprocs
    );
    assert_eq!(
        experiment().vprocs(9).validate().unwrap_err(),
        ConfigError::VprocsExceedTopology {
            vprocs: 9,
            cores: 4
        }
    );
    let degenerate = experiment()
        .vprocs(1)
        .heap(HeapConfig {
            chunk_size_bytes: 0,
            ..HeapConfig::default()
        })
        .validate()
        .unwrap_err();
    assert!(matches!(
        degenerate,
        ConfigError::DegenerateHeap {
            field: "chunk_size_bytes",
            ..
        }
    ));
    let degenerate = experiment()
        .vprocs(1)
        .heap(HeapConfig {
            local_heap_bytes: 1,
            ..HeapConfig::default()
        })
        .validate()
        .unwrap_err();
    assert!(matches!(
        degenerate,
        ConfigError::DegenerateHeap {
            field: "local_heap_bytes",
            ..
        }
    ));
    assert_eq!(
        experiment()
            .vprocs(1)
            .quantum_ns(-1.0)
            .validate()
            .unwrap_err(),
        ConfigError::NonPositiveQuantum { quantum_ns: -1.0 }
    );
}
