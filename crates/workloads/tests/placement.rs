//! NUMA placement-policy behaviour over the real workloads.
//!
//! Covers the acceptance criterion of the NUMA-awareness PR — Barnes-Hut
//! must promote strictly fewer remote-node bytes under `NodeLocal` than
//! under `Interleave` — plus the placement edge cases: a single-node
//! topology (everything is local by construction), vproc counts that do not
//! divide evenly across nodes, and checksum invariance across every
//! placement policy on both backends.

use mgc_heap::HeapConfig;
use mgc_numa::{NodeId, PlacementPolicy, Topology, TopologyBuilder};
use mgc_runtime::{Backend, EnvOverrides, RunRecord};
use mgc_workloads::{Scale, Workload};

/// A single-node machine with four cores: every address is node-local.
fn single_node_topology() -> Topology {
    TopologyBuilder::new("test-single-node")
        .packages(1)
        .nodes_per_package(1)
        .cores_per_node(4)
        .local_bandwidth_gbps(20.0)
        .same_package_bandwidth_gbps(20.0)
        .cross_package_bandwidth_gbps(20.0)
        .build()
        .expect("the single-node test topology is valid")
}

fn run(
    workload: Workload,
    backend: Backend,
    topology: Topology,
    vprocs: usize,
    placement: PlacementPolicy,
) -> RunRecord {
    workload
        .experiment(Scale::tiny())
        .env_overrides(EnvOverrides::default())
        .backend(backend)
        .topology(topology)
        .vprocs(vprocs)
        .placement(placement)
        .run()
        .expect("the placement test configurations are valid")
}

/// Like [`run`], but with the small test heap (4 KiB chunks) so a run
/// performs many chunk leases — which is what makes the interleave cursor's
/// node alternation observable.
fn run_small_chunks(workload: Workload, vprocs: usize, placement: PlacementPolicy) -> RunRecord {
    workload
        .experiment(Scale::tiny())
        .env_overrides(EnvOverrides::default())
        .backend(Backend::Threaded)
        .topology(Topology::dual_node_test())
        .vprocs(vprocs)
        .heap(HeapConfig::small_for_tests())
        .placement(placement)
        .run()
        .expect("the placement test configurations are valid")
}

/// The acceptance criterion: on the threaded backend Barnes-Hut promotes
/// strictly fewer remote-node bytes under `NodeLocal` than under
/// `Interleave`.
///
/// The strict comparison runs at one vproc with small (4 KiB) chunks, where
/// it is fully deterministic: the single worker's promotion leases strictly
/// alternate nodes under `Interleave` (≈ half of Barnes-Hut's ~64 chunk
/// leases land on the remote node), while `NodeLocal` leases every chunk on
/// the consumer's node and promotes zero remote bytes.
#[test]
fn barnes_hut_node_local_beats_interleave_on_remote_bytes() {
    let node_local = run_small_chunks(Workload::BarnesHut, 1, PlacementPolicy::NodeLocal);
    let interleave = run_small_chunks(Workload::BarnesHut, 1, PlacementPolicy::Interleave);
    for record in [&node_local, &interleave] {
        assert_ne!(record.checksum_ok, Some(false), "wrong checksum");
        assert!(
            record.report.total_promoted_bytes() > 0,
            "Barnes-Hut must promote (it publishes per-block results)"
        );
    }
    let local_remote = node_local.report.promoted_bytes_remote();
    let interleave_remote = interleave.report.promoted_bytes_remote();
    assert_eq!(
        local_remote, 0,
        "NodeLocal leases every chunk on the consumer's node, so nothing is remote"
    );
    assert!(
        local_remote < interleave_remote,
        "NodeLocal must promote strictly fewer remote bytes than Interleave \
         (node-local {local_remote} vs interleave {interleave_remote})"
    );
    // The split accounts for every promoted byte — explicit (steal/publish)
    // promotions and major-collection promotions alike.
    assert_eq!(
        interleave.report.promoted_bytes_local() + interleave_remote,
        interleave.report.total_promoted_bytes(),
        "local + remote must cover exactly the promoted bytes"
    );
}

/// The same invariant holds with real parallelism: at 4 vprocs `NodeLocal`
/// still promotes zero remote bytes (steal handoffs lease from the thief's
/// node; publications from the promoting worker's own node), so it can never
/// do worse than `Interleave`.
#[test]
fn barnes_hut_node_local_is_all_local_at_four_vprocs() {
    let node_local = run_small_chunks(Workload::BarnesHut, 4, PlacementPolicy::NodeLocal);
    assert_ne!(node_local.checksum_ok, Some(false), "wrong checksum");
    assert!(node_local.report.total_promoted_bytes() > 0);
    assert_eq!(
        node_local.report.promoted_bytes_remote(),
        0,
        "NodeLocal placement must keep every promoted byte on its consumer's node"
    );
    let interleave = run_small_chunks(Workload::BarnesHut, 4, PlacementPolicy::Interleave);
    assert!(
        node_local.report.promoted_bytes_remote() <= interleave.report.promoted_bytes_remote(),
        "NodeLocal can never promote more remote bytes than Interleave"
    );
}

/// On a single-node topology every placement policy degenerates to the same
/// thing: all promoted bytes are local, and no steal can cross a node.
#[test]
fn single_node_topology_has_zero_remote_bytes_under_every_placement() {
    for placement in PlacementPolicy::ALL {
        let record = run(
            Workload::Quicksort,
            Backend::Threaded,
            single_node_topology(),
            4,
            placement,
        );
        assert_ne!(record.checksum_ok, Some(false), "{placement}: bad checksum");
        assert_eq!(
            record.report.promoted_bytes_remote(),
            0,
            "{placement}: a single-node machine has nowhere remote to promote to"
        );
        assert_eq!(
            record.report.steals_cross_node(),
            0,
            "{placement}: a single-node machine has no cross-node victims"
        );
        assert_eq!(
            record.report.total_steals(),
            record.report.steals_same_node() + record.report.steals_cross_node(),
            "{placement}: every steal is classified exactly once"
        );
    }
}

/// Three vprocs on a two-node topology: the assignment cannot be even. The
/// run must still complete correctly, with the workers spread over both
/// nodes (two on one, one on the other) and the steal classification
/// consistent.
#[test]
fn vprocs_not_divisible_across_nodes_run_correctly() {
    let topology = Topology::dual_node_test();
    // The sparse core assignment puts vprocs 0/2 on node 0 and vproc 1 on
    // node 1 (round-robin across nodes).
    let cores = topology.spread_cores(3);
    let nodes: Vec<NodeId> = cores.iter().map(|&c| topology.node_of_core(c)).collect();
    let distinct: std::collections::HashSet<_> = nodes.iter().collect();
    assert_eq!(distinct.len(), 2, "three vprocs must span both nodes");

    for backend in Backend::ALL {
        let record = run(
            Workload::Dmm,
            backend,
            topology.clone(),
            3,
            PlacementPolicy::NodeLocal,
        );
        assert_eq!(
            record.checksum_ok,
            Some(true),
            "{backend}: wrong checksum at an odd vproc count"
        );
        assert_eq!(record.report.per_vproc.len(), 3);
        assert_eq!(
            record.report.total_steals(),
            record.report.steals_same_node() + record.report.steals_cross_node(),
            "{backend}: steal locality classification must partition the steals"
        );
    }
}

/// Placement policy moves memory around; it must never change what a
/// program computes. Every policy, both backends, same checksum.
#[test]
fn placement_policy_never_changes_checksums() {
    for workload in [Workload::Dmm, Workload::Raytracer] {
        let mut checksums = Vec::new();
        for backend in Backend::ALL {
            for placement in PlacementPolicy::ALL {
                let record = run(workload, backend, Topology::dual_node_test(), 4, placement);
                assert_eq!(
                    record.checksum_ok,
                    Some(true),
                    "{workload} on {backend} under {placement}: wrong checksum"
                );
                let (word, is_ptr) = record.result.expect("a checksum is produced");
                assert!(!is_ptr);
                checksums.push(word);
            }
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "{workload}: checksums diverge across backend × placement ({checksums:x?})"
        );
    }
}
