//! Quantifies the lazy promotion-on-steal win on the threaded backend.
//!
//! The `eager_publication` ablation knob reproduces the pre-lazy-promotion
//! behaviour (every deque push promotes the task's whole reachable graph —
//! Barnes-Hut published its entire tree once per iteration), so these tests
//! pin the acceptance criterion of the refactor: promotion volume must be
//! proportional to *steals*, not to *spawns*.
//!
//! `barnes_hut_runs_threaded_at_four_vprocs` doubles as the CI
//! `threaded-smoke` canary: the workload that used to publish its whole tree
//! must finish promptly on 4 OS threads (the job-level timeout turns a
//! deadlock or a promotion storm into a fast failure).

use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{EnvOverrides, GcConfig, MachineConfig, RunReport, ThreadedMachine};
use mgc_workloads::{barnes_hut, Scale, Workload};

fn threaded_vprocs() -> usize {
    EnvOverrides::capture().vprocs.unwrap_or(4)
}

fn run_barnes_hut(vprocs: usize, eager: bool) -> RunReport {
    let mut config = MachineConfig::new(Topology::dual_node_test(), vprocs)
        .with_policy(AllocPolicy::Local)
        .with_gc(GcConfig {
            eager_publication: eager,
            ..GcConfig::default()
        });
    config.quantum_ns = 25_000.0;
    let mut machine = ThreadedMachine::new(config);
    Workload::BarnesHut.spawn(&mut machine, Scale::tiny());
    let report = machine.run();
    assert!(
        barnes_hut::take_checksum(&mut machine).is_some(),
        "the run must produce a checksum"
    );
    report
}

/// The acceptance criterion of the lazy-promotion refactor: on the threaded
/// backend Barnes-Hut promotes **at least 50% fewer bytes** than under the
/// eager promote-at-publication scheme of PR 2. At one vproc nothing is
/// ever stolen, so this is deterministic: the eager run promotes the whole
/// tree every iteration, the lazy run only publishes the per-block result
/// leaves.
#[test]
fn lazy_promotion_halves_barnes_hut_promoted_bytes() {
    let eager = run_barnes_hut(1, true);
    let lazy = run_barnes_hut(1, false);
    assert_eq!(
        eager.total_tasks(),
        lazy.total_tasks(),
        "the fork tree is scheduling-independent"
    );
    let eager_bytes = eager.total_promoted_bytes();
    let lazy_bytes = lazy.total_promoted_bytes();
    println!("barnes-hut promoted bytes: eager {eager_bytes}, lazy {lazy_bytes}");
    assert!(
        lazy_bytes * 2 <= eager_bytes,
        "lazy promotion must at least halve Barnes-Hut's promoted bytes \
         (eager {eager_bytes} vs lazy {lazy_bytes})"
    );
    assert_eq!(
        lazy.promotions_at_steal(),
        0,
        "a single-vproc run steals nothing, so nothing is promoted at steal"
    );
}

/// The CI threaded-smoke canary: Barnes-Hut at `MGC_VPROCS` (4 in CI) OS
/// threads, with steal-driven promotion accounted for.
#[test]
fn barnes_hut_runs_threaded_at_four_vprocs() {
    let vprocs = threaded_vprocs();
    let report = run_barnes_hut(vprocs, false);
    assert!(report.wall_clock_ns.is_some());
    if vprocs > 1 && report.total_steals() > 0 {
        // Whatever was stolen was promoted at steal time; the counters must
        // be consistent with each other.
        assert!(
            report.promotions_at_steal() <= report.total_steals() * 2,
            "per-steal promotion ops are bounded by the stolen tasks' roots \
             (steals {}, promotions at steal {})",
            report.total_steals(),
            report.promotions_at_steal()
        );
    }
}

/// Promotion volume on the threaded backend is bounded by the eager
/// publication volume at every vproc count, not just one.
#[test]
fn lazy_never_promotes_more_than_eager_for_barnes_hut() {
    let vprocs = threaded_vprocs();
    let eager = run_barnes_hut(vprocs, true);
    let lazy = run_barnes_hut(vprocs, false);
    // `promotion_bytes` counts explicit promotions (steal handoffs and
    // publications); under eager publication every spawned graph is
    // promoted, so the lazy volume can never exceed it. Scheduling noise
    // affects *which* tasks are stolen, never the bound.
    assert!(
        lazy.gc.promotion_bytes <= eager.gc.promotion_bytes,
        "lazy promotion volume ({}) exceeded the eager-publication volume ({})",
        lazy.gc.promotion_bytes,
        eager.gc.promotion_bytes
    );
}
