//! Bounded-pause properties: with a pause budget set, global collections
//! run as increments and the recorded pauses respect the budget — exactly
//! on the simulated backend (virtual time is sliced into `ceil(cost /
//! budget)` equal increments), and within a documented slack on the
//! threaded backend (each real increment also pays for an unbudgeted local
//! ramp-down, root re-evacuation, and barrier waits, and a loaded CI
//! runner adds scheduling noise on top).
//!
//! Budgeting must never change *what* a run computes: every workload's
//! checksum has to come out identical with and without a budget, on both
//! backends.

use mgc_heap::HeapConfig;
use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Backend, EnvOverrides, Experiment, GcConfig, RunRecord};
use mgc_workloads::{churn, Scale, Workload};

/// The budget the bounded runs use, in microseconds.
const BUDGET_US: u64 = 200;

/// The documented slack for the threaded bound: one increment may overrun
/// the budget by the unbudgeted ramp-down and root-evacuation work (a few
/// multiples of the budget at test scale) plus an absolute allowance for
/// barrier waits and OS scheduling on an oversubscribed CI runner.
const THREADED_SLACK_FACTOR: f64 = 25.0;
const THREADED_SLACK_NS: f64 = 250e6;

fn run(workload: Workload, backend: Backend, vprocs: usize, budget_us: Option<u64>) -> RunRecord {
    let mut experiment = workload
        .experiment(Scale::tiny())
        .env_overrides(EnvOverrides::default())
        .backend(backend)
        .topology(Topology::dual_node_test())
        .vprocs(vprocs)
        .policy(AllocPolicy::Local);
    if let Some(us) = budget_us {
        experiment = experiment.gc_pause_budget(us);
    }
    experiment
        .run()
        .expect("the pause-budget configurations are valid")
}

/// Churn with the small-for-tests heap and collector geometry and a
/// survivor-heavy parameterisation: the survivors outgrow the tiny global
/// threshold, so the run crosses the global-collection trigger many times —
/// the pause series the budget bounds.
fn run_churn(backend: Backend, vprocs: usize, budget_us: Option<u64>) -> RunRecord {
    let params = churn::ChurnParams {
        objects_per_worker: 4_000,
        object_words: 8,
        survive_every: 4,
        workers: 4,
    };
    let mut experiment = Experiment::new(churn::Churn::new(params))
        .env_overrides(EnvOverrides::default())
        .backend(backend)
        .topology(Topology::dual_node_test())
        .vprocs(vprocs)
        .heap(HeapConfig::small_for_tests())
        .gc(GcConfig::small_for_tests())
        .policy(AllocPolicy::Local);
    if let Some(us) = budget_us {
        experiment = experiment.gc_pause_budget(us);
    }
    experiment
        .run()
        .expect("the churn pause-budget configurations are valid")
}

#[test]
fn simulated_global_pauses_never_exceed_the_budget() {
    let record = run_churn(Backend::Simulated, 2, Some(BUDGET_US));
    let globals = record.report.global_pause_stats();
    assert!(
        globals.count > 0,
        "churn must trigger global collections for the bound to mean anything"
    );
    let budget_ns = BUDGET_US as f64 * 1e3;
    assert!(
        globals.max_ns <= budget_ns + 1e-6,
        "simulated increments are exact slices: max {} ns must stay under the {} ns budget",
        globals.max_ns,
        budget_ns
    );
    assert_eq!(record.checksum_ok, Some(true));
}

#[test]
fn simulated_budget_slicing_preserves_total_virtual_time() {
    let unbounded = run_churn(Backend::Simulated, 2, None);
    let budgeted = run_churn(Backend::Simulated, 2, Some(BUDGET_US));
    // Slicing a collection into increments redistributes when the pauses
    // are recorded, never how much total collector time is charged.
    assert_eq!(
        unbounded.report.elapsed_ns, budgeted.report.elapsed_ns,
        "budgeting must not change the modelled run time"
    );
    assert!(
        budgeted.report.global_pause_stats().count >= unbounded.report.global_pause_stats().count,
        "a budget can only split pauses, not merge them"
    );
}

#[test]
fn threaded_global_pauses_respect_the_budget_within_slack() {
    let record = run_churn(Backend::Threaded, 2, Some(BUDGET_US));
    let globals = record.report.global_pause_stats();
    assert!(
        globals.count > 0,
        "churn must trigger global collections for the bound to mean anything"
    );
    let budget_ns = BUDGET_US as f64 * 1e3;
    let bound = budget_ns * THREADED_SLACK_FACTOR + THREADED_SLACK_NS;
    assert!(
        globals.max_ns <= bound,
        "threaded max global pause {} ns exceeds the documented slack bound {} ns \
         (budget {} ns)",
        globals.max_ns,
        bound,
        budget_ns
    );
    // Every collection records at least one increment per participant.
    assert!(
        globals.count >= record.report.gc.global_collections,
        "fewer global pause records ({}) than counted participations ({})",
        globals.count,
        record.report.gc.global_collections
    );
    assert_eq!(record.checksum_ok, Some(true));
}

#[test]
fn budgeted_runs_compute_the_same_checksums_as_unbounded() {
    for workload in Workload::FIGURES {
        for (backend, vprocs) in [(Backend::Simulated, 2), (Backend::Threaded, 2)] {
            let unbounded = run(workload, backend, vprocs, None);
            let budgeted = run(workload, backend, vprocs, Some(BUDGET_US));
            assert_eq!(
                budgeted.checksum_ok,
                Some(true),
                "{workload} on {backend}: the budgeted run must verify its checksum"
            );
            assert_eq!(
                unbounded.result.map(|(word, _)| word),
                budgeted.result.map(|(word, _)| word),
                "{workload} on {backend}: budgeting changed the computed result"
            );
        }
    }
}
