//! Cross-backend equivalence: the simulated and the threaded executor must
//! agree on every deterministic invariant of every workload.
//!
//! What is deterministic across backends (and vproc counts):
//!
//! * the **workload checksum** — every benchmark folds its result in child
//!   order, so even floating-point sums are bit-stable;
//! * the **task count** — the fork tree is a pure function of the input;
//! * **total nursery allocations** — what a workload allocates depends only
//!   on its input, never on scheduling.
//!
//! What is not: promotion volume (both backends promote lazily — on steal
//! and on publication to machine-global structures — but *which* tasks are
//! stolen depends on real scheduling on the threaded backend) and therefore
//! the number of global collections — those are compared within a generous
//! tolerance only.
//!
//! Both runs go through the [`Experiment`] front door with an explicit
//! `backend(..)`, which pins the backend regardless of `MGC_BACKEND`.

use mgc_heap::word_to_f64;
use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Backend, EnvOverrides, Experiment, RunRecord};
use mgc_workloads::{churn, Scale, Workload};

/// Thread count for the threaded backend; override with `MGC_VPROCS` (the
/// CI threaded-smoke job runs with `MGC_VPROCS=4`). Clamped to the
/// dual-node test topology's core count, since `Experiment` validation
/// rejects oversubscription.
fn threaded_vprocs() -> usize {
    EnvOverrides::capture()
        .vprocs
        .unwrap_or(4)
        .min(Topology::dual_node_test().num_cores())
}

fn run_on(backend: Backend, vprocs: usize, workload: Workload, scale: Scale) -> RunRecord {
    workload
        .experiment(scale)
        .backend(backend)
        .topology(Topology::dual_node_test())
        .vprocs(vprocs)
        .policy(AllocPolicy::Local)
        .run()
        .expect("the equivalence configurations are valid")
}

fn checksums_agree(workload: Workload, sim: u64, threaded: u64) -> bool {
    if sim == threaded {
        return true;
    }
    // Integer checksums must be bit-identical: reinterpreting differing
    // integers as f64 bit patterns would yield denormals whose difference
    // always slips under a relative tolerance.
    if matches!(workload, Workload::Quicksort | Workload::Churn) {
        return false;
    }
    // Float checksums should be bit-identical too (summation happens in
    // child order on both backends), but keep the diagnostic gentle if a
    // summation order ever changes. The magnitude guard rejects denormal
    // bit patterns that are really disguised integers.
    let a = word_to_f64(sim);
    let b = word_to_f64(threaded);
    a.is_finite() && b.is_finite() && a.abs() > 1e-300 && (a - b).abs() <= 1e-9 * a.abs().max(1.0)
}

#[test]
fn backends_agree_on_deterministic_invariants_for_every_workload() {
    let scale = Scale::tiny();
    let vprocs = threaded_vprocs();
    for workload in Workload::FIGURES {
        let sim = run_on(Backend::Simulated, 2, workload, scale);
        let threaded = run_on(Backend::Threaded, vprocs, workload, scale);

        let (sim_word, sim_is_ptr) = sim.result.expect("simulated run produces a checksum");
        let (thr_word, thr_is_ptr) = threaded.result.expect("threaded run produces a checksum");
        assert_eq!(sim_is_ptr, thr_is_ptr, "{workload}: result kinds differ");
        assert!(
            checksums_agree(workload, sim_word, thr_word),
            "{workload}: checksums diverge (simulated {sim_word:#x} vs threaded {thr_word:#x})"
        );
        // Every figure workload computes for real and declares an expected
        // checksum, so both backends must positively verify the math —
        // `None` would mean the reference silently stopped being checked.
        assert_eq!(
            sim.checksum_ok,
            Some(true),
            "{workload}: simulated run must verify the real computation"
        );
        assert_eq!(
            threaded.checksum_ok,
            Some(true),
            "{workload}: threaded run must verify the real computation"
        );

        assert_eq!(
            sim.report.total_tasks(),
            threaded.report.total_tasks(),
            "{workload}: task trees diverge"
        );
        assert_eq!(
            sim.report.allocated_objects, threaded.report.allocated_objects,
            "{workload}: allocation counts diverge"
        );
        assert_eq!(
            sim.report.allocated_words, threaded.report.allocated_words,
            "{workload}: allocation volumes diverge"
        );

        // The threaded backend promotes stolen work at handoff and
        // published data (results, continuations, messages) at publication.
        // Under lazy promotion-on-steal a threaded run where no task is
        // actually stolen may legitimately promote *nothing* even when the
        // simulated model (whose scheduler steals deterministically) does —
        // that is the point of the design. What must always hold is the
        // internal consistency of the steal-side accounting.
        if threaded.report.total_steals() == 0 {
            assert_eq!(
                threaded.report.promotions_at_steal(),
                0,
                "{workload}: steal-driven promotions without any steal"
            );
        }
        if threaded.report.promotions_at_steal() > 0 {
            assert!(
                threaded.report.total_steals() > 0,
                "{workload}: promotion attributed to steals that never happened"
            );
        }

        // Global collections depend on promotion volume; require the two
        // backends to be within a generous factor of each other (per vproc,
        // since each participant counts the collection once).
        let sim_globals = sim.report.gc.global_collections / sim.report.vprocs as u64;
        let thr_globals = threaded.report.gc.global_collections / threaded.report.vprocs as u64;
        let bound = |x: u64| 5 * x + 5;
        assert!(
            sim_globals <= bound(thr_globals) && thr_globals <= bound(sim_globals),
            "{workload}: global collection counts diverge wildly \
             (simulated {sim_globals} vs threaded {thr_globals} per vproc)"
        );
    }
}

#[test]
fn churn_survivors_are_identical_across_backends() {
    let params = churn::ChurnParams::small();
    let expected = churn::expected_checksum_value(params);

    for (backend, vprocs) in [
        (Backend::Simulated, 2),
        (Backend::Threaded, threaded_vprocs()),
    ] {
        let record = Experiment::new(churn::Churn::new(params))
            .backend(backend)
            .topology(Topology::dual_node_test())
            .vprocs(vprocs)
            .policy(AllocPolicy::Local)
            .run()
            .expect("the churn configurations are valid");
        let (word, is_ptr) = record.result.expect("churn produces a count");
        assert!(!is_ptr);
        assert_eq!(mgc_heap::word_to_i64(word), expected, "{backend}");
        assert_eq!(record.checksum_ok, Some(true), "{backend}");
    }
}
