//! The Raytracer benchmark (paper §4.1: a 512 × 512 image rendered in
//! parallel as a two-dimensional sequence, no acceleration structures).
//!
//! Each parallel block renders a band of image rows against a small fixed
//! sphere scene, allocating one rope leaf per row — the image rows are the
//! only allocation, and no data is shared between blocks, which is why the
//! paper sees near-ideal scaling.

use crate::scale::Scale;
use mgc_heap::{f64_to_word, word_to_f64};
use mgc_runtime::{Checksum, Executor, Program, TaskResult, TaskSpec};
use serde::{Deserialize, Serialize};

/// Image edge length at the benchmark preset. Tracing a pixel is cheap, so
/// the benchmark renders *above* the paper's 512 × 512 to give the run
/// enough wall-clock for speedup to be measurable.
pub const BENCH_IMAGE_SIZE: usize = 1536;

/// Image edge length at the given scale (the paper renders 512 × 512).
pub fn image_size(scale: Scale) -> usize {
    if scale.is_bench() {
        return BENCH_IMAGE_SIZE;
    }
    scale.apply(512, 64)
}

/// Parameters of the raytracer benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaytracerParams {
    /// Edge length of the square image (the paper renders 512 × 512).
    pub image_size: usize,
}

impl RaytracerParams {
    /// The paper's input shrunk by `scale` (with a floor of 64).
    pub fn at_scale(scale: Scale) -> Self {
        RaytracerParams {
            image_size: image_size(scale),
        }
    }
}

impl Default for RaytracerParams {
    fn default() -> Self {
        RaytracerParams::at_scale(Scale::default())
    }
}

/// The raytracer as a [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct Raytracer {
    /// The run's parameters.
    pub params: RaytracerParams,
}

impl Raytracer {
    /// A raytracer program with explicit parameters.
    pub fn new(params: RaytracerParams) -> Self {
        Raytracer { params }
    }

    /// A raytracer program at the paper's input scaled by `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        Raytracer::new(RaytracerParams::at_scale(scale))
    }
}

impl Program for Raytracer {
    fn name(&self) -> &str {
        "Raytracer"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        spawn_with(machine, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::F64(checksum_for(self.params)))
    }

    fn params_json(&self) -> String {
        format!("{{\"image_size\": {}}}", self.params.image_size)
    }
}

/// The scene: spheres as `(cx, cy, cz, radius, reflectance)`.
const SPHERES: [(f64, f64, f64, f64, f64); 5] = [
    (0.0, 0.0, 3.0, 1.0, 0.9),
    (1.5, 0.5, 4.0, 0.7, 0.6),
    (-1.5, -0.3, 3.5, 0.8, 0.7),
    (0.3, 1.4, 5.0, 1.2, 0.4),
    (-0.8, 1.0, 2.5, 0.4, 0.95),
];

/// Traces one primary ray and returns its grey-scale intensity.
fn trace(px: f64, py: f64) -> f64 {
    // Camera at the origin looking down +z; the pixel determines the ray
    // direction.
    let dir = (px, py, 1.0);
    let len = (dir.0 * dir.0 + dir.1 * dir.1 + 1.0).sqrt();
    let d = (dir.0 / len, dir.1 / len, dir.2 / len);
    let mut best_t = f64::INFINITY;
    let mut best_shade = 0.05; // background
    for &(cx, cy, cz, r, refl) in &SPHERES {
        // Ray-sphere intersection.
        let oc = (-cx, -cy, -cz);
        let b = 2.0 * (oc.0 * d.0 + oc.1 * d.1 + oc.2 * d.2);
        let c = oc.0 * oc.0 + oc.1 * oc.1 + oc.2 * oc.2 - r * r;
        let disc = b * b - 4.0 * c;
        if disc < 0.0 {
            continue;
        }
        let t = (-b - disc.sqrt()) / 2.0;
        if t > 1e-6 && t < best_t {
            best_t = t;
            // Lambertian shading against a fixed light direction.
            let hit = (d.0 * t, d.1 * t, d.2 * t);
            let normal = ((hit.0 - cx) / r, (hit.1 - cy) / r, (hit.2 - cz) / r);
            let light = (0.577, 0.577, -0.577);
            let diffuse = (normal.0 * light.0 + normal.1 * light.1 + normal.2 * light.2).max(0.0);
            best_shade = 0.1 + 0.9 * diffuse * refl;
        }
    }
    best_shade
}

/// Sequentially computed checksum of the whole image, for validation.
pub fn reference_checksum(scale: Scale) -> f64 {
    checksum_for(RaytracerParams::at_scale(scale))
}

/// The sequential reference checksum for explicit parameters.
fn checksum_for(params: RaytracerParams) -> f64 {
    let size = params.image_size;
    let mut sum = 0.0;
    for y in 0..size {
        for x in 0..size {
            sum += trace(pixel_coord(x, size), pixel_coord(y, size));
        }
    }
    sum
}

fn pixel_coord(index: usize, size: usize) -> f64 {
    (index as f64 / size as f64) * 2.0 - 1.0
}

/// Spawns the raytracer onto `machine` at the given scale; the root result
/// is the image checksum.
pub fn spawn(machine: &mut dyn Executor, scale: Scale) {
    spawn_with(machine, RaytracerParams::at_scale(scale));
}

/// Spawns the raytracer with explicit parameters.
pub fn spawn_with(machine: &mut dyn Executor, params: RaytracerParams) {
    let size = params.image_size;
    let blocks = 96.min(size);
    machine.spawn_root(TaskSpec::new("ray-root", move |ctx| {
        let rows_per_block = size.div_ceil(blocks);
        let mut children = Vec::new();
        for block in 0..blocks {
            let lo = block * rows_per_block;
            let hi = ((block + 1) * rows_per_block).min(size);
            if lo >= hi {
                continue;
            }
            children.push((
                TaskSpec::new("ray-band", move |ctx| {
                    let mut checksum = 0.0;
                    for y in lo..hi {
                        let mark = ctx.root_mark();
                        let row: Vec<f64> = (0..size)
                            .map(|x| trace(pixel_coord(x, size), pixel_coord(y, size)))
                            .collect();
                        // ~70 floating-point operations per pixel per sphere.
                        ctx.work((size * SPHERES.len() * 70) as u64);
                        let leaf = ctx.alloc_f64_slice(&row);
                        checksum += ctx.read_f64s(leaf).iter().sum::<f64>();
                        ctx.truncate_roots(mark);
                    }
                    TaskResult::Value(f64_to_word(checksum))
                }),
                vec![],
            ));
        }
        ctx.fork_join(
            children,
            TaskSpec::new("ray-sum", |ctx| {
                let total: f64 = (0..ctx.num_values()).map(|i| ctx.value_f64(i)).sum();
                TaskResult::Value(f64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
}

/// Reads the checksum produced by a finished raytracer run.
pub fn take_checksum(machine: &mut dyn Executor) -> Option<f64> {
    machine.take_result().map(|(word, _)| word_to_f64(word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig};

    #[test]
    fn parallel_image_matches_sequential_reference() {
        let scale = Scale::tiny();
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn(&mut machine, scale);
        machine.run();
        let parallel = take_checksum(&mut machine).expect("raytracer produces a checksum");
        let reference = reference_checksum(scale);
        assert!((parallel - reference).abs() < 1e-6 * reference.max(1.0));
    }

    #[test]
    fn rays_hit_something() {
        // The centre of the image looks straight at the first sphere.
        assert!(trace(0.0, 0.0) > 0.2);
        // A ray off to the side hits only the background.
        assert!(trace(-0.99, -0.99) <= 0.06);
    }

    #[test]
    fn centre_ray_shade_matches_the_hand_derived_value() {
        // The centre ray is d = (0, 0, 1). Sphere 1 (centre (0,0,3), r = 1)
        // is hit at t = 2 (b = -6, c = 8, disc = 4), normal (0,0,-1), so
        // diffuse = (0,0,-1)·(0.577,0.577,-0.577) = 0.577 and the shade is
        // 0.1 + 0.9·0.577·0.9. No other sphere lies on the axis.
        let expected = 0.1 + 0.9 * 0.577 * 0.9;
        assert!(
            (trace(0.0, 0.0) - expected).abs() < 1e-12,
            "{} vs {expected}",
            trace(0.0, 0.0)
        );
    }

    #[test]
    fn ray_through_fifth_sphere_centre_matches_the_geometric_solution() {
        // A ray aimed straight at sphere 5's centre (-0.8, 1.0, 2.5), r=0.4:
        // pixel (x/z, y/z) = (-0.32, 0.4). Through the centre, the hit is at
        // t = |C| - r and the surface normal is exactly -d, so diffuse =
        // 0.577·(d.z - d.x - d.y). Every other sphere misses this ray.
        let d_unnorm = (-0.32f64, 0.4f64, 1.0f64);
        let len = (d_unnorm.0 * d_unnorm.0 + d_unnorm.1 * d_unnorm.1 + 1.0).sqrt();
        let diffuse = 0.577 * (1.0 + 0.32 - 0.4) / len;
        let expected = 0.1 + 0.9 * diffuse * 0.95;
        assert!(
            (trace(-0.32, 0.4) - expected).abs() < 1e-9,
            "{} vs {expected}",
            trace(-0.32, 0.4)
        );
    }
}
