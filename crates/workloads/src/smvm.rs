//! Sparse-matrix × dense-vector multiplication (paper §4.1: a matrix of
//! 1,091,362 non-zeroes against a vector of 16,614 elements).
//!
//! The defining property of SMVM in the paper's evaluation is that the dense
//! vector is a *small amount of shared data* that every thread reads: with
//! the default local-allocation policy it ends up on a single node, whose
//! memory controller and incoming links saturate as threads are added
//! (§4.2), and the interleaved policy actually wins past ~24 threads (§4.3).
//! The matrix rows, by contrast, are generated and consumed locally by each
//! block.

use crate::rope::{build_f64_rope, LEAF_SIZE};
use crate::scale::Scale;
use mgc_heap::{f64_to_word, word_to_f64};
use mgc_runtime::{Checksum, Executor, Program, TaskResult, TaskSpec};
use serde::{Deserialize, Serialize};

/// Vector length at the benchmark preset. A row costs only a few dozen
/// flops, so the benchmark multiplies a matrix about 8× the paper's to
/// give the run enough wall-clock for speedup to be measurable.
pub const BENCH_VECTOR_LENGTH: usize = 131_072;

/// Length of the dense vector at the given scale (the paper uses 16,614).
pub fn vector_length(scale: Scale) -> usize {
    if scale.is_bench() {
        return BENCH_VECTOR_LENGTH;
    }
    scale.apply(16_614, 512)
}

/// Parameters of the SMVM benchmark. The matrix is square-ish: one row per
/// vector element, [`NNZ_PER_ROW`] non-zeroes per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmvmParams {
    /// Length of the shared dense vector (the paper uses 16,614).
    pub vector_length: usize,
}

impl SmvmParams {
    /// The paper's input shrunk by `scale` (with a floor of 512).
    pub fn at_scale(scale: Scale) -> Self {
        SmvmParams {
            vector_length: vector_length(scale),
        }
    }
}

impl Default for SmvmParams {
    fn default() -> Self {
        SmvmParams::at_scale(Scale::default())
    }
}

/// Sparse-matrix × dense-vector multiplication as a [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct Smvm {
    /// The run's parameters.
    pub params: SmvmParams,
}

impl Smvm {
    /// An SMVM program with explicit parameters.
    pub fn new(params: SmvmParams) -> Self {
        Smvm { params }
    }

    /// An SMVM program at the paper's input scaled by `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        Smvm::new(SmvmParams::at_scale(scale))
    }
}

impl Program for Smvm {
    fn name(&self) -> &str {
        "SMVM"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        spawn_with(machine, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::F64(checksum_for(self.params)))
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"vector_length\": {}, \"nnz_per_row\": {NNZ_PER_ROW}}}",
            self.params.vector_length
        )
    }
}

/// Number of matrix rows (square-ish matrix: one row per vector element).
pub fn num_rows(scale: Scale) -> usize {
    vector_length(scale)
}

/// Average non-zeroes per row, chosen so that the paper-scale matrix has
/// roughly 1,091,362 non-zero elements.
pub const NNZ_PER_ROW: usize = 66;

/// The dense vector's elements.
fn x_elem(i: usize) -> f64 {
    ((i % 29) as f64) * 0.125 - 1.0
}

/// The column index of the `k`-th non-zero of row `r`.
fn col_of(r: usize, k: usize, cols: usize) -> usize {
    // A cheap deterministic hash that scatters the non-zeroes.
    let mut h =
        (r as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ (k as u64).wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 29;
    (h % cols as u64) as usize
}

/// The value of the `k`-th non-zero of row `r`.
fn val_of(r: usize, k: usize) -> f64 {
    (((r * 31 + k * 17) % 23) as f64) * 0.2 - 2.0
}

/// Sequentially computed checksum of the product vector.
pub fn reference_checksum(scale: Scale) -> f64 {
    checksum_for(SmvmParams::at_scale(scale))
}

/// The sequential reference checksum for explicit parameters.
fn checksum_for(params: SmvmParams) -> f64 {
    let cols = params.vector_length;
    let rows = params.vector_length;
    let mut sum = 0.0;
    for r in 0..rows {
        let mut dot = 0.0;
        for k in 0..NNZ_PER_ROW {
            dot += val_of(r, k) * x_elem(col_of(r, k, cols));
        }
        sum += dot;
    }
    sum
}

/// Spawns the SMVM workload at the given scale; the root result is the
/// checksum of the product vector.
pub fn spawn(machine: &mut dyn Executor, scale: Scale) {
    spawn_with(machine, SmvmParams::at_scale(scale));
}

/// Spawns the SMVM workload with explicit parameters.
pub fn spawn_with(machine: &mut dyn Executor, params: SmvmParams) {
    let cols = params.vector_length;
    let rows = params.vector_length;
    let blocks = 96.min(rows);
    machine.spawn_root(TaskSpec::new("smvm-root", move |ctx| {
        // The shared dense vector, built once by the root task. When blocks
        // are stolen by other vprocs the rope is promoted to the global heap
        // — placed according to the machine's allocation policy — and every
        // block then streams it from wherever it landed.
        let x: Vec<f64> = (0..cols).map(x_elem).collect();
        let x_rope = build_f64_rope(ctx, &x);

        let rows_per_block = rows.div_ceil(blocks);
        let mut children = Vec::new();
        for block in 0..blocks {
            let lo = block * rows_per_block;
            let hi = ((block + 1) * rows_per_block).min(rows);
            if lo >= hi {
                continue;
            }
            children.push((
                TaskSpec::new("smvm-block", move |ctx| {
                    // Stream the shared vector once: every leaf read is
                    // charged to the node the vector physically lives on.
                    let x_rope = ctx.input(0);
                    let leaves = ctx.len(x_rope);
                    let mut x = Vec::with_capacity(leaves * LEAF_SIZE);
                    for i in 0..leaves {
                        let mark = ctx.root_mark();
                        let leaf = ctx
                            .read_ptr(x_rope, i)
                            .expect("vector leaves are never null");
                        x.extend(ctx.read_f64s(leaf));
                        ctx.truncate_roots(mark);
                    }

                    let mut checksum = 0.0;
                    let mut result = Vec::with_capacity(hi - lo);
                    for r in lo..hi {
                        let mut dot = 0.0;
                        for k in 0..NNZ_PER_ROW {
                            dot += val_of(r, k) * x[col_of(r, k, cols)];
                        }
                        result.push(dot);
                        checksum += dot;
                    }
                    ctx.work(((hi - lo) * NNZ_PER_ROW * 2) as u64);
                    // The block's slice of the product vector is allocated
                    // locally, like any other freshly computed value.
                    let mark = ctx.root_mark();
                    let _out = ctx.alloc_f64_slice(&result);
                    ctx.truncate_roots(mark);
                    TaskResult::Value(f64_to_word(checksum))
                }),
                vec![x_rope],
            ));
        }
        ctx.fork_join(
            children,
            TaskSpec::new("smvm-sum", |ctx| {
                let total: f64 = (0..ctx.num_values()).map(|i| ctx.value_f64(i)).sum();
                TaskResult::Value(f64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
}

/// Reads the checksum produced by a finished SMVM run.
pub fn take_checksum(machine: &mut dyn Executor) -> Option<f64> {
    machine.take_result().map(|(word, _)| word_to_f64(word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig};

    #[test]
    fn parallel_checksum_matches_sequential_reference() {
        let scale = Scale::tiny();
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn(&mut machine, scale);
        machine.run();
        let parallel = take_checksum(&mut machine).expect("smvm produces a checksum");
        let reference = reference_checksum(scale);
        assert!(
            (parallel - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "parallel {parallel} vs reference {reference}"
        );
    }

    #[test]
    fn paper_scale_matrix_has_about_a_million_nonzeroes() {
        let nnz = num_rows(Scale::paper()) * NNZ_PER_ROW;
        assert!((1_000_000..1_200_000).contains(&nnz), "nnz = {nnz}");
    }

    #[test]
    fn generators_match_hand_computed_values() {
        // x_elem: (i % 29)·0.125 − 1, exactly representable.
        assert_eq!(x_elem(0), -1.0);
        assert_eq!(x_elem(8), 0.0);
        assert_eq!(x_elem(28), 2.5);
        assert_eq!(x_elem(29), -1.0);
        // val_of: ((31r + 17k) % 23)·0.2 − 2, same expression as the code.
        assert_eq!(val_of(0, 0), -2.0);
        assert_eq!(val_of(1, 1), 2.0 * 0.2 - 2.0); // 48 % 23 = 2
        assert_eq!(val_of(2, 3), 21.0 * 0.2 - 2.0); // 113 % 23 = 21
    }

    #[test]
    fn column_indices_stay_in_range() {
        let cols = 1000;
        for r in 0..50 {
            for k in 0..NNZ_PER_ROW {
                assert!(col_of(r, k, cols) < cols);
            }
        }
    }
}
