//! The Quicksort benchmark (paper §4.1: 10,000,000 integers, after the NESL
//! formulation).
//!
//! The sequence is stored as a rope; each recursion level reads its input,
//! partitions it sequentially, builds the two sub-ropes, and forks the
//! recursive sorts. The sequential partition at the top of the recursion is
//! the reason the paper sees quicksort's speedup flatten on large machines
//! ("limited by its fork-join parallelism", §4.2).

use crate::rope::{build_i64_rope, read_i64_rope};
use crate::scale::Scale;
use mgc_heap::{i64_to_word, word_to_i64};
use mgc_runtime::{Checksum, Executor, Handle, Program, TaskCtx, TaskResult, TaskSpec};
use serde::{Deserialize, Serialize};

/// Input size at the benchmark preset: quicksort is the most
/// allocation-bound workload (every partition builds fresh ropes), so it
/// uses a smaller element count than the uniform factor would give.
pub const BENCH_ELEMENTS: usize = 250_000;

/// Number of integers to sort at the given scale (the paper sorts 10 M).
pub fn input_size(scale: Scale) -> usize {
    if scale.is_bench() {
        return BENCH_ELEMENTS;
    }
    scale.apply(10_000_000, 2_048)
}

/// Parameters of the quicksort benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuicksortParams {
    /// Number of integers to sort (the paper sorts 10,000,000).
    pub elements: usize,
}

impl QuicksortParams {
    /// The paper's input shrunk by `scale` (with a floor of 2,048).
    pub fn at_scale(scale: Scale) -> Self {
        QuicksortParams {
            elements: input_size(scale),
        }
    }
}

impl Default for QuicksortParams {
    fn default() -> Self {
        QuicksortParams::at_scale(Scale::default())
    }
}

/// Parallel quicksort as a [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct Quicksort {
    /// The run's parameters.
    pub params: QuicksortParams,
}

impl Quicksort {
    /// A quicksort program with explicit parameters.
    pub fn new(params: QuicksortParams) -> Self {
        Quicksort { params }
    }

    /// A quicksort program at the paper's input scaled by `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        Quicksort::new(QuicksortParams::at_scale(scale))
    }
}

impl Program for Quicksort {
    fn name(&self) -> &str {
        "Quicksort"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        spawn_with(machine, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        let mut sorted = generate_input(self.params.elements);
        sorted.sort_unstable();
        Some(Checksum::I64(positional_checksum(&sorted)))
    }

    fn params_json(&self) -> String {
        format!("{{\"elements\": {}}}", self.params.elements)
    }
}

/// Below this size a task sorts sequentially instead of forking.
const SEQUENTIAL_CUTOFF: usize = 4_096;

/// Deterministic pseudo-random input (xorshift), identical for every run.
pub fn generate_input(n: usize) -> Vec<i64> {
    let mut state = 0x2545F4914F6CDD1Du64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as i64 - 500_000
        })
        .collect()
}

fn sort_task(depth: usize) -> TaskSpec {
    TaskSpec::new("qsort", move |ctx| {
        let input = ctx.input(0);
        let values = read_i64_rope(ctx, input);
        if values.len() <= SEQUENTIAL_CUTOFF || depth > 24 {
            let mut sorted = values;
            sorted.sort_unstable();
            ctx.work((sorted.len() as u64).max(1) * 24);
            let out = build_i64_rope(ctx, &sorted);
            return TaskResult::Ptr(out);
        }
        // Median-of-three pivot, then a sequential partition — this is the
        // serial fraction that limits scalability.
        let pivot = {
            let a = values[0];
            let b = values[values.len() / 2];
            let c = values[values.len() - 1];
            a.max(b.min(c)).min(b.max(c))
        };
        ctx.work(values.len() as u64 * 4);
        let less: Vec<i64> = values.iter().copied().filter(|&v| v < pivot).collect();
        let equal: Vec<i64> = values.iter().copied().filter(|&v| v == pivot).collect();
        let greater: Vec<i64> = values.iter().copied().filter(|&v| v > pivot).collect();

        let less_rope = build_i64_rope_or_empty(ctx, &less);
        let greater_rope = build_i64_rope_or_empty(ctx, &greater);
        let equal_rope = build_i64_rope(ctx, &equal);

        let children = vec![
            (sort_task(depth + 1), vec![less_rope]),
            (sort_task(depth + 1), vec![greater_rope]),
        ];
        ctx.fork_join(
            children,
            TaskSpec::new("qsort-merge", |ctx| {
                // Inputs: [equal, sorted-less, sorted-greater]. Empty-side
                // sentinels (see `build_i64_rope_or_empty`) are dropped here,
                // so they never appear past one recursion level and the
                // merged rope is exactly the sorted subsequence.
                let equal = ctx.input(0);
                let sorted_less = ctx.input(1);
                let sorted_greater = ctx.input(2);
                let mut merged: Vec<i64> = read_i64_rope(ctx, sorted_less)
                    .into_iter()
                    .filter(|&v| v != i64::MIN)
                    .collect();
                merged.extend(read_i64_rope(ctx, equal));
                merged.extend(
                    read_i64_rope(ctx, sorted_greater)
                        .into_iter()
                        .filter(|&v| v != i64::MIN),
                );
                ctx.work(merged.len() as u64 * 2);
                let out = build_i64_rope(ctx, &merged);
                TaskResult::Ptr(out)
            }),
            &[equal_rope],
        );
        TaskResult::Unit
    })
}

/// Ropes must be non-empty, so an empty partition is represented by a
/// one-element `i64::MIN` sentinel (the generated input never produces that
/// value). The parent's merge filters sentinels back out, so they survive at
/// most one recursion level and never reach the final sequence.
fn build_i64_rope_or_empty(ctx: &mut TaskCtx<'_>, values: &[i64]) -> Handle {
    if values.is_empty() {
        build_i64_rope(ctx, &[i64::MIN])
    } else {
        build_i64_rope(ctx, values)
    }
}

/// A position-sensitive checksum of the sorted sequence: each element is
/// weighted by its position modulo a small cycle, so a sequence with the
/// right multiset in the wrong order (the failure a plain sum cannot see)
/// changes the value. All arithmetic wraps, identically on every backend.
pub fn positional_checksum(values: &[i64]) -> i64 {
    values.iter().enumerate().fold(0i64, |acc, (i, &v)| {
        acc.wrapping_add(v.wrapping_mul((i % 64) as i64 + 1))
    })
}

/// Spawns the quicksort workload at the given scale; the root result is the
/// position-weighted checksum of the sorted rope, so both the multiset and
/// the order of the output are verified.
pub fn spawn(machine: &mut dyn Executor, scale: Scale) {
    spawn_with(machine, QuicksortParams::at_scale(scale));
}

/// Spawns the quicksort workload with explicit parameters.
pub fn spawn_with(machine: &mut dyn Executor, params: QuicksortParams) {
    let n = params.elements;
    machine.spawn_root(TaskSpec::new("qsort-root", move |ctx| {
        let input = generate_input(n);
        let rope = build_i64_rope(ctx, &input);
        ctx.fork_join(
            vec![(sort_task(0), vec![rope])],
            TaskSpec::new("qsort-checksum", |ctx| {
                let sorted = ctx.input(0);
                let values = read_i64_rope(ctx, sorted);
                TaskResult::Value(i64_to_word(positional_checksum(&values)))
            }),
            &[],
        );
        TaskResult::Unit
    }));
}

/// Reads the checksum produced by a finished quicksort run.
pub fn take_checksum(machine: &mut dyn Executor) -> Option<i64> {
    machine.take_result().map(|(word, _)| word_to_i64(word))
}

/// The reference checksum: the positional checksum of the sequentially
/// sorted input.
pub fn reference_checksum(scale: Scale) -> i64 {
    let mut sorted = generate_input(input_size(scale));
    sorted.sort_unstable();
    positional_checksum(&sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig};

    #[test]
    fn sorting_produces_the_sorted_sequence() {
        let scale = Scale::tiny();
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn(&mut machine, scale);
        machine.run();
        assert_eq!(
            take_checksum(&mut machine),
            Some(reference_checksum(scale)),
            "the output must be the input values in sorted order"
        );
    }

    #[test]
    fn parallel_sort_crosses_the_fork_cutoff() {
        // Enough elements that the recursion forks (> SEQUENTIAL_CUTOFF),
        // exercising partition, sentinel filtering, and the merge path.
        let params = QuicksortParams {
            elements: SEQUENTIAL_CUTOFF * 4,
        };
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn_with(&mut machine, params);
        machine.run();
        let mut sorted = generate_input(params.elements);
        sorted.sort_unstable();
        assert_eq!(
            take_checksum(&mut machine),
            Some(positional_checksum(&sorted))
        );
    }

    #[test]
    fn positional_checksum_matches_hand_computed_8_elements() {
        // Positions 0..8 weight 1..9: 3·1 + 1·2 + 4·3 + 1·4 + 5·5 + 9·6 +
        // 2·7 + 6·8 = 162.
        assert_eq!(positional_checksum(&[3, 1, 4, 1, 5, 9, 2, 6]), 162);
        // Sorted order gives a different value: 1·1 + 1·2 + 2·3 + 3·4 +
        // 4·5 + 5·6 + 6·7 + 9·8 = 185 — order matters.
        assert_eq!(positional_checksum(&[1, 1, 2, 3, 4, 5, 6, 9]), 185);
    }

    #[test]
    fn generated_input_is_deterministic_and_unsorted() {
        let a = generate_input(1000);
        let b = generate_input(1000);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_ne!(a, sorted);
    }
}
