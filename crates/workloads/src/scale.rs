//! Workload scaling.
//!
//! The paper's inputs (§4.1) are sized for a 48-core, 128 GB machine; running
//! them at full size inside a discrete-event simulator is possible but slow,
//! so every workload accepts a [`Scale`] factor. `Scale::paper()` reproduces
//! the published input sizes; the benchmark harness defaults to a smaller
//! scale that preserves every qualitative behaviour (allocation rate, data
//! sharing pattern, sequential fractions).

use serde::{Deserialize, Serialize};

/// A multiplicative scale factor applied to workload input sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale(pub f64);

impl Scale {
    /// The paper's published input sizes.
    pub fn paper() -> Self {
        Scale(1.0)
    }

    /// Roughly 1/20 of the paper's sizes: the default for the figure
    /// harness.
    pub fn small() -> Self {
        Scale(0.05)
    }

    /// The CI benchmark preset. Unlike the other scales this is *not* a
    /// uniform shrink factor: the workloads' per-unit costs differ by four
    /// orders of magnitude, so each workload maps this preset to a
    /// hand-balanced input size (see the `bench` constants in each module)
    /// chosen so a single-vproc run takes roughly 50–500 ms on one core —
    /// large enough that real compute dominates scheduling and collection
    /// overhead (so speedup curves are meaningful), small enough that the
    /// full sweep fits a CI runner's time budget. Any size helper that is
    /// not explicitly balanced falls back to treating the preset as a
    /// uniform factor.
    pub fn bench() -> Self {
        Scale(0.02)
    }

    /// Whether this scale is the [`Scale::bench`] preset; workload size
    /// helpers use this to substitute their hand-balanced benchmark input.
    pub fn is_bench(&self) -> bool {
        *self == Scale::bench()
    }

    /// Very small inputs for unit tests.
    pub fn tiny() -> Self {
        Scale(0.004)
    }

    /// Scales a paper-sized quantity, with a floor so nothing degenerates to
    /// zero.
    pub fn apply(&self, paper_size: usize, min: usize) -> usize {
        ((paper_size as f64 * self.0).round() as usize).max(min)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_identity() {
        assert_eq!(Scale::paper().apply(400_000, 1), 400_000);
    }

    #[test]
    fn small_scale_shrinks_with_floor() {
        assert_eq!(Scale::small().apply(100, 32), 32);
        assert_eq!(Scale::tiny().apply(10_000_000, 1), 40_000);
    }

    #[test]
    fn default_is_small() {
        assert_eq!(Scale::default(), Scale::small());
    }
}
