//! Rope-style parallel arrays.
//!
//! Manticore represents parallel arrays as ropes: trees whose leaves are
//! modest contiguous chunks. That representation is what makes large arrays
//! compatible with a nursery-sized local heap — no single object ever
//! exceeds a few kilobytes — and it is how the workloads here store their
//! matrices, particle sets, and integer sequences.
//!
//! For simplicity the reproduction uses a two-level rope: a spine vector of
//! pointers to raw leaf objects.

use mgc_heap::{f64_to_word, i64_to_word, word_to_f64, word_to_i64, Word};
use mgc_runtime::{Handle, TaskCtx};

/// Number of elements per rope leaf.
pub const LEAF_SIZE: usize = 256;

/// Builds a rope of `f64` values, returning a handle to its spine.
///
/// # Panics
///
/// Panics if `values` is empty (ropes always have at least one leaf).
pub fn build_f64_rope(ctx: &mut TaskCtx<'_>, values: &[f64]) -> Handle {
    assert!(!values.is_empty(), "ropes must hold at least one element");
    let words: Vec<Word> = values.iter().map(|&v| f64_to_word(v)).collect();
    build_word_rope(ctx, &words)
}

/// Builds a rope of `i64` values, returning a handle to its spine.
///
/// # Panics
///
/// Panics if `values` is empty (ropes always have at least one leaf).
pub fn build_i64_rope(ctx: &mut TaskCtx<'_>, values: &[i64]) -> Handle {
    assert!(!values.is_empty(), "ropes must hold at least one element");
    let words: Vec<Word> = values.iter().map(|&v| i64_to_word(v)).collect();
    build_word_rope(ctx, &words)
}

fn build_word_rope(ctx: &mut TaskCtx<'_>, words: &[Word]) -> Handle {
    let mut leaves = Vec::new();
    for chunk in words.chunks(LEAF_SIZE) {
        leaves.push(Some(ctx.alloc_raw(chunk)));
    }
    ctx.alloc_vector(&leaves)
}

/// Total number of elements stored in a rope.
pub fn rope_len(ctx: &mut TaskCtx<'_>, rope: Handle) -> usize {
    let leaves = ctx.len(rope);
    let mut total = 0;
    for i in 0..leaves {
        let leaf = ctx.read_ptr(rope, i).expect("rope leaves are never null");
        total += ctx.len(leaf);
    }
    total
}

/// Reads an entire rope of `f64` values back into a `Vec`.
pub fn read_f64_rope(ctx: &mut TaskCtx<'_>, rope: Handle) -> Vec<f64> {
    read_word_rope(ctx, rope)
        .into_iter()
        .map(word_to_f64)
        .collect()
}

/// Reads an entire rope of `i64` values back into a `Vec`.
pub fn read_i64_rope(ctx: &mut TaskCtx<'_>, rope: Handle) -> Vec<i64> {
    read_word_rope(ctx, rope)
        .into_iter()
        .map(word_to_i64)
        .collect()
}

fn read_word_rope(ctx: &mut TaskCtx<'_>, rope: Handle) -> Vec<Word> {
    let leaves = ctx.len(rope);
    let mut out = Vec::new();
    for i in 0..leaves {
        let mark = ctx.root_mark();
        let leaf = ctx.read_ptr(rope, i).expect("rope leaves are never null");
        out.extend(ctx.read_words(leaf));
        ctx.truncate_roots(mark);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig, TaskResult, TaskSpec};

    #[test]
    fn rope_round_trips_f64_data() {
        let mut machine = Machine::new(MachineConfig::small_for_tests(1));
        machine.spawn_root(TaskSpec::new("rope-test", |ctx| {
            let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
            let rope = build_f64_rope(ctx, &data);
            assert_eq!(rope_len(ctx, rope), 1000);
            let back = read_f64_rope(ctx, rope);
            assert_eq!(back, data);
            TaskResult::Unit
        }));
        machine.run();
    }

    #[test]
    fn rope_round_trips_i64_data_across_gc() {
        let mut machine = Machine::new(MachineConfig::small_for_tests(1));
        machine.spawn_root(TaskSpec::new("rope-gc-test", |ctx| {
            let data: Vec<i64> = (0..4000).map(|i| i * 3 - 1000).collect();
            let rope = build_i64_rope(ctx, &data);
            // Allocate garbage to force several collections.
            let mark = ctx.root_mark();
            for _ in 0..500 {
                ctx.alloc_raw(&[7; 32]);
                ctx.truncate_roots(mark);
            }
            let back = read_i64_rope(ctx, rope);
            assert_eq!(back, data);
            TaskResult::Unit
        }));
        let report = machine.run();
        assert!(report.gc.minor_collections > 0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_rope_rejected() {
        let mut machine = Machine::new(MachineConfig::small_for_tests(1));
        machine.spawn_root(TaskSpec::new("empty-rope", |ctx| {
            build_f64_rope(ctx, &[]);
            TaskResult::Unit
        }));
        machine.run();
    }
}
