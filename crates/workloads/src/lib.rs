//! The paper's benchmark programs, written against the `mgc-runtime` API.
//!
//! §4.1 of *Garbage Collection for Multicore NUMA Machines* evaluates five
//! programs plus one synthetic benchmark; this crate reproduces all of them:
//!
//! | Benchmark | Paper input | Module |
//! |-----------|-------------|--------|
//! | Barnes-Hut | 20 iterations, 400,000 particles (Plummer) | [`barnes_hut`] |
//! | Raytracer | 512 × 512 image, no acceleration structure | [`raytracer`] |
//! | Quicksort | 10,000,000 integers (NESL formulation) | [`quicksort`] |
//! | SMVM | 1,091,362 non-zeroes × 16,614-element vector | [`smvm`] |
//! | DMM | 600 × 600 dense matrices | [`dmm`] |
//! | synthetic | allocation churn | [`churn`] |
//!
//! Every benchmark is expressed as fork/join tasks over rope-structured
//! data, exactly the object demographics the Manticore collector is designed
//! for: a torrent of small short-lived allocations, a modest amount of
//! long-lived shared data (the Barnes-Hut tree, the SMVM vector), and no
//! mutation.
//!
//! Each benchmark is a [`Program`] with a public, serde-ready parameter
//! struct (e.g. [`barnes_hut::BarnesHutParams`], [`churn::ChurnParams`]) —
//! derived from a [`Scale`] but overridable, so the scenario space is not
//! limited to the paper's fixed inputs. Runs go through the [`Experiment`]
//! builder:
//!
//! # Example
//!
//! ```
//! use mgc_numa::{AllocPolicy, Topology};
//! use mgc_runtime::Experiment;
//! use mgc_workloads::{Scale, Workload};
//!
//! let record = Experiment::new(Workload::Dmm.program(Scale::tiny()))
//!     .topology(Topology::dual_node_test())
//!     .vprocs(2)
//!     .policy(AllocPolicy::Local)
//!     .run()
//!     .expect("two vprocs fit the dual-node test topology");
//! assert!(record.report.elapsed_ns > 0.0);
//! assert_eq!(record.checksum_ok, Some(true));
//! ```
//!
//! Custom parameters open the grid beyond the paper:
//!
//! ```
//! use mgc_runtime::Experiment;
//! use mgc_workloads::churn::{Churn, ChurnParams};
//!
//! let record = Experiment::new(Churn::new(ChurnParams {
//!         objects_per_worker: 1_000,
//!         object_words: 4,
//!         survive_every: 16,
//!         workers: 2,
//!     }))
//!     .vprocs(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(record.checksum_ok, Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barnes_hut;
pub mod churn;
pub mod dmm;
pub mod quicksort;
pub mod raytracer;
mod rope;
mod scale;
pub mod smvm;

pub use rope::{build_f64_rope, build_i64_rope, read_f64_rope, read_i64_rope, rope_len, LEAF_SIZE};
pub use scale::Scale;

use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Executor, Experiment, Program};
use serde::{Deserialize, Serialize};

/// The benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Dense-matrix multiplication.
    Dmm,
    /// The ray tracer.
    Raytracer,
    /// Parallel quicksort.
    Quicksort,
    /// Barnes-Hut N-body simulation.
    BarnesHut,
    /// Sparse-matrix × dense-vector multiplication.
    Smvm,
    /// The synthetic allocation-churn benchmark.
    Churn,
}

impl Workload {
    /// The five benchmarks plotted in Figures 4–7, in the paper's legend
    /// order.
    pub const FIGURES: [Workload; 5] = [
        Workload::Dmm,
        Workload::Raytracer,
        Workload::Quicksort,
        Workload::BarnesHut,
        Workload::Smvm,
    ];

    /// Every workload, including the synthetic one.
    pub const ALL: [Workload; 6] = [
        Workload::Dmm,
        Workload::Raytracer,
        Workload::Quicksort,
        Workload::BarnesHut,
        Workload::Smvm,
        Workload::Churn,
    ];

    /// The label used in the paper's figures (and as the
    /// [`Program::name`]).
    pub fn label(self) -> &'static str {
        match self {
            Workload::Dmm => "Dense-Matrix-Multiply",
            Workload::Raytracer => "Raytracer",
            Workload::Quicksort => "Quicksort",
            Workload::BarnesHut => "Barnes-Hut",
            Workload::Smvm => "SMVM",
            Workload::Churn => "Synthetic-Churn",
        }
    }

    /// This benchmark as a [`Program`] with the paper's input scaled by
    /// `scale`. For parameters beyond the paper's grid, construct the
    /// per-module program directly (e.g.
    /// [`churn::Churn::new`]/[`barnes_hut::BarnesHut::new`]).
    pub fn program(self, scale: Scale) -> Box<dyn Program> {
        match self {
            Workload::Dmm => Box::new(dmm::Dmm::at_scale(scale)),
            Workload::Raytracer => Box::new(raytracer::Raytracer::at_scale(scale)),
            Workload::Quicksort => Box::new(quicksort::Quicksort::at_scale(scale)),
            Workload::BarnesHut => Box::new(barnes_hut::BarnesHut::at_scale(scale)),
            Workload::Smvm => Box::new(smvm::Smvm::at_scale(scale)),
            Workload::Churn => Box::new(churn::Churn::at_scale(scale)),
        }
    }

    /// An [`Experiment`] around [`Workload::program`] — the front door for
    /// running one of the paper's benchmarks. Chain the scenario dimensions
    /// (topology, vprocs, policy, backend, heap, gc) before `run()`.
    pub fn experiment(self, scale: Scale) -> Experiment<Box<dyn Program>> {
        Experiment::new(self.program(scale))
    }

    /// Spawns this workload onto a machine at the given scale.
    pub fn spawn(self, machine: &mut dyn Executor, scale: Scale) {
        self.program(scale).spawn(machine);
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Number of threads (vprocs).
    pub threads: usize,
    /// Virtual execution time in nanoseconds.
    pub elapsed_ns: f64,
    /// Speedup relative to the single-threaded run of the same series.
    pub speedup: f64,
}

/// Runs `workload` at each thread count and returns the speedup curve
/// relative to the single-thread run (the quantity plotted in Figures 4–7).
pub fn speedup_series(
    topology: &Topology,
    threads: &[usize],
    policy: AllocPolicy,
    workload: Workload,
    scale: Scale,
    baseline_ns: Option<f64>,
) -> Vec<SpeedupPoint> {
    let run = |threads: usize, policy: AllocPolicy| {
        workload
            .experiment(scale)
            .topology(topology.clone())
            .vprocs(threads)
            .policy(policy)
            // A speedup curve reads timings only; skip the sequential
            // reference checksum each point would otherwise recompute.
            .verify_checksum(false)
            .run()
            .expect("speedup series thread counts fit the topology")
            .report
            .elapsed_ns
    };
    let baseline = baseline_ns.unwrap_or_else(|| run(1, AllocPolicy::Local));
    threads
        .iter()
        .map(|&t| {
            let elapsed = run(t, policy);
            SpeedupPoint {
                threads: t,
                elapsed_ns: elapsed,
                speedup: baseline / elapsed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels_match_figure_legends() {
        assert_eq!(Workload::Dmm.label(), "Dense-Matrix-Multiply");
        assert_eq!(Workload::Smvm.to_string(), "SMVM");
        assert_eq!(Workload::FIGURES.len(), 5);
        assert_eq!(Workload::ALL.len(), 6);
    }

    #[test]
    fn program_names_match_workload_labels() {
        for workload in Workload::ALL {
            assert_eq!(workload.program(Scale::tiny()).name(), workload.label());
        }
    }

    #[test]
    fn bench_preset_maps_to_the_hand_balanced_sizes() {
        assert!(Scale::bench().is_bench());
        assert!(!Scale::tiny().is_bench());
        assert_eq!(dmm::dimension(Scale::bench()), dmm::BENCH_DIMENSION);
        assert_eq!(
            raytracer::image_size(Scale::bench()),
            raytracer::BENCH_IMAGE_SIZE
        );
        assert_eq!(
            quicksort::input_size(Scale::bench()),
            quicksort::BENCH_ELEMENTS
        );
        assert_eq!(
            barnes_hut::num_particles(Scale::bench()),
            barnes_hut::BENCH_PARTICLES
        );
        assert_eq!(
            barnes_hut::num_iterations(Scale::bench()),
            barnes_hut::BENCH_ITERATIONS
        );
        assert_eq!(
            smvm::vector_length(Scale::bench()),
            smvm::BENCH_VECTOR_LENGTH
        );
        assert_eq!(
            churn::ChurnParams::at_scale(Scale::bench()),
            churn::ChurnParams::bench()
        );
    }

    #[test]
    fn every_figure_workload_runs_on_a_small_machine() {
        let topology = Topology::dual_node_test();
        for workload in Workload::FIGURES {
            let record = workload
                .experiment(Scale::tiny())
                .topology(topology.clone())
                .vprocs(2)
                .policy(AllocPolicy::Local)
                .run()
                .expect("two vprocs fit the dual-node test topology");
            assert!(
                record.report.total_tasks() > 1,
                "{workload} should be parallel"
            );
            assert!(record.report.elapsed_ns > 0.0);
            assert_ne!(
                record.checksum_ok,
                Some(false),
                "{workload} produced a wrong checksum"
            );
        }
    }

    #[test]
    fn speedup_series_reports_relative_improvement() {
        let topology = Topology::dual_node_test();
        // Use a scale large enough that the work spans several scheduling
        // quanta; otherwise a single vproc finishes before anyone can steal.
        let series = speedup_series(
            &topology,
            &[1, 4],
            AllocPolicy::Local,
            Workload::Dmm,
            Scale(0.25),
            None,
        );
        assert_eq!(series.len(), 2);
        assert!((series[0].speedup - 1.0).abs() < 0.05);
        assert!(series[1].speedup > 1.5, "4 threads should beat 1");
    }

    #[test]
    fn churn_params_scale_with_floors() {
        let tiny = churn::ChurnParams::at_scale(Scale::tiny());
        let paper = churn::ChurnParams::at_scale(Scale::paper());
        assert_eq!(paper, churn::ChurnParams::default());
        assert!(tiny.objects_per_worker >= 500);
        assert!(tiny.workers >= 4);
        assert!(tiny.objects_per_worker < paper.objects_per_worker);
    }
}
