//! The paper's benchmark programs, written against the `mgc-runtime` API.
//!
//! §4.1 of *Garbage Collection for Multicore NUMA Machines* evaluates five
//! programs plus one synthetic benchmark; this crate reproduces all of them:
//!
//! | Benchmark | Paper input | Module |
//! |-----------|-------------|--------|
//! | Barnes-Hut | 20 iterations, 400,000 particles (Plummer) | [`barnes_hut`] |
//! | Raytracer | 512 × 512 image, no acceleration structure | [`raytracer`] |
//! | Quicksort | 10,000,000 integers (NESL formulation) | [`quicksort`] |
//! | SMVM | 1,091,362 non-zeroes × 16,614-element vector | [`smvm`] |
//! | DMM | 600 × 600 dense matrices | [`dmm`] |
//! | synthetic | allocation churn | [`churn`] |
//!
//! Every benchmark is expressed as fork/join tasks over rope-structured
//! data, exactly the object demographics the Manticore collector is designed
//! for: a torrent of small short-lived allocations, a modest amount of
//! long-lived shared data (the Barnes-Hut tree, the SMVM vector), and no
//! mutation.
//!
//! # Example
//!
//! ```
//! use mgc_numa::{AllocPolicy, Topology};
//! use mgc_workloads::{run_workload, Scale, Workload};
//!
//! let report = run_workload(
//!     &Topology::dual_node_test(),
//!     2,
//!     AllocPolicy::Local,
//!     Workload::Dmm,
//!     Scale::tiny(),
//! );
//! assert!(report.elapsed_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barnes_hut;
pub mod churn;
pub mod dmm;
pub mod quicksort;
pub mod raytracer;
mod rope;
mod scale;
pub mod smvm;

pub use rope::{build_f64_rope, build_i64_rope, read_f64_rope, read_i64_rope, rope_len, LEAF_SIZE};
pub use scale::Scale;

use mgc_heap::Word;
use mgc_numa::{AllocPolicy, Topology};
use mgc_runtime::{Backend, Executor, Machine, MachineConfig, RunReport, ThreadedMachine};
use serde::{Deserialize, Serialize};

/// The benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Dense-matrix multiplication.
    Dmm,
    /// The ray tracer.
    Raytracer,
    /// Parallel quicksort.
    Quicksort,
    /// Barnes-Hut N-body simulation.
    BarnesHut,
    /// Sparse-matrix × dense-vector multiplication.
    Smvm,
    /// The synthetic allocation-churn benchmark.
    Churn,
}

impl Workload {
    /// The five benchmarks plotted in Figures 4–7, in the paper's legend
    /// order.
    pub const FIGURES: [Workload; 5] = [
        Workload::Dmm,
        Workload::Raytracer,
        Workload::Quicksort,
        Workload::BarnesHut,
        Workload::Smvm,
    ];

    /// Every workload, including the synthetic one.
    pub const ALL: [Workload; 6] = [
        Workload::Dmm,
        Workload::Raytracer,
        Workload::Quicksort,
        Workload::BarnesHut,
        Workload::Smvm,
        Workload::Churn,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Dmm => "Dense-Matrix-Multiply",
            Workload::Raytracer => "Raytracer",
            Workload::Quicksort => "Quicksort",
            Workload::BarnesHut => "Barnes-Hut",
            Workload::Smvm => "SMVM",
            Workload::Churn => "Synthetic-Churn",
        }
    }

    /// Spawns this workload onto a machine.
    pub fn spawn(self, machine: &mut dyn Executor, scale: Scale) {
        match self {
            Workload::Dmm => dmm::spawn(machine, scale),
            Workload::Raytracer => raytracer::spawn(machine, scale),
            Workload::Quicksort => quicksort::spawn(machine, scale),
            Workload::BarnesHut => barnes_hut::spawn(machine, scale),
            Workload::Smvm => smvm::spawn(machine, scale),
            Workload::Churn => churn::spawn(machine, churn::ChurnParams::default()),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The machine configuration the workloads run under.
fn workload_config(topology: &Topology, vprocs: usize, policy: AllocPolicy) -> MachineConfig {
    let mut config = MachineConfig::new(topology.clone(), vprocs).with_policy(policy);
    // A finer scheduling quantum than the library default, so that scaled-down
    // benchmark inputs still spread across many vprocs instead of completing
    // inside a single vproc's first quantum.
    config.quantum_ns = 25_000.0;
    config
}

/// Builds a simulated machine for `topology` with `vprocs` vprocs and the
/// given page placement policy, using the default (scaled-down) heap
/// geometry.
pub fn machine_for(topology: &Topology, vprocs: usize, policy: AllocPolicy) -> Machine {
    Machine::new(workload_config(topology, vprocs, policy))
}

/// Builds an executor of the requested backend with the same configuration
/// as [`machine_for`].
pub fn executor_for(
    backend: Backend,
    topology: &Topology,
    vprocs: usize,
    policy: AllocPolicy,
) -> Box<dyn Executor> {
    let config = workload_config(topology, vprocs, policy);
    match backend {
        Backend::Simulated => Box::new(Machine::new(config)),
        Backend::Threaded => Box::new(ThreadedMachine::new(config)),
    }
}

/// Runs one workload to completion and returns its report. The backend
/// defaults to the simulated one; set the `MGC_BACKEND` environment variable
/// (`simulated`/`threaded`) to override it — the examples and ad-hoc
/// experiments use this to flip a whole run onto real threads without
/// touching code.
pub fn run_workload(
    topology: &Topology,
    vprocs: usize,
    policy: AllocPolicy,
    workload: Workload,
    scale: Scale,
) -> RunReport {
    let backend = Backend::from_env().unwrap_or(Backend::Simulated);
    let mut executor = executor_for(backend, topology, vprocs, policy);
    workload.spawn(&mut *executor, scale);
    executor.run()
}

/// Runs one workload on the chosen backend, returning the run report and
/// the root task's result (the workload checksum, for cross-backend
/// equivalence checks).
pub fn run_workload_on(
    backend: Backend,
    topology: &Topology,
    vprocs: usize,
    policy: AllocPolicy,
    workload: Workload,
    scale: Scale,
) -> (RunReport, Option<(Word, bool)>) {
    let mut executor = executor_for(backend, topology, vprocs, policy);
    workload.spawn(&mut *executor, scale);
    let report = executor.run();
    let result = executor.take_result();
    (report, result)
}

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Number of threads (vprocs).
    pub threads: usize,
    /// Virtual execution time in nanoseconds.
    pub elapsed_ns: f64,
    /// Speedup relative to the single-threaded run of the same series.
    pub speedup: f64,
}

/// Runs `workload` at each thread count and returns the speedup curve
/// relative to the single-thread run (the quantity plotted in Figures 4–7).
pub fn speedup_series(
    topology: &Topology,
    threads: &[usize],
    policy: AllocPolicy,
    workload: Workload,
    scale: Scale,
    baseline_ns: Option<f64>,
) -> Vec<SpeedupPoint> {
    let baseline = baseline_ns.unwrap_or_else(|| {
        run_workload(topology, 1, AllocPolicy::Local, workload, scale).elapsed_ns
    });
    threads
        .iter()
        .map(|&t| {
            let elapsed = run_workload(topology, t, policy, workload, scale).elapsed_ns;
            SpeedupPoint {
                threads: t,
                elapsed_ns: elapsed,
                speedup: baseline / elapsed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels_match_figure_legends() {
        assert_eq!(Workload::Dmm.label(), "Dense-Matrix-Multiply");
        assert_eq!(Workload::Smvm.to_string(), "SMVM");
        assert_eq!(Workload::FIGURES.len(), 5);
        assert_eq!(Workload::ALL.len(), 6);
    }

    #[test]
    fn every_figure_workload_runs_on_a_small_machine() {
        let topology = Topology::dual_node_test();
        for workload in Workload::FIGURES {
            let report = run_workload(&topology, 2, AllocPolicy::Local, workload, Scale::tiny());
            assert!(report.total_tasks() > 1, "{workload} should be parallel");
            assert!(report.elapsed_ns > 0.0);
        }
    }

    #[test]
    fn speedup_series_reports_relative_improvement() {
        let topology = Topology::dual_node_test();
        // Use a scale large enough that the work spans several scheduling
        // quanta; otherwise a single vproc finishes before anyone can steal.
        let series = speedup_series(
            &topology,
            &[1, 4],
            AllocPolicy::Local,
            Workload::Dmm,
            Scale(0.25),
            None,
        );
        assert_eq!(series.len(), 2);
        assert!((series[0].speedup - 1.0).abs() < 0.05);
        assert!(series[1].speedup > 1.5, "4 threads should beat 1");
    }
}
