//! The Barnes-Hut N-body benchmark (paper §4.1: 20 iterations over 400,000
//! particles in a Plummer distribution, after the Haskell/NDP version).
//!
//! Each iteration has two phases, exactly as the paper describes: a
//! (sequential) quadtree construction over the particles, and a parallel
//! force-calculation phase that reads the shared tree. The tree is built in
//! the iteration task's local heap; as soon as force tasks are stolen by
//! other vprocs the tree is promoted to the global heap and becomes shared
//! read-only data — which, together with the sequential build phase, is why
//! the paper sees Barnes-Hut stop scaling past ~36 threads.

use crate::scale::Scale;
use mgc_heap::{f64_to_word, word_to_f64, Descriptor, DescriptorId};
use mgc_runtime::{Checksum, Executor, FieldInit, Handle, Program, TaskCtx, TaskResult, TaskSpec};
use serde::{Deserialize, Serialize};

/// Particle count at the benchmark preset. The force phase is close to
/// quadratic at the opening angle used here, so the benchmark keeps the
/// particle count low and adds iterations instead.
pub const BENCH_PARTICLES: usize = 2_048;

/// Iteration count at the benchmark preset.
pub const BENCH_ITERATIONS: usize = 4;

/// Number of particles at the given scale (the paper uses 400,000).
pub fn num_particles(scale: Scale) -> usize {
    if scale.is_bench() {
        return BENCH_PARTICLES;
    }
    scale.apply(400_000, 512)
}

/// Number of iterations at the given scale (the paper runs 20).
pub fn num_iterations(scale: Scale) -> usize {
    if scale.is_bench() {
        return BENCH_ITERATIONS;
    }
    scale.apply(20, 2)
}

/// Parameters of the Barnes-Hut benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarnesHutParams {
    /// Number of particles in the Plummer distribution (the paper uses
    /// 400,000).
    pub particles: usize,
    /// Number of build-tree/compute-forces iterations (the paper runs 20).
    pub iterations: usize,
}

impl BarnesHutParams {
    /// The paper's input shrunk by `scale` (floors: 512 particles, 2
    /// iterations).
    pub fn at_scale(scale: Scale) -> Self {
        BarnesHutParams {
            particles: num_particles(scale),
            iterations: num_iterations(scale),
        }
    }
}

impl Default for BarnesHutParams {
    fn default() -> Self {
        BarnesHutParams::at_scale(Scale::default())
    }
}

/// The Barnes-Hut N-body simulation as a [`Program`].
///
/// The expected checksum comes from [`reference_checksum`], a plain-Rust
/// sequential mirror of the same tree build, force calculation, and
/// integration in the same floating-point operation order — so the parallel
/// runs are checked against independently computed physics, not just
/// against each other.
#[derive(Debug, Clone, Copy)]
pub struct BarnesHut {
    /// The run's parameters.
    pub params: BarnesHutParams,
}

impl BarnesHut {
    /// A Barnes-Hut program with explicit parameters.
    pub fn new(params: BarnesHutParams) -> Self {
        BarnesHut { params }
    }

    /// A Barnes-Hut program at the paper's input scaled by `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        BarnesHut::new(BarnesHutParams::at_scale(scale))
    }
}

impl Program for BarnesHut {
    fn name(&self) -> &str {
        "Barnes-Hut"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        spawn_with(machine, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::F64(reference_checksum(self.params)))
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"particles\": {}, \"iterations\": {}}}",
            self.params.particles, self.params.iterations
        )
    }
}

/// Opening criterion of the Barnes-Hut approximation.
const THETA: f64 = 0.5;
/// Integration time step.
const DT: f64 = 0.01;
/// Gravitational constant (arbitrary units).
const G: f64 = 1.0;

/// A particle: mass, position, and velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Particle mass.
    pub mass: f64,
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Velocity.
    pub vx: f64,
    /// Velocity.
    pub vy: f64,
}

/// Generates `n` particles in a 2-D Plummer-like distribution,
/// deterministically.
pub fn plummer_particles(n: usize) -> Vec<Particle> {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut uniform = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            // Plummer radial profile: r = a / sqrt(u^(-2/3) - 1).
            let u = uniform().clamp(1e-6, 1.0 - 1e-6);
            let r = 1.0 / (u.powf(-2.0 / 3.0) - 1.0).sqrt().max(1e-3);
            let angle = uniform() * std::f64::consts::TAU;
            let speed = 0.2 * uniform();
            let vangle = uniform() * std::f64::consts::TAU;
            Particle {
                mass: 1.0 / n as f64,
                x: r.min(10.0) * angle.cos(),
                y: r.min(10.0) * angle.sin(),
                vx: speed * vangle.cos(),
                vy: speed * vangle.sin(),
            }
        })
        .collect()
}

/// Registers the quadtree node descriptor on a machine: four child pointers
/// followed by mass and the centre of mass.
pub fn register_tree_descriptor(machine: &mut dyn Executor) -> DescriptorId {
    machine.register_descriptor(Descriptor::new("bh-quadtree-node", 7, 0b0000_1111))
}

const F_MASS: usize = 4;
const F_CX: usize = 5;
const F_CY: usize = 6;

/// Builds the quadtree over `particles` inside the current task's heap and
/// returns the root node (or `None` for an empty set).
fn build_tree(
    ctx: &mut TaskCtx<'_>,
    desc: DescriptorId,
    particles: &[Particle],
    cx: f64,
    cy: f64,
    half: f64,
    depth: usize,
) -> Option<Handle> {
    if particles.is_empty() {
        return None;
    }
    let mass: f64 = particles.iter().map(|p| p.mass).sum();
    let com_x: f64 = particles.iter().map(|p| p.mass * p.x).sum::<f64>() / mass;
    let com_y: f64 = particles.iter().map(|p| p.mass * p.y).sum::<f64>() / mass;
    ctx.work(particles.len() as u64 * 6);
    if particles.len() == 1 || depth > 24 {
        return Some(ctx.alloc_mixed(
            desc,
            &[
                FieldInit::Ptr(None),
                FieldInit::Ptr(None),
                FieldInit::Ptr(None),
                FieldInit::Ptr(None),
                FieldInit::F64(mass),
                FieldInit::F64(com_x),
                FieldInit::F64(com_y),
            ],
        ));
    }
    let mut quadrants: [Vec<Particle>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for &p in particles {
        let index = (usize::from(p.x >= cx)) | (usize::from(p.y >= cy) << 1);
        quadrants[index].push(p);
    }
    let offsets = [(-0.5, -0.5), (0.5, -0.5), (-0.5, 0.5), (0.5, 0.5)];
    let mut children: [Option<Handle>; 4] = [None; 4];
    for (i, quadrant) in quadrants.iter().enumerate() {
        children[i] = build_tree(
            ctx,
            desc,
            quadrant,
            cx + offsets[i].0 * half,
            cy + offsets[i].1 * half,
            half / 2.0,
            depth + 1,
        );
    }
    Some(ctx.alloc_mixed(
        desc,
        &[
            FieldInit::Ptr(children[0]),
            FieldInit::Ptr(children[1]),
            FieldInit::Ptr(children[2]),
            FieldInit::Ptr(children[3]),
            FieldInit::F64(mass),
            FieldInit::F64(com_x),
            FieldInit::F64(com_y),
        ],
    ))
}

/// Computes the acceleration exerted on `(px, py)` by the subtree at `node`.
fn accel_from(ctx: &mut TaskCtx<'_>, node: Handle, px: f64, py: f64, cell_size: f64) -> (f64, f64) {
    let mass = ctx.read_f64(node, F_MASS);
    let cx = ctx.read_f64(node, F_CX);
    let cy = ctx.read_f64(node, F_CY);
    let dx = cx - px;
    let dy = cy - py;
    let dist2 = dx * dx + dy * dy + 1e-6;
    let dist = dist2.sqrt();
    ctx.work(16);

    let children: Vec<Option<Handle>> = (0..4).map(|i| ctx.read_ptr(node, i)).collect();
    let is_leaf = children.iter().all(Option::is_none);
    if is_leaf || cell_size / dist < THETA {
        let f = G * mass / (dist2 * dist);
        return (f * dx, f * dy);
    }
    let mut ax = 0.0;
    let mut ay = 0.0;
    for child in children.into_iter().flatten() {
        let (cax, cay) = accel_from(ctx, child, px, py, cell_size / 2.0);
        ax += cax;
        ay += cay;
    }
    (ax, ay)
}

fn particles_to_words(particles: &[Particle]) -> Vec<u64> {
    particles
        .iter()
        .flat_map(|p| [p.mass, p.x, p.y, p.vx, p.vy])
        .map(f64_to_word)
        .collect()
}

fn words_to_particles(words: &[u64]) -> Vec<Particle> {
    words
        .chunks(5)
        .map(|c| Particle {
            mass: word_to_f64(c[0]),
            x: word_to_f64(c[1]),
            y: word_to_f64(c[2]),
            vx: word_to_f64(c[3]),
            vy: word_to_f64(c[4]),
        })
        .collect()
}

/// One iteration: build the tree, fork the force phase, update the
/// particles, and either start the next iteration or deliver the checksum.
fn iteration_task(desc: DescriptorId, remaining: usize, blocks: usize) -> TaskSpec {
    TaskSpec::new("bh-iteration", move |ctx| {
        // Input 0: the particle rope (one leaf per block of particles).
        let particle_rope = ctx.input(0);
        let leaves = ctx.len(particle_rope);
        let mut particles = Vec::new();
        for i in 0..leaves {
            let mark = ctx.root_mark();
            let leaf = ctx
                .read_ptr(particle_rope, i)
                .expect("particle leaves are never null");
            particles.extend(words_to_particles(&ctx.read_words(leaf)));
            ctx.truncate_roots(mark);
        }

        // Phase 1 (sequential): the quadtree.
        let mark = ctx.root_mark();
        let half = particles
            .iter()
            .map(|p| p.x.abs().max(p.y.abs()))
            .fold(1.0f64, f64::max);
        let tree = build_tree(ctx, desc, &particles, 0.0, 0.0, half, 0)
            .expect("there is at least one particle");
        let tree = ctx.keep(tree, mark);

        // Phase 2 (parallel): forces and integration, one child per block.
        let per_block = particles.len().div_ceil(blocks);
        let mut children = Vec::new();
        for block in 0..blocks {
            let lo = block * per_block;
            let hi = ((block + 1) * per_block).min(particles.len());
            if lo >= hi {
                continue;
            }
            let mine: Vec<Particle> = particles[lo..hi].to_vec();
            let cell = half * 2.0;
            children.push((
                TaskSpec::new("bh-forces", move |ctx| {
                    let tree = ctx.input(0);
                    let mut updated = Vec::with_capacity(mine.len());
                    for p in &mine {
                        let mark = ctx.root_mark();
                        let (ax, ay) = accel_from(ctx, tree, p.x, p.y, cell);
                        ctx.truncate_roots(mark);
                        let vx = p.vx + ax * DT;
                        let vy = p.vy + ay * DT;
                        updated.push(Particle {
                            mass: p.mass,
                            x: p.x + vx * DT,
                            y: p.y + vy * DT,
                            vx,
                            vy,
                        });
                    }
                    ctx.work(mine.len() as u64 * 40);
                    let leaf = ctx.alloc_raw(&particles_to_words(&updated));
                    TaskResult::Ptr(leaf)
                }),
                vec![tree],
            ));
        }

        // Continuation: gather the updated leaves into the next particle
        // rope, then either iterate again or compute the checksum.
        let continuation = if remaining > 1 {
            TaskSpec::new("bh-next-iteration", move |ctx| {
                let leaves: Vec<Option<Handle>> =
                    (0..ctx.num_roots()).map(|i| Some(ctx.input(i))).collect();
                let rope = ctx.alloc_vector(&leaves);
                ctx.fork_join(
                    vec![(iteration_task(desc, remaining - 1, blocks), vec![rope])],
                    TaskSpec::new("bh-forward", |ctx| TaskResult::Value(ctx.value(0))),
                    &[],
                );
                TaskResult::Unit
            })
        } else {
            TaskSpec::new("bh-checksum", |ctx| {
                let mut checksum = 0.0;
                for i in 0..ctx.num_roots() {
                    let leaf = ctx.input(i);
                    for p in words_to_particles(&ctx.read_words(leaf)) {
                        checksum += p.x.abs() + p.y.abs();
                    }
                }
                TaskResult::Value(f64_to_word(checksum))
            })
        };
        ctx.fork_join(children, continuation, &[]);
        TaskResult::Unit
    })
}

/// Spawns the Barnes-Hut workload at the given scale; the root result is a
/// checksum over the final particle positions.
pub fn spawn(machine: &mut dyn Executor, scale: Scale) {
    spawn_with(machine, BarnesHutParams::at_scale(scale));
}

/// Spawns the Barnes-Hut workload with explicit parameters.
pub fn spawn_with(machine: &mut dyn Executor, params: BarnesHutParams) {
    let n = params.particles;
    let iterations = params.iterations;
    let desc = register_tree_descriptor(machine);
    let blocks = 96;
    machine.spawn_root(TaskSpec::new("bh-root", move |ctx| {
        let particles = plummer_particles(n);
        // Store particles as one leaf per force block, so the leaves are
        // sized like the parallel work units.
        let per_block = particles.len().div_ceil(blocks);
        let mut leaves = Vec::new();
        for chunk in particles.chunks(per_block) {
            let leaf = ctx.alloc_raw(&particles_to_words(chunk));
            leaves.push(Some(leaf));
        }
        let rope = ctx.alloc_vector(&leaves);
        ctx.fork_join(
            vec![(iteration_task(desc, iterations, blocks), vec![rope])],
            TaskSpec::new("bh-done", |ctx| TaskResult::Value(ctx.value(0))),
            &[],
        );
        TaskResult::Unit
    }));
}

/// Reads the checksum produced by a finished Barnes-Hut run.
pub fn take_checksum(machine: &mut dyn Executor) -> Option<f64> {
    machine.take_result().map(|(word, _)| word_to_f64(word))
}

// ----------------------------------------------------------------------
// Sequential reference
// ----------------------------------------------------------------------

/// A plain-Rust quadtree node mirroring the heap node layout, used by the
/// sequential reference computation.
struct RefNode {
    children: [Option<Box<RefNode>>; 4],
    mass: f64,
    cx: f64,
    cy: f64,
}

/// Mirrors [`build_tree`]: same partition, same summation order.
fn build_ref_tree(
    particles: &[Particle],
    cx: f64,
    cy: f64,
    half: f64,
    depth: usize,
) -> Option<Box<RefNode>> {
    if particles.is_empty() {
        return None;
    }
    let mass: f64 = particles.iter().map(|p| p.mass).sum();
    let com_x: f64 = particles.iter().map(|p| p.mass * p.x).sum::<f64>() / mass;
    let com_y: f64 = particles.iter().map(|p| p.mass * p.y).sum::<f64>() / mass;
    if particles.len() == 1 || depth > 24 {
        return Some(Box::new(RefNode {
            children: [None, None, None, None],
            mass,
            cx: com_x,
            cy: com_y,
        }));
    }
    let mut quadrants: [Vec<Particle>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for &p in particles {
        let index = (usize::from(p.x >= cx)) | (usize::from(p.y >= cy) << 1);
        quadrants[index].push(p);
    }
    let offsets = [(-0.5, -0.5), (0.5, -0.5), (-0.5, 0.5), (0.5, 0.5)];
    let mut children: [Option<Box<RefNode>>; 4] = [None, None, None, None];
    for (i, quadrant) in quadrants.iter().enumerate() {
        children[i] = build_ref_tree(
            quadrant,
            cx + offsets[i].0 * half,
            cy + offsets[i].1 * half,
            half / 2.0,
            depth + 1,
        );
    }
    Some(Box::new(RefNode {
        children,
        mass,
        cx: com_x,
        cy: com_y,
    }))
}

/// Mirrors [`accel_from`]: same opening criterion, same accumulation order.
fn ref_accel(node: &RefNode, px: f64, py: f64, cell_size: f64) -> (f64, f64) {
    let dx = node.cx - px;
    let dy = node.cy - py;
    let dist2 = dx * dx + dy * dy + 1e-6;
    let dist = dist2.sqrt();
    let is_leaf = node.children.iter().all(Option::is_none);
    if is_leaf || cell_size / dist < THETA {
        let f = G * node.mass / (dist2 * dist);
        return (f * dx, f * dy);
    }
    let mut ax = 0.0;
    let mut ay = 0.0;
    for child in node.children.iter().flatten() {
        let (cax, cay) = ref_accel(child, px, py, cell_size / 2.0);
        ax += cax;
        ay += cay;
    }
    (ax, ay)
}

/// The sequential reference computation: the same physics as the parallel
/// program, in the same floating-point operation order, over plain Rust
/// data (per-particle updates are independent, so block partitioning in the
/// parallel version cannot change the result).
pub fn reference_checksum(params: BarnesHutParams) -> f64 {
    let mut particles = plummer_particles(params.particles);
    for _ in 0..params.iterations {
        let half = particles
            .iter()
            .map(|p| p.x.abs().max(p.y.abs()))
            .fold(1.0f64, f64::max);
        let tree =
            build_ref_tree(&particles, 0.0, 0.0, half, 0).expect("there is at least one particle");
        let cell = half * 2.0;
        particles = particles
            .iter()
            .map(|p| {
                let (ax, ay) = ref_accel(&tree, p.x, p.y, cell);
                let vx = p.vx + ax * DT;
                let vy = p.vy + ay * DT;
                Particle {
                    mass: p.mass,
                    x: p.x + vx * DT,
                    y: p.y + vy * DT,
                    vx,
                    vy,
                }
            })
            .collect();
    }
    particles.iter().map(|p| p.x.abs() + p.y.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig};

    #[test]
    fn plummer_distribution_is_deterministic_and_centred() {
        let a = plummer_particles(500);
        let b = plummer_particles(500);
        assert_eq!(a, b);
        let cx: f64 = a.iter().map(|p| p.x).sum::<f64>() / 500.0;
        let cy: f64 = a.iter().map(|p| p.y).sum::<f64>() / 500.0;
        assert!(
            cx.abs() < 1.0 && cy.abs() < 1.0,
            "roughly centred: {cx}, {cy}"
        );
        let total_mass: f64 = a.iter().map(|p| p.mass).sum();
        assert!((total_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn result_is_independent_of_vproc_count() {
        let scale = Scale::tiny();
        let run = |vprocs: usize| {
            let mut machine = Machine::new(MachineConfig::small_for_tests(vprocs));
            spawn(&mut machine, scale);
            machine.run();
            take_checksum(&mut machine).expect("barnes-hut produces a checksum")
        };
        let single = run(1);
        let dual = run(2);
        assert!(
            (single - dual).abs() < 1e-9 * single.abs().max(1.0),
            "parallel execution must not change the physics: {single} vs {dual}"
        );
        assert!(single.is_finite() && single > 0.0);
    }

    #[test]
    fn machine_run_matches_the_sequential_reference() {
        let params = BarnesHutParams {
            particles: 512,
            iterations: 2,
        };
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn_with(&mut machine, params);
        machine.run();
        let got = take_checksum(&mut machine).expect("barnes-hut produces a checksum");
        let expected = reference_checksum(params);
        assert!(
            (got - expected).abs() <= 1e-9 * expected.abs().max(1.0),
            "machine physics diverged from the reference: {got} vs {expected}"
        );
    }

    #[test]
    fn two_particle_forces_match_the_analytic_formula() {
        // Two unit masses at (±1, 0): the tree is a root with two leaf
        // children, total mass 2 centred at the origin.
        let particles = [
            Particle {
                mass: 1.0,
                x: -1.0,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
            },
            Particle {
                mass: 1.0,
                x: 1.0,
                y: 0.0,
                vx: 0.0,
                vy: 0.0,
            },
        ];
        let tree = build_ref_tree(&particles, 0.0, 0.0, 1.0, 0).expect("non-empty");
        assert_eq!(tree.mass, 2.0);
        assert_eq!((tree.cx, tree.cy), (0.0, 0.0));
        // The root is opened (cell/dist = 2 > θ); the self-leaf contributes
        // zero (dx = dy = 0) and the other leaf pulls along +x with
        // f · dx = G·m·dx / (d² + ε)^(3/2), dx = 2.
        let (ax, ay) = ref_accel(&tree, -1.0, 0.0, 2.0);
        let dist2: f64 = 4.0 + 1e-6;
        let expected = 2.0 / (dist2 * dist2.sqrt());
        assert!((ax - expected).abs() < 1e-12, "{ax} vs {expected}");
        assert_eq!(ay, 0.0);
        // Symmetric pull on the mirror particle.
        let (ax2, _) = ref_accel(&tree, 1.0, 0.0, 2.0);
        assert!((ax2 + expected).abs() < 1e-12);
    }
}
