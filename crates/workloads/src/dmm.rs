//! Dense-matrix × dense-matrix multiplication (paper §4.1: 600 × 600).
//!
//! The paper characterises DMM as having "abundant, independent parallelism"
//! with "excellent locality and almost no shared data", which is why it
//! scales almost ideally on both machines. Following that characterisation,
//! each parallel block generates its operand rows locally (in its own
//! nursery), multiplies them, and allocates its slice of the result matrix
//! locally as well; nothing is shared between blocks.

use crate::scale::Scale;
use mgc_heap::{f64_to_word, word_to_f64};
use mgc_runtime::{Checksum, Executor, Program, TaskResult, TaskSpec};
use serde::{Deserialize, Serialize};

/// Matrix dimension at the benchmark preset: cost grows with the cube of
/// the edge, so 320 lands the run near 40 ms on one core.
pub const BENCH_DIMENSION: usize = 320;

/// Matrix dimension at the given scale (the paper uses 600 × 600).
pub fn dimension(scale: Scale) -> usize {
    if scale.is_bench() {
        return BENCH_DIMENSION;
    }
    scale.apply(600, 48)
}

/// Parameters of the DMM benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmmParams {
    /// Edge length of the square operand matrices (the paper uses 600).
    pub dimension: usize,
}

impl DmmParams {
    /// The paper's input shrunk by `scale` (with a floor of 48).
    pub fn at_scale(scale: Scale) -> Self {
        DmmParams {
            dimension: dimension(scale),
        }
    }
}

impl Default for DmmParams {
    fn default() -> Self {
        DmmParams::at_scale(Scale::default())
    }
}

/// Dense-matrix multiplication as a [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct Dmm {
    /// The run's parameters.
    pub params: DmmParams,
}

impl Dmm {
    /// A DMM program with explicit parameters.
    pub fn new(params: DmmParams) -> Self {
        Dmm { params }
    }

    /// A DMM program at the paper's input scaled by `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        Dmm::new(DmmParams::at_scale(scale))
    }
}

impl Program for Dmm {
    fn name(&self) -> &str {
        "Dense-Matrix-Multiply"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        spawn_with(machine, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::F64(checksum_for(self.params)))
    }

    fn params_json(&self) -> String {
        format!("{{\"dimension\": {}}}", self.params.dimension)
    }
}

/// Deterministic matrix generators, so every block (and the sequential
/// reference) agrees on the operand values.
fn a_elem(i: usize, k: usize) -> f64 {
    ((i * 7 + k * 3) % 13) as f64 * 0.25 - 1.0
}

fn b_elem(k: usize, j: usize) -> f64 {
    ((k + j * 5) % 11) as f64 * 0.5 - 2.0
}

/// The checksum (sum of all result elements) computed sequentially; used by
/// tests to validate the parallel run.
pub fn reference_checksum(scale: Scale) -> f64 {
    checksum_for(DmmParams::at_scale(scale))
}

/// The sequential reference checksum for explicit parameters.
fn checksum_for(params: DmmParams) -> f64 {
    let n = params.dimension;
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            let mut c = 0.0;
            for k in 0..n {
                c += a_elem(i, k) * b_elem(k, j);
            }
            sum += c;
        }
    }
    sum
}

/// Spawns the DMM workload onto `machine` at the given scale. The root
/// task's result is the checksum of the product matrix.
pub fn spawn(machine: &mut dyn Executor, scale: Scale) {
    spawn_with(machine, DmmParams::at_scale(scale));
}

/// Spawns the DMM workload with explicit parameters.
pub fn spawn_with(machine: &mut dyn Executor, params: DmmParams) {
    let n = params.dimension;
    let blocks = 96.min(n);
    machine.spawn_root(TaskSpec::new("dmm-root", move |ctx| {
        let rows_per_block = n.div_ceil(blocks);
        let mut children = Vec::new();
        for block in 0..blocks {
            let lo = block * rows_per_block;
            let hi = ((block + 1) * rows_per_block).min(n);
            if lo >= hi {
                continue;
            }
            children.push((
                TaskSpec::new("dmm-block", move |ctx| {
                    let mut checksum = 0.0;
                    for i in lo..hi {
                        let mark = ctx.root_mark();
                        // Materialise row i of A in the local heap, as the
                        // PML program's rope leaf would be.
                        let row: Vec<f64> = (0..n).map(|k| a_elem(i, k)).collect();
                        let row_handle = ctx.alloc_f64_slice(&row);
                        let row_back = ctx.read_f64s(row_handle);
                        // Multiply against B (generated on the fly: B is not
                        // shared between blocks).
                        let mut result_row = Vec::with_capacity(n);
                        for j in 0..n {
                            let mut c = 0.0;
                            for (k, &a) in row_back.iter().enumerate() {
                                c += a * b_elem(k, j);
                            }
                            result_row.push(c);
                        }
                        // One row of the product is n dot products of length n.
                        ctx.work(2 * (n * n) as u64);
                        // The result row is a fresh local allocation.
                        let out = ctx.alloc_f64_slice(&result_row);
                        let out_back = ctx.read_f64s(out);
                        checksum += out_back.iter().sum::<f64>();
                        ctx.truncate_roots(mark);
                    }
                    TaskResult::Value(f64_to_word(checksum))
                }),
                vec![],
            ));
        }
        ctx.fork_join(
            children,
            TaskSpec::new("dmm-sum", |ctx| {
                let total: f64 = (0..ctx.num_values()).map(|i| ctx.value_f64(i)).sum();
                TaskResult::Value(f64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
}

/// Reads the checksum produced by a finished DMM run.
pub fn take_checksum(machine: &mut dyn Executor) -> Option<f64> {
    machine.take_result().map(|(word, _)| word_to_f64(word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig};

    #[test]
    fn parallel_checksum_matches_sequential_reference() {
        let scale = Scale::tiny();
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn(&mut machine, scale);
        machine.run();
        let parallel = take_checksum(&mut machine).expect("dmm produces a checksum");
        let reference = reference_checksum(scale);
        assert!(
            (parallel - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "parallel {parallel} vs reference {reference}"
        );
    }

    #[test]
    fn dimension_scales_with_floor() {
        assert_eq!(dimension(Scale::paper()), 600);
        assert!(dimension(Scale::tiny()) >= 48);
    }

    #[test]
    fn four_by_four_product_matches_hand_written_matrices() {
        // The generator formulas written out by hand for n = 4; every value
        // is a multiple of 0.25 or 0.5, so all arithmetic below is exact.
        let a = [
            [-1.0, -0.25, 0.5, 1.25],
            [0.75, 1.5, -1.0, -0.25],
            [-0.75, 0.0, 0.75, 1.5],
            [1.0, 1.75, -0.75, 0.0],
        ];
        let b = [
            [-2.0, 0.5, 3.0, 0.0],
            [-1.5, 1.0, -2.0, 0.5],
            [-1.0, 1.5, -1.5, 1.0],
            [-0.5, 2.0, -1.0, 1.5],
        ];
        for i in 0..4 {
            for k in 0..4 {
                assert_eq!(a[i][k], a_elem(i, k), "A[{i}][{k}]");
                assert_eq!(b[i][k], b_elem(i, k), "B[{i}][{k}]");
            }
        }
        let mut expected = 0.0;
        for row in &a {
            for j in 0..4 {
                for (a_ik, b_k) in row.iter().zip(&b) {
                    expected += a_ik * b_k[j];
                }
            }
        }
        let params = DmmParams { dimension: 4 };
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn_with(&mut machine, params);
        machine.run();
        let got = take_checksum(&mut machine).expect("dmm produces a checksum");
        assert_eq!(got, expected, "the machine must compute the real product");
    }
}
