//! A synthetic allocation-churn workload (the "synthetic benchmark" of the
//! paper's §4.1), used to stress the collector directly: it allocates a
//! stream of short-lived objects while keeping a configurable fraction
//! alive, so the full minor → major → global promotion pipeline is
//! exercised at a controllable rate.

use crate::scale::Scale;
use mgc_heap::{i64_to_word, word_to_i64};
use mgc_runtime::{Checksum, Executor, Handle, Program, TaskResult, TaskSpec};
use serde::{Deserialize, Serialize};

/// Parameters of the churn workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnParams {
    /// Objects each parallel worker allocates.
    pub objects_per_worker: usize,
    /// Payload words per object.
    pub object_words: usize,
    /// One in `survive_every` objects is kept alive to the end of the run.
    pub survive_every: usize,
    /// Number of parallel workers.
    pub workers: usize,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            objects_per_worker: 20_000,
            object_words: 16,
            survive_every: 64,
            workers: 32,
        }
    }
}

impl ChurnParams {
    /// A fast configuration for unit tests.
    pub fn small() -> Self {
        ChurnParams {
            objects_per_worker: 2_000,
            object_words: 8,
            survive_every: 32,
            workers: 4,
        }
    }

    /// The benchmark preset: twice the paper-default object stream (32
    /// workers × 40,000 objects), which drives the full promotion pipeline
    /// hard enough for the run to be timing-meaningful.
    pub fn bench() -> Self {
        ChurnParams {
            objects_per_worker: 40_000,
            ..ChurnParams::default()
        }
    }

    /// The default configuration shrunk by `scale` (floors: 500 objects per
    /// worker, 4 workers); object size and survival rate are unaffected by
    /// scale.
    pub fn at_scale(scale: Scale) -> Self {
        if scale.is_bench() {
            return ChurnParams::bench();
        }
        let default = ChurnParams::default();
        ChurnParams {
            objects_per_worker: scale.apply(default.objects_per_worker, 500),
            workers: scale.apply(default.workers, 4),
            ..default
        }
    }
}

/// The synthetic allocation-churn benchmark as a [`Program`]. Every field of
/// [`ChurnParams`] is reachable here, so sweeps can dial allocation volume,
/// object size, survival rate, and parallelism independently.
#[derive(Debug, Clone, Copy)]
pub struct Churn {
    /// The run's parameters.
    pub params: ChurnParams,
}

impl Churn {
    /// A churn program with explicit parameters.
    pub fn new(params: ChurnParams) -> Self {
        Churn { params }
    }

    /// A churn program with the default parameters scaled by `scale`.
    pub fn at_scale(scale: Scale) -> Self {
        Churn::new(ChurnParams::at_scale(scale))
    }
}

impl Program for Churn {
    fn name(&self) -> &str {
        "Synthetic-Churn"
    }

    fn spawn(&self, machine: &mut dyn Executor) {
        spawn(machine, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::I64(expected_checksum_value(self.params)))
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"objects_per_worker\": {}, \"object_words\": {}, \"survive_every\": {}, \
             \"workers\": {}}}",
            self.params.objects_per_worker,
            self.params.object_words,
            self.params.survive_every,
            self.params.workers
        )
    }
}

/// Spawns the churn workload; the root result is the wrapping sum of every
/// payload word of every surviving object, so a survivor that is lost,
/// moved incorrectly, or corrupted in *any* word by the collector changes
/// the checksum.
pub fn spawn(machine: &mut dyn Executor, params: ChurnParams) {
    machine.spawn_root(TaskSpec::new("churn-root", move |ctx| {
        let children: Vec<_> = (0..params.workers)
            .map(|worker| {
                (
                    TaskSpec::new("churn-worker", move |ctx| {
                        let mut survivors: Vec<Handle> = Vec::new();
                        let base_mark = ctx.root_mark();
                        for i in 0..params.objects_per_worker {
                            let base = (worker * 1_000_000 + i) as i64;
                            let payload: Vec<_> = (0..params.object_words)
                                .map(|j| i64_to_word(base + j as i64))
                                .collect();
                            let obj = ctx.alloc_raw(&payload);
                            if i % params.survive_every == 0 {
                                survivors.push(obj);
                            } else {
                                // Drop everything allocated since the last
                                // survivor; the survivors keep their handles
                                // because handles index the root set, which
                                // only ever grows here.
                                let keep = survivors.len();
                                let _ = keep;
                                if survivors.is_empty() {
                                    ctx.truncate_roots(base_mark);
                                } else {
                                    ctx.truncate_roots(base_mark + survivors.len());
                                }
                            }
                            ctx.work(params.object_words as u64 * 4);
                        }
                        // Sum every word of every survivor: the real mutator
                        // work of this benchmark is touching its live data.
                        let mut sum = 0i64;
                        for handle in survivors.iter() {
                            for word in ctx.read_words(*handle) {
                                sum = sum.wrapping_add(word_to_i64(word));
                            }
                        }
                        TaskResult::Value(i64_to_word(sum))
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("churn-sum", |ctx| {
                let total = (0..ctx.num_values())
                    .map(|i| word_to_i64(ctx.value(i)))
                    .fold(0i64, i64::wrapping_add);
                TaskResult::Value(i64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
}

/// The number of survivors a correct run must keep alive.
pub fn expected_survivors(params: ChurnParams) -> i64 {
    (params.workers * params.objects_per_worker.div_ceil(params.survive_every)) as i64
}

/// The word-sum checksum a correct run must report: for every worker `w`,
/// every surviving index `i` (multiples of `survive_every`), and every
/// payload word `j`, the value `w * 1_000_000 + i + j`, wrapping-summed.
pub fn expected_checksum_value(params: ChurnParams) -> i64 {
    let mut sum = 0i64;
    for worker in 0..params.workers {
        for i in (0..params.objects_per_worker).step_by(params.survive_every) {
            let base = (worker * 1_000_000 + i) as i64;
            for j in 0..params.object_words {
                sum = sum.wrapping_add(base + j as i64);
            }
        }
    }
    sum
}

/// Reads the word-sum checksum of a finished churn run.
pub fn take_survivors(machine: &mut dyn Executor) -> Option<i64> {
    machine.take_result().map(|(word, _)| word_to_i64(word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Machine, MachineConfig};

    #[test]
    fn no_survivor_is_lost_or_corrupted_by_collection() {
        let params = ChurnParams::small();
        let mut machine = Machine::new(MachineConfig::small_for_tests(2));
        spawn(&mut machine, params);
        let report = machine.run();
        assert_eq!(
            take_survivors(&mut machine),
            Some(expected_checksum_value(params))
        );
        // The whole point of churn: it must actually collect.
        assert!(report.gc.minor_collections > 0);
        assert!(mgc_heap::verify_heap(machine.heap()).is_empty());
    }

    #[test]
    fn expected_survivors_counts_ceiling() {
        let p = ChurnParams {
            objects_per_worker: 10,
            survive_every: 3,
            workers: 2,
            object_words: 1,
        };
        assert_eq!(expected_survivors(p), 8);
    }

    #[test]
    fn expected_checksum_matches_hand_computed_tiny_case() {
        // 1 worker, 5 objects, survive every 2 → survivors i = 0, 2, 4;
        // 2 words each: (i + 0) + (i + 1). Sum = (0+1) + (2+3) + (4+5) = 15.
        let p = ChurnParams {
            objects_per_worker: 5,
            survive_every: 2,
            workers: 1,
            object_words: 2,
        };
        assert_eq!(expected_checksum_value(p), 15);
        // Second worker shifts every base by 1_000_000: 3 survivors × 2
        // words more, each 1_000_000 larger.
        let p2 = ChurnParams { workers: 2, ..p };
        assert_eq!(expected_checksum_value(p2), 15 + 15 + 6 * 1_000_000);
    }
}
