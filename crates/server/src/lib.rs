//! A long-running request-serving scenario over the Manticore runtime —
//! the "millions of users" workload the batch benchmarks never touch.
//!
//! [`ServerProgram`] runs N worker vprocs against a synthetic request
//! stream produced by a deterministic **open-loop** load generator (seeded
//! RNG; configurable arrival rate, session count, and request mix):
//!
//! * the root task pre-generates the whole arrival schedule, promotes a
//!   shared read-mostly **cache** to the global heap, and routes every
//!   request to its worker over the existing channels (messages are
//!   promoted on send, so the request stream itself exercises promotion
//!   and the placement policies);
//! * each worker owns a partition of the **sessions**; a request churns
//!   short-lived allocation in the worker's local heap, reads the shared
//!   cache, and functionally updates its session's state (a fresh session
//!   table per request — medium-lived survivors that drive steady-state
//!   minor/major collection);
//! * every request records an end-to-end latency sample — completion time
//!   minus *scheduled arrival* time, so queueing delay and GC pauses both
//!   land in the tail — into the run's
//!   [`LatencyStats`](mgc_runtime::LatencyStats);
//! * the run verifies a checksum over all served responses against a
//!   sequential reference, like every other program in the tree.
//!
//! On the **simulated** backend arrivals are virtual-time and the whole
//! run is deterministic: same seed, same `requests_served`, same checksum,
//! same latency histogram. On the **threaded** backend arrivals are paced
//! by the wall clock and the configured [`ServeParams::duration_secs`]
//! sets how long the stream runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mgc_heap::i64_to_word;
use mgc_runtime::{
    ChannelId, Checksum, ConfigError, EnvOverrides, Executor, Handle, Program, TaskResult, TaskSpec,
};
use serde::{Deserialize, Serialize};

/// Heavy requests allocate this many times the churn of light ones.
const HEAVY_FACTOR: usize = 4;

/// Salt mixed into the seed for the shared cache's contents.
const CACHE_SALT: u64 = 0xCAFE_F00D_u64;

/// Salt mixed into the seed for initial session-table contents.
const SESSION_SALT: u64 = 0x5E55_1011_5A17_0000;

/// The simulated-backend scheduling quantum serve experiments should use,
/// in virtual nanoseconds (pass it to `Experiment::quantum_ns`; it has no
/// effect on the threaded backend). Once a round's quantum is spent, the
/// simulated scheduler starts no further task on that vproc until the next
/// round — and a serve round is one full stream duration, because workers
/// run to completion. The generator's cost must therefore fit inside the
/// quantum with room for a worker behind it, or the worker sharing the
/// root's vproc starts a full stream duration late.
pub const SERVE_QUANTUM_NS: f64 = 50_000_000.0;

/// A tiny deterministic RNG (splitmix64): one `u64` of state, full-period,
/// and identical on every platform — the properties the load generator and
/// the sequential reference both depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The splitmix64 finalizer: a fast, well-mixed `u64 -> u64` permutation,
/// used directly wherever a value needs to be a pure function of its
/// coordinates (cache contents, initial session state).
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parameters of the serving scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeParams {
    /// Number of worker tasks serving requests (ideally one per vproc).
    pub workers: usize,
    /// Total number of sessions, partitioned over the workers
    /// (`session % workers`). Session state survives across requests.
    pub sessions: usize,
    /// Open-loop arrival rate, in requests per second. Overridable at run
    /// time via `MGC_SERVE_RPS` (see [`ServeParams::apply_env`]).
    pub rps: u64,
    /// How long the request stream runs, in seconds: wall-clock seconds on
    /// the threaded backend, virtual seconds on the simulated one. The
    /// total request count is `rps * duration_secs`. Overridable via
    /// `MGC_SERVE_SECONDS`.
    pub duration_secs: u64,
    /// Per-thousand fraction of requests that are "heavy" (allocate 4x
    /// the churn of a light request).
    pub heavy_permille: u64,
    /// Short-lived objects a light request allocates and immediately drops.
    pub churn_objects: usize,
    /// Payload words per churn object.
    pub payload_words: usize,
    /// Words of state per session.
    pub session_words: usize,
    /// Entries in the shared promoted cache (read-mostly, bounded; lives in
    /// the global heap and exercises the placement policies).
    pub cache_entries: usize,
    /// Payload words per cache entry.
    pub cache_entry_words: usize,
    /// Seed of the load generator.
    pub seed: u64,
}

impl Default for ServeParams {
    fn default() -> Self {
        ServeParams {
            workers: 4,
            sessions: 64,
            rps: 2_000,
            duration_secs: 5,
            heavy_permille: 125,
            churn_objects: 16,
            payload_words: 16,
            session_words: 4,
            cache_entries: 256,
            cache_entry_words: 16,
            seed: 0x5EED_0001,
        }
    }
}

impl ServeParams {
    /// A fast configuration for unit tests: a fraction of a virtual second
    /// of traffic over two workers.
    pub fn small() -> Self {
        ServeParams {
            workers: 2,
            sessions: 8,
            rps: 400,
            duration_secs: 1,
            heavy_permille: 250,
            churn_objects: 4,
            payload_words: 8,
            session_words: 2,
            cache_entries: 8,
            cache_entry_words: 8,
            seed: 0x5EED_0001,
        }
    }

    /// The benchmark preset: the defaults (4 workers, 64 sessions, 2,000
    /// req/s for 5 s — 10,000 requests).
    pub fn bench() -> Self {
        ServeParams::default()
    }

    /// Applies the `MGC_SERVE_SECONDS` / `MGC_SERVE_RPS` environment
    /// overrides (parsed once, in
    /// [`EnvOverrides`]) on top of these
    /// parameters. Unset or unparseable variables leave the field alone.
    pub fn apply_env(mut self, env: &EnvOverrides) -> Self {
        if let Some(secs) = env.serve_seconds {
            self.duration_secs = secs;
        }
        if let Some(rps) = env.serve_rps {
            self.rps = rps;
        }
        self
    }

    /// Validates the parameters into a typed error: a zero duration is
    /// [`ConfigError::ZeroServeSeconds`], a zero arrival rate is
    /// [`ConfigError::ZeroServeRps`], and a scenario with no workers, no
    /// sessions, or no cache entries is degenerate in the same two shapes
    /// (nothing would ever be served).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.duration_secs == 0 {
            return Err(ConfigError::ZeroServeSeconds);
        }
        if self.rps == 0 || self.workers == 0 || self.sessions == 0 {
            return Err(ConfigError::ZeroServeRps);
        }
        Ok(())
    }

    /// Total requests the generator emits: `rps * duration_secs`.
    pub fn total_requests(&self) -> u64 {
        self.rps.saturating_mul(self.duration_secs)
    }

    /// Nanoseconds between consecutive arrivals (at least 1).
    fn gap_ns(&self) -> u64 {
        (1_000_000_000 / self.rps).max(1)
    }

    /// Number of sessions assigned to `worker`.
    fn sessions_of(&self, worker: usize) -> usize {
        (self.sessions + self.workers - 1 - worker) / self.workers
    }

    /// Initial contents of `worker`'s session table: `session_words` words
    /// per owned session, word 0 of each block being the running state.
    fn initial_table(&self, worker: usize) -> Vec<u64> {
        let mut table = Vec::with_capacity(self.sessions_of(worker) * self.session_words);
        for session in (worker..self.sessions).step_by(self.workers) {
            for i in 0..self.session_words {
                table.push(mix64(
                    self.seed ^ SESSION_SALT ^ (session * self.session_words + i) as u64,
                ));
            }
        }
        table
    }

    /// The `i`-th word of cache entry `j` — a pure function of the seed, so
    /// the sequential reference never touches a heap.
    fn cache_word(&self, entry: usize, i: usize) -> u64 {
        mix64(self.seed ^ CACHE_SALT ^ (entry * self.cache_entry_words + i) as u64)
    }
}

/// One scheduled request, as the deterministic generator emits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Request {
    /// The session this request belongs to (`session % workers` routes it).
    session: u64,
    /// Whether this is a heavy request.
    heavy: bool,
    /// Seed of the request's churn payload.
    payload_seed: u64,
    /// Scheduled arrival, in nanoseconds after the stream's epoch.
    offset_ns: u64,
}

/// The full open-loop arrival schedule for `params` — both the root task's
/// generator and the sequential reference derive it, identically, from the
/// seed.
fn schedule(params: &ServeParams) -> Vec<Request> {
    let mut rng = SplitMix64::new(params.seed);
    let gap = params.gap_ns();
    (0..params.total_requests())
        .map(|k| {
            let session = rng.next_u64() % params.sessions as u64;
            let heavy = rng.next_u64() % 1000 < params.heavy_permille;
            let payload_seed = rng.next_u64();
            let jitter = rng.next_u64() % gap;
            Request {
                session,
                heavy,
                payload_seed,
                offset_ns: k * gap + jitter,
            }
        })
        .collect()
}

/// The wrapping word-sum of one request's churn payload — the same values
/// the worker writes into (and reads back out of) its short-lived objects.
fn churn_sum(params: &ServeParams, payload_seed: u64, heavy: bool) -> u64 {
    let reps = if heavy {
        params.churn_objects * HEAVY_FACTOR
    } else {
        params.churn_objects
    };
    let mut rng = SplitMix64::new(payload_seed);
    let mut sum = 0u64;
    for _ in 0..reps * params.payload_words {
        sum = sum.wrapping_add(rng.next_u64());
    }
    sum
}

/// One request's response word given the session's current state and the
/// cache word it reads; also returns the session's next state. The worker
/// computes this from heap reads, the reference from pure arithmetic — any
/// object the collector loses or corrupts diverges the two.
fn respond(old_state: u64, churn: u64, cache_word: u64, heavy: bool) -> (u64, u64) {
    let response = mix64(old_state ^ churn ^ cache_word).wrapping_add(if heavy {
        HEAVY_FACTOR as u64
    } else {
        1
    });
    (response, old_state.wrapping_add(response))
}

/// The i64 checksum a correct run must report: the wrapping sum of every
/// response plus, per worker, every word of its final session table.
pub fn expected_checksum_value(params: &ServeParams) -> i64 {
    let mut tables: Vec<Vec<u64>> = (0..params.workers)
        .map(|w| params.initial_table(w))
        .collect();
    let mut sum = 0i64;
    for req in schedule(params) {
        let worker = (req.session as usize) % params.workers;
        let local = (req.session as usize) / params.workers;
        let state_idx = local * params.session_words;
        let cache_idx = (req.payload_seed % params.cache_entries as u64) as usize;
        let word_idx = ((req.payload_seed >> 32) % params.cache_entry_words as u64) as usize;
        let cache_word = params.cache_word(cache_idx, word_idx);
        let churn = churn_sum(params, req.payload_seed, req.heavy);
        let (response, next) = respond(tables[worker][state_idx], churn, cache_word, req.heavy);
        tables[worker][state_idx] = next;
        sum = sum.wrapping_add(response as i64);
    }
    for table in &tables {
        for &word in table {
            sum = sum.wrapping_add(word as i64);
        }
    }
    sum
}

/// The request-serving scenario as a [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct ServerProgram {
    /// The run's parameters (validated by [`ServerProgram::new`]).
    pub params: ServeParams,
}

impl ServerProgram {
    /// A serving program with explicit, validated parameters.
    pub fn new(params: ServeParams) -> Result<Self, ConfigError> {
        params.validate()?;
        Ok(ServerProgram { params })
    }

    /// The unit-test preset ([`ServeParams::small`]).
    pub fn small() -> Self {
        ServerProgram {
            params: ServeParams::small(),
        }
    }

    /// The benchmark preset ([`ServeParams::bench`]).
    pub fn bench() -> Self {
        ServerProgram {
            params: ServeParams::bench(),
        }
    }
}

impl Program for ServerProgram {
    fn name(&self) -> &str {
        "Request-Server"
    }

    fn spawn(&self, executor: &mut dyn Executor) {
        spawn(executor, self.params);
    }

    fn expected_checksum(&self) -> Option<Checksum> {
        Some(Checksum::I64(expected_checksum_value(&self.params)))
    }

    fn params_json(&self) -> String {
        let p = &self.params;
        format!(
            "{{\"workers\": {}, \"sessions\": {}, \"rps\": {}, \"duration_secs\": {}, \
             \"heavy_permille\": {}, \"churn_objects\": {}, \"payload_words\": {}, \
             \"session_words\": {}, \"cache_entries\": {}, \"cache_entry_words\": {}, \
             \"seed\": {}}}",
            p.workers,
            p.sessions,
            p.rps,
            p.duration_secs,
            p.heavy_permille,
            p.churn_objects,
            p.payload_words,
            p.session_words,
            p.cache_entries,
            p.cache_entry_words,
            p.seed
        )
    }
}

/// The body of one serve worker: drain `count` requests from `requests`,
/// pacing each to its scheduled arrival past `epoch_ns` and recording its
/// end-to-end latency; returns the worker's response checksum.
fn worker_body(
    ctx: &mut mgc_runtime::TaskCtx<'_>,
    params: ServeParams,
    worker: usize,
    count: u64,
    requests: ChannelId,
    cache: ChannelId,
) -> TaskResult {
    // Root slot 0: the shared cache's pointer vector (promoted once by the
    // generator; every worker receives the same object).
    let cache_vec = ctx
        .recv(cache)
        .expect("the generator sends the cache before the workers spawn");
    debug_assert_eq!(cache_vec.index(), 0);
    // Root slot 1: this worker's session table. It is re-allocated (a
    // functional update) on every request; `keep` swaps the fresh table
    // into the same root slot.
    let table_words: Vec<u64> = params.initial_table(worker);
    let mut table = ctx.alloc_raw(&table_words);
    let mark = ctx.root_mark(); // == 2
    let mut sum = 0i64;
    // The worker's stream epoch: arrival deadlines are `epoch + offset` on
    // the worker's own clock, so pacing (and therefore the open-loop
    // property — arrivals never wait for service) holds no matter when the
    // scheduler actually started this worker.
    let epoch_ns = ctx.now_ns();
    for _ in 0..count {
        // Slot 2: the request object [session, heavy, payload_seed, offset].
        let req = ctx
            .recv(requests)
            .expect("the generator queued every request before the workers spawned");
        let words = ctx.read_words(req);
        let (session, heavy, payload_seed, offset_ns) =
            (words[0], words[1] != 0, words[2], words[3]);
        let arrival_ns = epoch_ns + offset_ns as f64;
        ctx.wait_until_ns(arrival_ns);

        // Per-request churn: short-lived objects allocated, read back, and
        // dropped immediately — the steady mutation GC must keep up with.
        let reps = if heavy {
            params.churn_objects * HEAVY_FACTOR
        } else {
            params.churn_objects
        };
        let mut rng = SplitMix64::new(payload_seed);
        let mut churn = 0u64;
        for _ in 0..reps {
            let payload: Vec<u64> = (0..params.payload_words).map(|_| rng.next_u64()).collect();
            let obj = ctx.alloc_raw(&payload);
            for word in ctx.read_words(obj) {
                churn = churn.wrapping_add(word);
            }
            ctx.truncate_roots(mark + 1);
            ctx.work(params.payload_words as u64 * 4);
        }

        // Read-mostly shared state: one word of one promoted cache entry.
        let cache_idx = (payload_seed % params.cache_entries as u64) as usize;
        let word_idx = ((payload_seed >> 32) % params.cache_entry_words as u64) as usize;
        let entry = ctx
            .read_ptr(cache_vec, cache_idx)
            .expect("cache entries are never null");
        let cache_word = ctx.read_raw(entry, word_idx);

        // Functional session update: read the table, compute the response,
        // allocate the successor table, and swap it into root slot 1.
        let local = (session as usize) / params.workers;
        let state_idx = local * params.session_words;
        let mut current = ctx.read_words(table);
        let (response, next) = respond(current[state_idx], churn, cache_word, heavy);
        current[state_idx] = next;
        let successor = ctx.alloc_raw(&current);
        table = ctx.keep(successor, mark - 1);
        sum = sum.wrapping_add(response as i64);

        let completion_ns = ctx.now_ns();
        ctx.record_latency_ns(completion_ns - arrival_ns);
    }
    // Fold the surviving session state into the checksum so a table word
    // the collector corrupted is caught even if no later request read it.
    for word in ctx.read_words(table) {
        sum = sum.wrapping_add(word as i64);
    }
    TaskResult::Value(i64_to_word(sum))
}

/// Spawns the serving scenario: the root task builds the promoted cache,
/// pre-generates and routes the whole arrival schedule, then fork/joins one
/// worker per partition; the continuation folds the workers' checksums.
pub fn spawn(executor: &mut dyn Executor, params: ServeParams) {
    let request_channels: Vec<ChannelId> = (0..params.workers)
        .map(|_| executor.create_channel())
        .collect();
    let cache_channel = executor.create_channel();
    executor.spawn_root(TaskSpec::new("serve-root", move |ctx| {
        // The shared cache: `cache_entries` raw objects behind one pointer
        // vector. Sending the vector promotes the whole graph to the global
        // heap once; each worker receives a handle to the same object.
        let cache_mark = ctx.root_mark();
        let entries: Vec<Option<Handle>> = (0..params.cache_entries)
            .map(|j| {
                let words: Vec<u64> = (0..params.cache_entry_words)
                    .map(|i| params.cache_word(j, i))
                    .collect();
                Some(ctx.alloc_raw(&words))
            })
            .collect();
        let cache_vec = ctx.alloc_vector(&entries);
        for _ in 0..params.workers {
            ctx.send(cache_channel, cache_vec);
        }
        ctx.truncate_roots(cache_mark);

        // The open-loop generator: every request is scheduled, materialised,
        // and routed up front (sends promote each request object), so the
        // arrival schedule is independent of how fast the workers serve —
        // exactly the open-loop property that makes queueing delay and GC
        // pauses visible in the latency tail.
        let mut counts = vec![0u64; params.workers];
        let gen_mark = ctx.root_mark();
        for req in schedule(&params) {
            let worker = (req.session as usize) % params.workers;
            let obj = ctx.alloc_raw(&[
                req.session,
                u64::from(req.heavy),
                req.payload_seed,
                req.offset_ns,
            ]);
            ctx.send(request_channels[worker], obj);
            ctx.truncate_roots(gen_mark);
            counts[worker] += 1;
        }

        let children: Vec<(TaskSpec, Vec<Handle>)> = (0..params.workers)
            .map(|worker| {
                let count = counts[worker];
                let requests = request_channels[worker];
                (
                    TaskSpec::new("serve-worker", move |ctx| {
                        worker_body(ctx, params, worker, count, requests, cache_channel)
                    }),
                    vec![],
                )
            })
            .collect();
        ctx.fork_join(
            children,
            TaskSpec::new("serve-sum", |ctx| {
                let total = (0..ctx.num_values())
                    .map(|i| mgc_heap::word_to_i64(ctx.value(i)))
                    .fold(0i64, i64::wrapping_add);
                TaskResult::Value(i64_to_word(total))
            }),
            &[],
        );
        TaskResult::Unit
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_runtime::{Backend, Experiment};

    fn sim_record(params: ServeParams) -> mgc_runtime::RunRecord {
        Experiment::new(ServerProgram::new(params).unwrap())
            .backend(Backend::Simulated)
            .vprocs(2)
            .quantum_ns(SERVE_QUANTUM_NS)
            .env_overrides(EnvOverrides::default())
            .run()
            .expect("valid serve config")
    }

    #[test]
    fn schedule_is_deterministic_and_paced() {
        let params = ServeParams::small();
        let a = schedule(&params);
        let b = schedule(&params);
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, params.total_requests());
        // Offsets are strictly ordered by index (jitter stays within the
        // inter-arrival gap) and every session routes to a real worker.
        for (k, pair) in a.windows(2).enumerate() {
            assert!(pair[0].offset_ns < pair[1].offset_ns, "at index {k}");
        }
        assert!(a.iter().all(|r| (r.session as usize) < params.sessions));
        assert!(a.iter().any(|r| r.heavy) && a.iter().any(|r| !r.heavy));
    }

    #[test]
    fn params_validate_to_typed_errors() {
        let mut p = ServeParams::small();
        p.duration_secs = 0;
        assert_eq!(p.validate(), Err(ConfigError::ZeroServeSeconds));
        let mut p = ServeParams::small();
        p.rps = 0;
        assert_eq!(p.validate(), Err(ConfigError::ZeroServeRps));
        assert!(ServeParams::small().validate().is_ok());
        assert!(ServerProgram::new(p).is_err());
    }

    #[test]
    fn env_overrides_apply_to_duration_and_rate_only() {
        let env = EnvOverrides {
            serve_seconds: Some(9),
            serve_rps: Some(123),
            ..EnvOverrides::default()
        };
        let p = ServeParams::small().apply_env(&env);
        assert_eq!(p.duration_secs, 9);
        assert_eq!(p.rps, 123);
        let q = ServeParams::small().apply_env(&EnvOverrides::default());
        assert_eq!(q, ServeParams::small());
    }

    #[test]
    fn session_partition_covers_every_session_once() {
        let params = ServeParams::small();
        let total: usize = (0..params.workers).map(|w| params.sessions_of(w)).sum();
        assert_eq!(total, params.sessions);
        assert_eq!(
            params.initial_table(0).len(),
            params.sessions_of(0) * params.session_words
        );
    }

    #[test]
    fn served_checksum_matches_the_sequential_reference() {
        let record = sim_record(ServeParams::small());
        assert_eq!(record.checksum_ok, Some(true));
        assert_eq!(
            record.report.requests_served(),
            ServeParams::small().total_requests()
        );
        assert!(record.report.throughput_rps() > 0.0);
        assert!(record.report.latency_stats().max_ns > 0.0);
    }

    #[test]
    fn simulated_runs_are_deterministic_for_a_fixed_seed() {
        let a = sim_record(ServeParams::small());
        let b = sim_record(ServeParams::small());
        assert_eq!(a.result, b.result);
        assert_eq!(a.report.requests_served(), b.report.requests_served());
        // The whole latency histogram is pinned, not just the summary: two
        // runs with the same seed must be indistinguishable.
        assert_eq!(a.report.latency_stats(), b.report.latency_stats());
        // And a different seed must actually change the stream.
        let mut other = ServeParams::small();
        other.seed ^= 0xDEAD_BEEF;
        let c = sim_record(other);
        assert_ne!(a.result, c.result);
    }

    #[test]
    fn threaded_backend_serves_the_same_checksum() {
        // A sub-second threaded run: 200 requests at 2,000 req/s. This is
        // the cross-backend equivalence check for the serving scenario.
        let params = ServeParams {
            workers: 2,
            sessions: 8,
            rps: 2_000,
            duration_secs: 1,
            ..ServeParams::small()
        };
        let record = Experiment::new(ServerProgram::new(params).unwrap())
            .backend(Backend::Threaded)
            .vprocs(2)
            .env_overrides(EnvOverrides::default())
            .run()
            .expect("valid serve config");
        assert_eq!(record.checksum_ok, Some(true));
        assert_eq!(record.report.requests_served(), params.total_requests());
        assert!(record.report.latency_stats().max_ns > 0.0);
        // The threaded run is paced by the wall clock: it cannot finish
        // before the last scheduled arrival.
        assert!(record.report.wall_clock_ns.unwrap() > 0.9e9);
    }
}
