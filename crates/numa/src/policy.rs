//! Physical page / chunk placement policies (paper §4.3).
//!
//! The paper compares three strategies for deciding which NUMA node backs a
//! freshly-allocated region of the heap:
//!
//! * **Local** — allocate on the node of the vproc that requested the memory
//!   (Manticore's default; Figure 5).
//! * **Interleaved** — round-robin pages across all nodes, the strategy used
//!   by the Glasgow Haskell Compiler at the time (Figure 6).
//! * **SocketZero** — allocate everything on node 0, the default behaviour a
//!   single-threaded collector sees (Figure 7).
//!
//! `FirstTouch` is also provided: it resolves to the requesting node exactly
//! like `Local`, but is kept distinct because operating systems expose it as
//! a separate policy and ablations may want to treat faulting cost
//! differently.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which node should back a new page or global-heap chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Allocate on the node of the requesting vproc (the paper's default).
    #[default]
    Local,
    /// Round-robin allocations across all nodes (GHC-style).
    Interleaved,
    /// Allocate everything on node 0.
    SocketZero,
    /// Allocate on the node that first touches the page; identical to
    /// [`AllocPolicy::Local`] in this model because the requester always
    /// touches its allocation immediately.
    FirstTouch,
}

impl AllocPolicy {
    /// All policies, in the order the paper discusses them.
    pub const ALL: [AllocPolicy; 4] = [
        AllocPolicy::Local,
        AllocPolicy::Interleaved,
        AllocPolicy::SocketZero,
        AllocPolicy::FirstTouch,
    ];

    /// A short lowercase label, useful for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            AllocPolicy::Local => "local",
            AllocPolicy::Interleaved => "interleaved",
            AllocPolicy::SocketZero => "socket0",
            AllocPolicy::FirstTouch => "first-touch",
        }
    }
}

impl std::fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for AllocPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "local" => Ok(AllocPolicy::Local),
            "interleaved" | "interleave" => Ok(AllocPolicy::Interleaved),
            "socket0" | "socket-zero" | "socketzero" => Ok(AllocPolicy::SocketZero),
            "first-touch" | "firsttouch" => Ok(AllocPolicy::FirstTouch),
            other => Err(format!("unknown allocation policy `{other}`")),
        }
    }
}

/// Where the *global-heap chunks* that receive promoted objects are placed,
/// node-wise (the threaded backend's promotion-at-steal placement knob).
///
/// [`AllocPolicy`] governs where *pages* land when a region is first
/// allocated; `PlacementPolicy` governs which node's chunk pool a worker
/// leases promotion chunks from — in particular whether the victim of a
/// steal promotes the stolen task's graph into a chunk on **its own** node
/// or on the **thief's** node:
///
/// * [`PlacementPolicy::NodeLocal`] — lease from the *consumer's* node: at a
///   steal handoff the stolen graph lands on the thief's node (where it is
///   about to be traversed); publication-driven promotions stay on the
///   promoting worker's node. This is the paper-faithful locality-first
///   choice and the default.
/// * [`PlacementPolicy::Interleave`] — round-robin chunk leases across all
///   nodes (the GHC-style strategy, the locality-blind baseline the figure-8
///   sweep compares against).
/// * [`PlacementPolicy::FirstTouch`] — lease from the node of the worker
///   performing the promotion (the "first toucher"): at a steal handoff the
///   stolen graph lands on the *victim's* node, mirroring what a first-touch
///   operating-system policy would do to pages the victim writes.
/// * [`PlacementPolicy::Adaptive`] — start locality-blind, then let each
///   worker's [`AdaptiveController`](crate::AdaptiveController) pick between
///   the `NodeLocal` and `Interleave` behaviours at runtime by sampling the
///   live local/remote promoted-bytes ledger, with hysteresis so the mode
///   cannot flap. The runtime resolves `Adaptive` to one of the two static
///   behaviours *before* every chunk lease, so the heap layer below only
///   ever sees an effective static policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Lease chunks from the consuming worker's node (thief-node at steal).
    #[default]
    NodeLocal,
    /// Round-robin chunk leases across all nodes.
    Interleave,
    /// Lease chunks from the promoting worker's node (victim-node at steal).
    FirstTouch,
    /// Switch between `NodeLocal` and `Interleave` at runtime, driven by the
    /// per-phase promoted-bytes locality ledger.
    Adaptive,
}

impl PlacementPolicy {
    /// Every policy, in comparison order (`NodeLocal` vs `Interleave` vs
    /// `Adaptive` is the figure-8 axis).
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::NodeLocal,
        PlacementPolicy::Interleave,
        PlacementPolicy::FirstTouch,
        PlacementPolicy::Adaptive,
    ];

    /// A short lowercase label, used by `--placement` flags and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::NodeLocal => "node-local",
            PlacementPolicy::Interleave => "interleave",
            PlacementPolicy::FirstTouch => "first-touch",
            PlacementPolicy::Adaptive => "adaptive",
        }
    }

    /// True when the policy binds a chunk lease to one specific node (so a
    /// current chunk on the wrong node must be retired before promoting);
    /// `Interleave` deliberately does not. `Adaptive` reports `true` because
    /// its node-local mode binds — while its controller is in interleave
    /// mode the runtime substitutes an effective `Interleave` before any
    /// lease, so this method is never consulted for that mode.
    pub fn binds_node(self) -> bool {
        !matches!(self, PlacementPolicy::Interleave)
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "node-local" | "node_local" | "nodelocal" => Ok(PlacementPolicy::NodeLocal),
            "interleave" | "interleaved" => Ok(PlacementPolicy::Interleave),
            "first-touch" | "first_touch" | "firsttouch" => Ok(PlacementPolicy::FirstTouch),
            "adaptive" => Ok(PlacementPolicy::Adaptive),
            other => Err(format!(
                "unknown placement policy `{other}` (expected `node-local`, `interleave`, \
                 `first-touch`, or `adaptive`)"
            )),
        }
    }
}

/// Stateful placer that applies an [`AllocPolicy`].
///
/// The only policy that needs state is `Interleaved`, which keeps a
/// round-robin cursor; the cursor is atomic so a placer can be shared between
/// threads (the real-thread GC tests do this).
#[derive(Debug)]
pub struct PagePlacer {
    policy: AllocPolicy,
    num_nodes: usize,
    cursor: AtomicUsize,
}

impl PagePlacer {
    /// Creates a placer for a machine with `num_nodes` NUMA nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(policy: AllocPolicy, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "a machine must have at least one node");
        PagePlacer {
            policy,
            num_nodes,
            cursor: AtomicUsize::new(0),
        }
    }

    /// The policy this placer applies.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Number of nodes this placer distributes over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Decides the backing node for a new page or chunk requested by a vproc
    /// running on `requesting` node.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mgc_numa::{PagePlacer, AllocPolicy, NodeId};
    /// let p = PagePlacer::new(AllocPolicy::SocketZero, 8);
    /// assert_eq!(p.place(NodeId::new(5)), NodeId::new(0));
    /// ```
    pub fn place(&self, requesting: NodeId) -> NodeId {
        match self.policy {
            AllocPolicy::Local | AllocPolicy::FirstTouch => requesting,
            AllocPolicy::SocketZero => NodeId::new(0),
            AllocPolicy::Interleaved => {
                let next = self.cursor.fetch_add(1, Ordering::Relaxed);
                NodeId::new((next % self.num_nodes) as u16)
            }
        }
    }

    /// Resets the interleave cursor (no effect for other policies). Useful
    /// for reproducible simulation runs.
    pub fn reset(&self) {
        self.cursor.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_places_on_requester() {
        let p = PagePlacer::new(AllocPolicy::Local, 8);
        for n in 0..8u16 {
            assert_eq!(p.place(NodeId::new(n)), NodeId::new(n));
        }
    }

    #[test]
    fn first_touch_matches_local() {
        let p = PagePlacer::new(AllocPolicy::FirstTouch, 4);
        assert_eq!(p.place(NodeId::new(2)), NodeId::new(2));
    }

    #[test]
    fn socket_zero_always_node_zero() {
        let p = PagePlacer::new(AllocPolicy::SocketZero, 8);
        for n in 0..8u16 {
            assert_eq!(p.place(NodeId::new(n)), NodeId::new(0));
        }
    }

    #[test]
    fn interleaved_round_robins_regardless_of_requester() {
        let p = PagePlacer::new(AllocPolicy::Interleaved, 4);
        let placements: Vec<_> = (0..8).map(|_| p.place(NodeId::new(3)).index()).collect();
        assert_eq!(placements, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        p.reset();
        assert_eq!(p.place(NodeId::new(0)).index(), 0);
    }

    #[test]
    fn interleaved_is_balanced_over_many_placements() {
        let p = PagePlacer::new(AllocPolicy::Interleaved, 8);
        let mut counts = [0usize; 8];
        for _ in 0..800 {
            counts[p.place(NodeId::new(0)).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn policy_parses_from_str() {
        assert_eq!("local".parse::<AllocPolicy>().unwrap(), AllocPolicy::Local);
        assert_eq!(
            "Interleaved".parse::<AllocPolicy>().unwrap(),
            AllocPolicy::Interleaved
        );
        assert_eq!(
            "socket0".parse::<AllocPolicy>().unwrap(),
            AllocPolicy::SocketZero
        );
        assert!("bogus".parse::<AllocPolicy>().is_err());
    }

    #[test]
    fn labels_are_stable() {
        for p in AllocPolicy::ALL {
            assert_eq!(p.label().parse::<AllocPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_machine_rejected() {
        let _ = PagePlacer::new(AllocPolicy::Local, 0);
    }

    #[test]
    fn placement_policy_labels_round_trip() {
        for p in PlacementPolicy::ALL {
            assert_eq!(p.label().parse::<PlacementPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::NodeLocal);
        assert_eq!(
            "interleaved".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::Interleave
        );
        assert_eq!(
            "NODE-LOCAL".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::NodeLocal
        );
        assert!("bogus".parse::<PlacementPolicy>().is_err());
    }

    #[test]
    fn placement_policy_node_binding() {
        assert!(PlacementPolicy::NodeLocal.binds_node());
        assert!(PlacementPolicy::FirstTouch.binds_node());
        assert!(!PlacementPolicy::Interleave.binds_node());
        assert!(PlacementPolicy::Adaptive.binds_node());
    }

    #[test]
    fn adaptive_parses_and_labels() {
        assert_eq!(
            "adaptive".parse::<PlacementPolicy>().unwrap(),
            PlacementPolicy::Adaptive
        );
        assert_eq!(PlacementPolicy::Adaptive.label(), "adaptive");
        assert_eq!(PlacementPolicy::ALL.len(), 4);
    }
}
