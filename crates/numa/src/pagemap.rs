//! Mapping from simulated physical pages to NUMA nodes.
//!
//! The heap hands out addresses in a flat simulated address space; the
//! [`PageMap`] remembers which node each page of that space was placed on, so
//! later accesses can be charged to the right memory controller and link.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Size of a simulated physical page, in bytes (4 KiB, matching x86-64).
pub const PAGE_SIZE: usize = 4096;

/// Tracks the backing node of every page of the simulated address space.
///
/// The address space is sparse in principle, but in this reproduction the
/// heap allocates addresses densely from zero, so a simple growable vector
/// indexed by page number suffices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PageMap {
    nodes: Vec<Option<NodeId>>,
}

impl PageMap {
    /// Creates an empty page map.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mgc_numa::{PageMap, NodeId};
    /// let mut pm = PageMap::new();
    /// pm.place(0, 8192, NodeId::new(1));
    /// assert_eq!(pm.node_of(4096), Some(NodeId::new(1)));
    /// assert_eq!(pm.node_of(100_000), None);
    /// ```
    pub fn new() -> Self {
        PageMap { nodes: Vec::new() }
    }

    /// Number of pages that have been placed.
    pub fn mapped_pages(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Records that the byte range `[base, base + len)` is backed by `node`.
    /// Partial pages at either end are attributed to `node` as well.
    pub fn place(&mut self, base: u64, len: usize, node: NodeId) {
        if len == 0 {
            return;
        }
        let first = (base as usize) / PAGE_SIZE;
        let last = ((base as usize) + len - 1) / PAGE_SIZE;
        if self.nodes.len() <= last {
            self.nodes.resize(last + 1, None);
        }
        for page in first..=last {
            self.nodes[page] = Some(node);
        }
    }

    /// Removes the placement of the byte range `[base, base + len)`,
    /// modelling the pages being returned to the OS.
    pub fn unplace(&mut self, base: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = (base as usize) / PAGE_SIZE;
        let last = ((base as usize) + len - 1) / PAGE_SIZE;
        for page in first..=last.min(self.nodes.len().saturating_sub(1)) {
            self.nodes[page] = None;
        }
    }

    /// Returns the node backing the page containing `addr`, if placed.
    pub fn node_of(&self, addr: u64) -> Option<NodeId> {
        self.nodes
            .get((addr as usize) / PAGE_SIZE)
            .copied()
            .flatten()
    }

    /// Bytes resident on each node, indexed by node id. The vector is sized
    /// by the largest node id seen.
    pub fn resident_bytes_per_node(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = Vec::new();
        for node in self.nodes.iter().flatten() {
            if counts.len() <= node.index() {
                counts.resize(node.index() + 1, 0);
            }
            counts[node.index()] += PAGE_SIZE;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_lookup() {
        let mut pm = PageMap::new();
        pm.place(0, PAGE_SIZE * 2, NodeId::new(3));
        assert_eq!(pm.node_of(0), Some(NodeId::new(3)));
        assert_eq!(pm.node_of((PAGE_SIZE * 2 - 1) as u64), Some(NodeId::new(3)));
        assert_eq!(pm.node_of((PAGE_SIZE * 2) as u64), None);
        assert_eq!(pm.mapped_pages(), 2);
    }

    #[test]
    fn partial_pages_are_attributed() {
        let mut pm = PageMap::new();
        pm.place(100, 10, NodeId::new(1));
        assert_eq!(pm.node_of(0), Some(NodeId::new(1)));
        assert_eq!(pm.node_of(4000), Some(NodeId::new(1)));
        assert_eq!(pm.mapped_pages(), 1);
    }

    #[test]
    fn zero_length_place_is_noop() {
        let mut pm = PageMap::new();
        pm.place(0, 0, NodeId::new(1));
        assert_eq!(pm.mapped_pages(), 0);
    }

    #[test]
    fn unplace_releases_pages() {
        let mut pm = PageMap::new();
        pm.place(0, PAGE_SIZE * 4, NodeId::new(2));
        pm.unplace(PAGE_SIZE as u64, PAGE_SIZE * 2);
        assert_eq!(pm.node_of(0), Some(NodeId::new(2)));
        assert_eq!(pm.node_of(PAGE_SIZE as u64), None);
        assert_eq!(pm.node_of((3 * PAGE_SIZE) as u64), Some(NodeId::new(2)));
        assert_eq!(pm.mapped_pages(), 2);
    }

    #[test]
    fn resident_bytes_accounting() {
        let mut pm = PageMap::new();
        pm.place(0, PAGE_SIZE * 3, NodeId::new(0));
        pm.place((PAGE_SIZE * 3) as u64, PAGE_SIZE, NodeId::new(2));
        let resident = pm.resident_bytes_per_node();
        assert_eq!(resident[0], 3 * PAGE_SIZE);
        assert_eq!(resident[1], 0);
        assert_eq!(resident[2], PAGE_SIZE);
    }

    #[test]
    fn replacement_overwrites_node() {
        let mut pm = PageMap::new();
        pm.place(0, PAGE_SIZE, NodeId::new(0));
        pm.place(0, PAGE_SIZE, NodeId::new(5));
        assert_eq!(pm.node_of(10), Some(NodeId::new(5)));
    }
}
