//! Traffic accounting, broken down by locality class.
//!
//! The paper's analysis (§4.2–4.3) reasons about how much of each
//! benchmark's traffic stays on the local memory controller versus crossing
//! HyperTransport/QPI links; [`TrafficStats`] provides that breakdown for a
//! simulation run.

use serde::{Deserialize, Serialize};

/// Locality class of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// Access to the node's own DRAM.
    Local,
    /// Access to the sibling node within the same package.
    SamePackage,
    /// Access to a node on a different package.
    CrossPackage,
}

impl AccessClass {
    /// All classes, from nearest to farthest.
    pub const ALL: [AccessClass; 3] = [
        AccessClass::Local,
        AccessClass::SamePackage,
        AccessClass::CrossPackage,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Local => "local",
            AccessClass::SamePackage => "same-package",
            AccessClass::CrossPackage => "cross-package",
        }
    }
}

impl std::fmt::Display for AccessClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cumulative traffic statistics for a run, split by locality class and by
/// whether the traffic came from the mutator or the garbage collector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Mutator bytes by class `[local, same-package, cross-package]`.
    pub mutator_bytes: [u64; 3],
    /// GC bytes by class `[local, same-package, cross-package]`.
    pub gc_bytes: [u64; 3],
}

impl TrafficStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records mutator traffic of `bytes` in class `class`.
    pub fn record_mutator(&mut self, class: AccessClass, bytes: u64) {
        self.mutator_bytes[class as usize] += bytes;
    }

    /// Records GC traffic of `bytes` in class `class`.
    pub fn record_gc(&mut self, class: AccessClass, bytes: u64) {
        self.gc_bytes[class as usize] += bytes;
    }

    /// Total bytes moved (mutator plus GC).
    pub fn total_bytes(&self) -> u64 {
        self.mutator_bytes.iter().sum::<u64>() + self.gc_bytes.iter().sum::<u64>()
    }

    /// Total bytes of a class, mutator plus GC.
    pub fn bytes_of(&self, class: AccessClass) -> u64 {
        self.mutator_bytes[class as usize] + self.gc_bytes[class as usize]
    }

    /// Fraction of all traffic that stayed node-local. Returns 1.0 for an
    /// empty record (no traffic is perfectly local).
    pub fn local_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 1.0;
        }
        self.bytes_of(AccessClass::Local) as f64 / total as f64
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..3 {
            self.mutator_bytes[i] += other.mutator_bytes[i];
            self.gc_bytes[i] += other.gc_bytes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = TrafficStats::new();
        s.record_mutator(AccessClass::Local, 100);
        s.record_mutator(AccessClass::CrossPackage, 50);
        s.record_gc(AccessClass::Local, 25);
        assert_eq!(s.total_bytes(), 175);
        assert_eq!(s.bytes_of(AccessClass::Local), 125);
        assert_eq!(s.bytes_of(AccessClass::SamePackage), 0);
        assert!((s.local_fraction() - 125.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_fully_local() {
        assert_eq!(TrafficStats::new().local_fraction(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::new();
        a.record_mutator(AccessClass::Local, 10);
        let mut b = TrafficStats::new();
        b.record_gc(AccessClass::SamePackage, 20);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.bytes_of(AccessClass::SamePackage), 20);
    }

    #[test]
    fn class_labels() {
        assert_eq!(AccessClass::Local.to_string(), "local");
        assert_eq!(AccessClass::SamePackage.label(), "same-package");
        assert_eq!(AccessClass::CrossPackage.label(), "cross-package");
        assert_eq!(AccessClass::ALL.len(), 3);
    }
}
