//! The runtime controller behind [`PlacementPolicy::Adaptive`]: a
//! deterministic hysteresis state machine over the live promoted-bytes
//! locality ledger.
//!
//! Every worker (vproc) owns one [`AdaptiveController`]. The runtime
//! consults it immediately before each promotion
//! ([`AdaptiveController::placement_for_next_promotion`]) to resolve the
//! *effective* static behaviour — node-local or interleave — for that
//! promotion's chunk leases, and feeds the promotion's ledger split back in
//! afterwards ([`AdaptiveController::record_promotion`]). The controller
//! closes a sample window every `sample_every` promotions and looks at the
//! window's remote-byte fraction:
//!
//! * in **node-local** mode, a remote fraction at or above the high
//!   threshold for `patience` *consecutive* windows means node-affine chunk
//!   leasing is failing to deliver locality (the pool is handing back
//!   cross-node chunks, e.g. under the affinity ablation or memory
//!   pressure) — the controller stops paying node-local's chunk-retirement
//!   churn and switches to interleave;
//! * in **interleave** mode, a remote fraction at or below the low
//!   threshold for `patience` consecutive windows means locality has been
//!   restored, and the controller switches back to node-local.
//!
//! The gap between the two thresholds plus the consecutive-window patience
//! is the hysteresis: a single noisy window, or an input oscillating once
//! per window, can never flap the mode.
//!
//! **Cold start.** The controller is *declared* in the locality-blind
//! interleave stance but commits to a mode only when the first promotion
//! actually needs a placement. With no ledger evidence at that point it
//! adopts the paper-default node-local mode and records the adoption as its
//! first [`PlacementDecision`] (reason [`DecisionReason::ColdStart`]). No
//! bytes are ever promoted under the provisional stance, so an adaptive run
//! on a well-behaved machine is byte-for-byte as local as static
//! `node-local` — while still leaving a non-empty, machine-readable
//! decision trail.

use crate::policy::PlacementPolicy;
use serde::{Deserialize, Serialize};

/// Default promotions per sample window.
pub const DEFAULT_SAMPLE_EVERY: u64 = 32;
/// Default high remote-fraction threshold (permille) that pressures a
/// node-local controller towards interleave.
pub const DEFAULT_HI_REMOTE_PERMILLE: u32 = 500;
/// Default low remote-fraction threshold (permille) that releases an
/// interleave controller back to node-local.
pub const DEFAULT_LO_REMOTE_PERMILLE: u32 = 125;
/// Default number of consecutive breaching windows required to switch.
pub const DEFAULT_PATIENCE: u32 = 2;

/// The two effective behaviours an adaptive controller toggles between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementMode {
    /// Lease promotion chunks on the consumer's node.
    NodeLocal,
    /// Round-robin promotion-chunk leases across all nodes.
    Interleave,
}

impl PlacementMode {
    /// A short lowercase label (matches the static policy labels).
    pub fn label(self) -> &'static str {
        match self {
            PlacementMode::NodeLocal => "node-local",
            PlacementMode::Interleave => "interleave",
        }
    }

    /// The static [`PlacementPolicy`] this mode behaves as.
    pub fn as_policy(self) -> PlacementPolicy {
        match self {
            PlacementMode::NodeLocal => PlacementPolicy::NodeLocal,
            PlacementMode::Interleave => PlacementPolicy::Interleave,
        }
    }
}

impl std::fmt::Display for PlacementMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a controller switched modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionReason {
    /// First promotion with no ledger evidence: adopt the paper default.
    ColdStart,
    /// Sustained high remote fraction while node-local: locality is already
    /// lost, spread the bandwidth instead.
    RemotePressure,
    /// Sustained low remote fraction while interleaved: locality works
    /// again, go back to node-local.
    LocalityRestored,
}

impl DecisionReason {
    /// A short lowercase label for CSV/JSON output.
    pub fn label(self) -> &'static str {
        match self {
            DecisionReason::ColdStart => "cold-start",
            DecisionReason::RemotePressure => "remote-pressure",
            DecisionReason::LocalityRestored => "locality-restored",
        }
    }
}

/// One mode switch, recorded for the `placement_decisions` field of a run
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// Promotion count (on this controller) at which the switch took effect.
    pub at_promotion: u64,
    /// Mode before the switch.
    pub from: PlacementMode,
    /// Mode after the switch.
    pub to: PlacementMode,
    /// Remote-byte fraction (permille) of the window that triggered the
    /// switch; `0` for the cold-start adoption.
    pub remote_permille: u32,
    /// Why the controller switched.
    pub reason: DecisionReason,
}

/// Deterministic hysteresis controller for [`PlacementPolicy::Adaptive`].
///
/// # Examples
///
/// ```
/// use mgc_numa::{AdaptiveController, PlacementMode};
///
/// let mut c = AdaptiveController::new();
/// // Cold start: the first placement query adopts node-local.
/// assert_eq!(c.placement_for_next_promotion(), PlacementMode::NodeLocal);
/// assert_eq!(c.switches(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    mode: PlacementMode,
    cold: bool,
    sample_every: u64,
    hi_permille: u32,
    lo_permille: u32,
    patience: u32,
    promotions: u64,
    window_promotions: u64,
    window_local: u64,
    window_remote: u64,
    breaches: u32,
    switches: u64,
    decisions: Vec<PlacementDecision>,
}

impl Default for AdaptiveController {
    fn default() -> Self {
        AdaptiveController::new()
    }
}

impl AdaptiveController {
    /// Creates a controller with the default thresholds.
    pub fn new() -> Self {
        AdaptiveController::with_params(
            DEFAULT_SAMPLE_EVERY,
            DEFAULT_HI_REMOTE_PERMILLE,
            DEFAULT_LO_REMOTE_PERMILLE,
            DEFAULT_PATIENCE,
        )
    }

    /// Creates a controller with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` or `patience` is zero, if `hi_permille`
    /// does not exceed `lo_permille` (no hysteresis gap), or if
    /// `hi_permille` exceeds 1000.
    pub fn with_params(
        sample_every: u64,
        hi_permille: u32,
        lo_permille: u32,
        patience: u32,
    ) -> Self {
        assert!(sample_every > 0, "a sample window must hold promotions");
        assert!(patience > 0, "patience of zero would switch on any noise");
        assert!(
            hi_permille > lo_permille,
            "the thresholds must leave a hysteresis gap (hi {hi_permille} <= lo {lo_permille})"
        );
        assert!(
            hi_permille <= 1000,
            "a fraction cannot exceed 1000 permille"
        );
        AdaptiveController {
            mode: PlacementMode::Interleave,
            cold: true,
            sample_every,
            hi_permille,
            lo_permille,
            patience,
            promotions: 0,
            window_promotions: 0,
            window_local: 0,
            window_remote: 0,
            breaches: 0,
            switches: 0,
            decisions: Vec::new(),
        }
    }

    /// The effective behaviour for the *next* promotion's chunk leases.
    ///
    /// The first call resolves the cold start: with no samples yet the
    /// controller adopts [`PlacementMode::NodeLocal`] and records the
    /// adoption as its first decision.
    pub fn placement_for_next_promotion(&mut self) -> PlacementMode {
        if self.cold {
            self.cold = false;
            if self.mode != PlacementMode::NodeLocal {
                self.switch(PlacementMode::NodeLocal, 0, DecisionReason::ColdStart);
            }
        }
        self.mode
    }

    /// Feeds one promotion's ledger split (bytes promoted into chunks on /
    /// off the consumer's node) into the current sample window, evaluating
    /// the window when it fills.
    pub fn record_promotion(&mut self, local_bytes: u64, remote_bytes: u64) {
        self.promotions += 1;
        self.window_promotions += 1;
        self.window_local += local_bytes;
        self.window_remote += remote_bytes;
        if self.window_promotions >= self.sample_every {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let total = self.window_local + self.window_remote;
        let remote = self.window_remote;
        self.window_promotions = 0;
        self.window_local = 0;
        self.window_remote = 0;
        if total == 0 {
            // A window of zero-byte promotions carries no locality evidence:
            // it neither breaches nor resets the streak.
            return;
        }
        let permille = ((u128::from(remote) * 1000) / u128::from(total)) as u32;
        let breached = match self.mode {
            PlacementMode::NodeLocal => permille >= self.hi_permille,
            PlacementMode::Interleave => permille <= self.lo_permille,
        };
        if !breached {
            self.breaches = 0;
            return;
        }
        self.breaches += 1;
        if self.breaches < self.patience {
            return;
        }
        match self.mode {
            PlacementMode::NodeLocal => {
                self.switch(
                    PlacementMode::Interleave,
                    permille,
                    DecisionReason::RemotePressure,
                );
            }
            PlacementMode::Interleave => {
                self.switch(
                    PlacementMode::NodeLocal,
                    permille,
                    DecisionReason::LocalityRestored,
                );
            }
        }
    }

    fn switch(&mut self, to: PlacementMode, remote_permille: u32, reason: DecisionReason) {
        self.decisions.push(PlacementDecision {
            at_promotion: self.promotions,
            from: self.mode,
            to,
            remote_permille,
            reason,
        });
        self.mode = to;
        self.switches += 1;
        self.breaches = 0;
    }

    /// The controller's current mode (without resolving a cold start).
    pub fn mode(&self) -> PlacementMode {
        self.mode
    }

    /// Number of mode switches so far (including the cold-start adoption).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Promotions recorded so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Every switch, in order.
    pub fn decisions(&self) -> &[PlacementDecision] {
        &self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small controller for tests: 4-promotion windows, switch at ≥50%
    /// remote (back at ≤12.5%), patience 2.
    fn small() -> AdaptiveController {
        AdaptiveController::with_params(4, 500, 125, 2)
    }

    /// Feeds one full window where every promotion has the given split.
    fn feed_window(c: &mut AdaptiveController, local: u64, remote: u64) {
        for _ in 0..4 {
            c.record_promotion(local, remote);
        }
    }

    #[test]
    fn cold_start_adopts_node_local_and_counts_as_a_switch() {
        let mut c = small();
        assert_eq!(c.mode(), PlacementMode::Interleave);
        assert_eq!(c.switches(), 0);
        assert_eq!(c.placement_for_next_promotion(), PlacementMode::NodeLocal);
        assert_eq!(c.switches(), 1);
        let d = c.decisions()[0];
        assert_eq!(d.reason, DecisionReason::ColdStart);
        assert_eq!(d.from, PlacementMode::Interleave);
        assert_eq!(d.to, PlacementMode::NodeLocal);
        assert_eq!(d.at_promotion, 0);
        // Subsequent queries do not re-adopt.
        assert_eq!(c.placement_for_next_promotion(), PlacementMode::NodeLocal);
        assert_eq!(c.switches(), 1);
    }

    #[test]
    fn sustained_remote_pressure_switches_to_interleave_after_patience() {
        let mut c = small();
        c.placement_for_next_promotion();
        feed_window(&mut c, 100, 900); // window 1: 90% remote, breach 1
        assert_eq!(c.mode(), PlacementMode::NodeLocal);
        feed_window(&mut c, 100, 900); // window 2: breach 2 -> switch
        assert_eq!(c.mode(), PlacementMode::Interleave);
        assert_eq!(c.switches(), 2);
        let d = *c.decisions().last().unwrap();
        assert_eq!(d.reason, DecisionReason::RemotePressure);
        assert_eq!(d.remote_permille, 900);
        assert_eq!(d.at_promotion, 8);
    }

    #[test]
    fn single_breaching_window_does_not_switch() {
        let mut c = small();
        c.placement_for_next_promotion();
        feed_window(&mut c, 0, 1000); // breach 1
        feed_window(&mut c, 1000, 0); // clean window resets the streak
        feed_window(&mut c, 0, 1000); // breach 1 again — never reaches patience
        assert_eq!(c.mode(), PlacementMode::NodeLocal);
        assert_eq!(c.switches(), 1); // cold start only
    }

    #[test]
    fn oscillating_ledger_input_never_flaps() {
        let mut c = small();
        c.placement_for_next_promotion();
        // Alternate fully-remote and fully-local windows for a long time:
        // the breach streak resets every other window, so the mode holds.
        for _ in 0..50 {
            feed_window(&mut c, 0, 1000);
            feed_window(&mut c, 1000, 0);
        }
        assert_eq!(c.mode(), PlacementMode::NodeLocal);
        assert_eq!(c.switches(), 1);
    }

    #[test]
    fn locality_restored_switches_back_with_hysteresis() {
        let mut c = small();
        c.placement_for_next_promotion();
        // Drive into interleave.
        feed_window(&mut c, 0, 1000);
        feed_window(&mut c, 0, 1000);
        assert_eq!(c.mode(), PlacementMode::Interleave);
        // 30% remote is below the hi threshold but above the lo threshold:
        // inside the hysteresis band, no switch in either direction.
        for _ in 0..10 {
            feed_window(&mut c, 700, 300);
        }
        assert_eq!(c.mode(), PlacementMode::Interleave);
        // Sustained ≤12.5% remote releases the controller back.
        feed_window(&mut c, 900, 100);
        feed_window(&mut c, 900, 100);
        assert_eq!(c.mode(), PlacementMode::NodeLocal);
        assert_eq!(c.switches(), 3);
        let d = *c.decisions().last().unwrap();
        assert_eq!(d.reason, DecisionReason::LocalityRestored);
        assert_eq!(d.remote_permille, 100);
    }

    #[test]
    fn zero_byte_windows_carry_no_evidence() {
        let mut c = small();
        c.placement_for_next_promotion();
        feed_window(&mut c, 0, 1000); // breach 1
        feed_window(&mut c, 0, 0); // empty window: neither breach nor reset
        feed_window(&mut c, 0, 1000); // breach 2 -> switch
        assert_eq!(c.mode(), PlacementMode::Interleave);
        assert_eq!(c.switches(), 2);
    }

    #[test]
    fn partial_window_is_not_evaluated() {
        let mut c = small();
        c.placement_for_next_promotion();
        // 7 promotions = one full window (breach 1) + 3 pending.
        for _ in 0..7 {
            c.record_promotion(0, 1000);
        }
        assert_eq!(c.mode(), PlacementMode::NodeLocal);
        assert_eq!(c.promotions(), 7);
    }

    #[test]
    fn mode_labels_and_policy_mapping() {
        assert_eq!(PlacementMode::NodeLocal.label(), "node-local");
        assert_eq!(PlacementMode::Interleave.label(), "interleave");
        assert_eq!(
            PlacementMode::NodeLocal.as_policy(),
            PlacementPolicy::NodeLocal
        );
        assert_eq!(
            PlacementMode::Interleave.as_policy(),
            PlacementPolicy::Interleave
        );
        assert_eq!(DecisionReason::ColdStart.label(), "cold-start");
        assert_eq!(DecisionReason::RemotePressure.label(), "remote-pressure");
        assert_eq!(
            DecisionReason::LocalityRestored.label(),
            "locality-restored"
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis gap")]
    fn thresholds_without_a_gap_are_rejected() {
        let _ = AdaptiveController::with_params(4, 125, 125, 2);
    }
}
