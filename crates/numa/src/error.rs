//! Error types for topology construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`crate::Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology has no packages/nodes/cores at all.
    Empty,
    /// A node refers to a package index that does not exist.
    UnknownPackage {
        /// The offending package index.
        package: usize,
    },
    /// A bandwidth or latency value was not strictly positive.
    NonPositiveBandwidth {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
    },
    /// A core count of zero was requested for a node.
    EmptyNode {
        /// The offending node index.
        node: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no nodes or cores"),
            TopologyError::UnknownPackage { package } => {
                write!(f, "node refers to unknown package {package}")
            }
            TopologyError::NonPositiveBandwidth { src, dst } => {
                write!(
                    f,
                    "non-positive bandwidth between node {src} and node {dst}"
                )
            }
            TopologyError::EmptyNode { node } => {
                write!(f, "node {node} has zero cores")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TopologyError::Empty,
            TopologyError::UnknownPackage { package: 3 },
            TopologyError::NonPositiveBandwidth { src: 0, dst: 1 },
            TopologyError::EmptyNode { node: 2 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
