//! Newtype identifiers for the elements of a NUMA machine.
//!
//! The paper's terminology (§2.2, Appendix A): a machine has several
//! *packages* (sockets); each package contains one or two *nodes* (dies with
//! a private memory controller and L3 cache); each node contains several
//! *cores*. Virtual processors (vprocs) are pinned to cores.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $label:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u16);

        impl $name {
            /// Creates an identifier from a raw index.
            ///
            /// # Examples
            ///
            /// ```
            /// # use mgc_numa::NodeId;
            /// let n = NodeId::new(3);
            /// assert_eq!(n.index(), 3);
            /// ```
            pub const fn new(index: u16) -> Self {
                Self(index)
            }

            /// Returns the raw index of this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as a `u16`.
            pub const fn raw(self) -> u16 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(value: u16) -> Self {
                Self(value)
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> usize {
                value.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a NUMA node (a die with its own memory controller).
    NodeId,
    "node"
);
id_type!(
    /// Identifier of a physical core.
    CoreId,
    "core"
);
id_type!(
    /// Identifier of a processor package (socket).
    PackageId,
    "pkg"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.raw(), 7);
        assert_eq!(usize::from(n), 7);
        assert_eq!(NodeId::from(7u16), n);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CoreId::new(1));
        set.insert(CoreId::new(2));
        set.insert(CoreId::new(1));
        assert_eq!(set.len(), 2);
        assert!(CoreId::new(1) < CoreId::new(2));
    }

    #[test]
    fn display_matches_kind() {
        assert_eq!(NodeId::new(2).to_string(), "node2");
        assert_eq!(CoreId::new(11).to_string(), "core11");
        assert_eq!(PackageId::new(0).to_string(), "pkg0");
        assert_eq!(format!("{:?}", NodeId::new(2)), "node2");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
