//! Machine topology: packages, nodes, cores, and the bandwidth/latency
//! matrices between them.
//!
//! The two presets reproduce the machines of the paper's Appendix A:
//!
//! * [`Topology::amd_magny_cours_48`] — a Dell PowerEdge R815 with four AMD
//!   Opteron 6172 packages, each containing two 6-core nodes (Figure 8).
//!   Per Table 1: 21.3 GB/s to local memory, 19.2 GB/s to the sibling node in
//!   the same package, 6.4 GB/s (one 8-bit HT3 link) to nodes on other
//!   packages.
//! * [`Topology::intel_xeon_32`] — a QSSC-S4R with four 8-core Intel Xeon
//!   X7560 packages, one node per package, fully connected by QPI (Figure 9).
//!   Per Table 1: 17.1 GB/s to local memory and 25.6 GB/s across QPI.

use crate::error::TopologyError;
use crate::ids::{CoreId, NodeId, PackageId};
use serde::{Deserialize, Serialize};

/// Cache sizes for a node, in bytes. Only the L3 size matters to the heap
/// (the paper sizes local heaps to fit in L3, §3.1), but the L1/L2 sizes are
/// kept for completeness and for the cache-aware cost heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Per-core L1 data cache size in bytes.
    pub l1_data: usize,
    /// Per-core L2 cache size in bytes.
    pub l2: usize,
    /// Per-node L3 cache size in bytes (the usable portion).
    pub l3: usize,
}

impl CacheSpec {
    /// AMD Opteron 6172: 64 KB L1d, 512 KB L2, 6 MB L3 of which 1 MB is
    /// reserved for the HT Assist probe filter, leaving 5 MB usable.
    pub const fn amd_opteron_6172() -> Self {
        CacheSpec {
            l1_data: 64 * 1024,
            l2: 512 * 1024,
            l3: 5 * 1024 * 1024,
        }
    }

    /// Intel Xeon X7560: 32 KB L1d, 256 KB L2, 24 MB L3 of which 3 MB is
    /// reserved, leaving 21 MB usable.
    pub const fn intel_xeon_x7560() -> Self {
        CacheSpec {
            l1_data: 32 * 1024,
            l2: 256 * 1024,
            l3: 21 * 1024 * 1024,
        }
    }
}

impl Default for CacheSpec {
    fn default() -> Self {
        CacheSpec::amd_opteron_6172()
    }
}

/// Description of one NUMA node (a die with its own memory controller).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The package (socket) this node belongs to.
    pub package: PackageId,
    /// Cores located on this node.
    pub cores: Vec<CoreId>,
    /// Bandwidth from this node's cores to this node's own DRAM, in GB/s.
    pub local_bandwidth_gbps: f64,
    /// Latency of an access to this node's own DRAM, in nanoseconds.
    pub local_latency_ns: f64,
    /// Cache hierarchy of this node.
    pub cache: CacheSpec,
}

/// Description of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// The node this core belongs to.
    pub node: NodeId,
    /// The package this core belongs to.
    pub package: PackageId,
}

/// A complete machine description.
///
/// Construct one with [`Topology::amd_magny_cours_48`],
/// [`Topology::intel_xeon_32`], or [`TopologyBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    nodes: Vec<NodeSpec>,
    cores: Vec<CoreSpec>,
    num_packages: usize,
    /// `bandwidth_gbps[src][dst]`: achievable bandwidth from a core on node
    /// `src` to memory on node `dst` in GB/s. The diagonal holds the local
    /// memory bandwidth.
    bandwidth_gbps: Vec<Vec<f64>>,
    /// `latency_ns[src][dst]`: access latency in nanoseconds.
    latency_ns: Vec<Vec<f64>>,
    /// Core clock frequency in GHz (used to convert instruction counts to
    /// nanoseconds in the cost model).
    core_ghz: f64,
}

impl Topology {
    /// The 48-core AMD machine of the paper (Appendix A.1, Figure 8, Table 1).
    ///
    /// Four packages, two nodes per package, six cores per node, 2.1 GHz.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mgc_numa::Topology;
    /// let t = Topology::amd_magny_cours_48();
    /// assert_eq!(t.num_packages(), 4);
    /// assert_eq!(t.num_nodes(), 8);
    /// assert_eq!(t.num_cores(), 48);
    /// ```
    pub fn amd_magny_cours_48() -> Self {
        TopologyBuilder::new("amd-opteron-6172-48")
            .core_ghz(2.1)
            .packages(4)
            .nodes_per_package(2)
            .cores_per_node(6)
            .cache(CacheSpec::amd_opteron_6172())
            .local_bandwidth_gbps(21.3)
            .same_package_bandwidth_gbps(19.2)
            .cross_package_bandwidth_gbps(6.4)
            .local_latency_ns(95.0)
            .same_package_latency_ns(130.0)
            .cross_package_latency_ns(220.0)
            .build()
            .expect("preset topology is valid")
    }

    /// The 32-core Intel machine of the paper (Appendix A.2, Figure 9, Table 1).
    ///
    /// Four packages, one node per package, eight cores per node, 2.266 GHz.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mgc_numa::Topology;
    /// let t = Topology::intel_xeon_32();
    /// assert_eq!(t.num_nodes(), 4);
    /// assert_eq!(t.num_cores(), 32);
    /// ```
    pub fn intel_xeon_32() -> Self {
        TopologyBuilder::new("intel-xeon-x7560-32")
            .core_ghz(2.266)
            .packages(4)
            .nodes_per_package(1)
            .cores_per_node(8)
            .cache(CacheSpec::intel_xeon_x7560())
            .local_bandwidth_gbps(17.1)
            .same_package_bandwidth_gbps(17.1)
            .cross_package_bandwidth_gbps(25.6)
            .local_latency_ns(100.0)
            .same_package_latency_ns(100.0)
            .cross_package_latency_ns(160.0)
            .build()
            .expect("preset topology is valid")
    }

    /// The topology of the machine this process is running on, as far as the
    /// host exposes it.
    ///
    /// Node count comes from the sysfs probe
    /// ([`host_numa_nodes`](crate::host_numa_nodes)); core count from
    /// [`std::thread::available_parallelism`]. Each host node is modelled as
    /// its own package (the probe cannot see package grouping), with the
    /// builder's AMD-like default bandwidth/latency classes. When the probe
    /// finds nothing — non-Linux platforms, sandboxed CI filesystems — the
    /// fallback is a deterministic single-node machine, so this constructor
    /// never panics and never varies run-to-run on the same host.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mgc_numa::Topology;
    /// let t = Topology::host();
    /// assert!(t.num_nodes() >= 1);
    /// assert!(t.num_cores() >= 1);
    /// ```
    pub fn host() -> Self {
        let nodes = crate::affinity::host_numa_nodes().unwrap_or(1);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cores_per_node = (cores / nodes).max(1);
        TopologyBuilder::new("host")
            .packages(nodes)
            .nodes_per_package(1)
            .cores_per_node(cores_per_node)
            .build()
            .expect("host topology parameters are non-degenerate by construction")
    }

    /// A tiny two-node topology, convenient for unit tests.
    pub fn dual_node_test() -> Self {
        TopologyBuilder::new("test-dual-node")
            .core_ghz(2.0)
            .packages(2)
            .nodes_per_package(1)
            .cores_per_node(2)
            .local_bandwidth_gbps(20.0)
            .same_package_bandwidth_gbps(20.0)
            .cross_package_bandwidth_gbps(8.0)
            .local_latency_ns(100.0)
            .same_package_latency_ns(100.0)
            .cross_package_latency_ns(200.0)
            .build()
            .expect("preset topology is valid")
    }

    /// The human-readable name of this topology.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of packages (sockets).
    pub fn num_packages(&self) -> usize {
        self.num_packages
    }

    /// Number of NUMA nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Core clock frequency in GHz.
    pub fn core_ghz(&self) -> f64 {
        self.core_ghz
    }

    /// All node descriptions.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// All core descriptions.
    pub fn cores(&self) -> &[CoreSpec] {
        &self.cores
    }

    /// The node a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for this topology.
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        self.cores[core.index()].node
    }

    /// The package a node belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this topology.
    pub fn package_of_node(&self, node: NodeId) -> PackageId {
        self.nodes[node.index()].package
    }

    /// The cores located on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this topology.
    pub fn cores_of_node(&self, node: NodeId) -> &[CoreId] {
        &self.nodes[node.index()].cores
    }

    /// Bandwidth in GB/s from a core on `src` to memory on `dst`
    /// (the diagonal is the local memory bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn bandwidth_gbps(&self, src: NodeId, dst: NodeId) -> f64 {
        self.bandwidth_gbps[src.index()][dst.index()]
    }

    /// Latency in nanoseconds of an access from a core on `src` to memory on
    /// `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn latency_ns(&self, src: NodeId, dst: NodeId) -> f64 {
        self.latency_ns[src.index()][dst.index()]
    }

    /// Usable L3 cache of a node, in bytes. The paper sizes each vproc's
    /// local heap so that it fits into the node's L3 cache (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn l3_bytes(&self, node: NodeId) -> usize {
        self.nodes[node.index()].cache.l3
    }

    /// Classification of an access from `src` to `dst`: local, within the
    /// same package, or across packages.
    pub fn access_class(&self, src: NodeId, dst: NodeId) -> crate::stats::AccessClass {
        use crate::stats::AccessClass;
        if src == dst {
            AccessClass::Local
        } else if self.package_of_node(src) == self.package_of_node(dst) {
            AccessClass::SamePackage
        } else {
            AccessClass::CrossPackage
        }
    }

    /// Picks `n` cores for vprocs, spreading them sparsely across the nodes
    /// in round-robin order. This mirrors §2.2 of the paper: "when there are
    /// less vprocs than processors, they are assigned sparsely across the
    /// nodes to minimize contention on the node-shared L3 cache."
    ///
    /// When `n` exceeds the number of cores the assignment wraps around.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mgc_numa::Topology;
    /// let t = Topology::amd_magny_cours_48();
    /// let cores = t.spread_cores(8);
    /// // One core per node before doubling up anywhere.
    /// let nodes: std::collections::HashSet<_> =
    ///     cores.iter().map(|&c| t.node_of_core(c)).collect();
    /// assert_eq!(nodes.len(), 8);
    /// ```
    pub fn spread_cores(&self, n: usize) -> Vec<CoreId> {
        let num_nodes = self.num_nodes();
        let mut picked = Vec::with_capacity(n);
        let mut per_node_cursor = vec![0usize; num_nodes];
        let mut node = 0usize;
        while picked.len() < n {
            let cores = &self.nodes[node].cores;
            let cursor = &mut per_node_cursor[node];
            let core = cores[*cursor % cores.len()];
            *cursor += 1;
            picked.push(core);
            node = (node + 1) % num_nodes;
        }
        picked
    }

    /// The "most local" table of the paper (Table 1): for each distinct
    /// access class, the modelled bandwidth in GB/s. Returns
    /// `(local, same_package, cross_package)`; `same_package` is `None` for
    /// topologies with a single node per package (the Intel machine).
    pub fn table1_bandwidths(&self) -> (f64, Option<f64>, f64) {
        let local = self.bandwidth_gbps[0][0];
        let mut same_package = None;
        let mut cross_package = local;
        for dst in 0..self.num_nodes() {
            if dst == 0 {
                continue;
            }
            let bw = self.bandwidth_gbps[0][dst];
            if self.package_of_node(NodeId::new(0)) == self.package_of_node(NodeId::new(dst as u16))
            {
                same_package = Some(bw);
            } else {
                cross_package = bw;
            }
        }
        (local, same_package, cross_package)
    }
}

/// Builder for [`Topology`] values.
///
/// The builder assumes a regular machine: `packages` sockets, each with
/// `nodes_per_package` nodes, each with `cores_per_node` cores, and three
/// bandwidth/latency classes (local, same package, cross package). Irregular
/// machines can be modelled by post-processing the matrices, but the paper's
/// machines are regular.
///
/// # Examples
///
/// ```
/// # use mgc_numa::TopologyBuilder;
/// let topo = TopologyBuilder::new("toy")
///     .packages(2)
///     .nodes_per_package(2)
///     .cores_per_node(4)
///     .local_bandwidth_gbps(20.0)
///     .same_package_bandwidth_gbps(16.0)
///     .cross_package_bandwidth_gbps(6.0)
///     .build()?;
/// assert_eq!(topo.num_cores(), 16);
/// # Ok::<(), mgc_numa::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    packages: usize,
    nodes_per_package: usize,
    cores_per_node: usize,
    cache: CacheSpec,
    core_ghz: f64,
    local_bandwidth_gbps: f64,
    same_package_bandwidth_gbps: f64,
    cross_package_bandwidth_gbps: f64,
    local_latency_ns: f64,
    same_package_latency_ns: f64,
    cross_package_latency_ns: f64,
}

impl TopologyBuilder {
    /// Starts a builder with sensible defaults (a 2-package, 4-node machine
    /// with AMD-like bandwidth figures).
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            packages: 2,
            nodes_per_package: 2,
            cores_per_node: 4,
            cache: CacheSpec::default(),
            core_ghz: 2.0,
            local_bandwidth_gbps: 21.3,
            same_package_bandwidth_gbps: 19.2,
            cross_package_bandwidth_gbps: 6.4,
            local_latency_ns: 100.0,
            same_package_latency_ns: 140.0,
            cross_package_latency_ns: 220.0,
        }
    }

    /// Sets the number of packages (sockets).
    pub fn packages(mut self, n: usize) -> Self {
        self.packages = n;
        self
    }

    /// Sets the number of nodes per package.
    pub fn nodes_per_package(mut self, n: usize) -> Self {
        self.nodes_per_package = n;
        self
    }

    /// Sets the number of cores per node.
    pub fn cores_per_node(mut self, n: usize) -> Self {
        self.cores_per_node = n;
        self
    }

    /// Sets the cache hierarchy used for every node.
    pub fn cache(mut self, cache: CacheSpec) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the core clock frequency in GHz.
    pub fn core_ghz(mut self, ghz: f64) -> Self {
        self.core_ghz = ghz;
        self
    }

    /// Sets the local-DRAM bandwidth in GB/s.
    pub fn local_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.local_bandwidth_gbps = gbps;
        self
    }

    /// Sets the bandwidth to the sibling node within the same package, GB/s.
    pub fn same_package_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.same_package_bandwidth_gbps = gbps;
        self
    }

    /// Sets the bandwidth to nodes on other packages, GB/s.
    pub fn cross_package_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.cross_package_bandwidth_gbps = gbps;
        self
    }

    /// Sets the local-DRAM latency in nanoseconds.
    pub fn local_latency_ns(mut self, ns: f64) -> Self {
        self.local_latency_ns = ns;
        self
    }

    /// Sets the latency to the sibling node within the same package, ns.
    pub fn same_package_latency_ns(mut self, ns: f64) -> Self {
        self.same_package_latency_ns = ns;
        self
    }

    /// Sets the latency to nodes on other packages, ns.
    pub fn cross_package_latency_ns(mut self, ns: f64) -> Self {
        self.cross_package_latency_ns = ns;
        self
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if the machine would be empty, a node would
    /// have no cores, or any bandwidth is not strictly positive.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.packages == 0 || self.nodes_per_package == 0 {
            return Err(TopologyError::Empty);
        }
        if self.cores_per_node == 0 {
            return Err(TopologyError::EmptyNode { node: 0 });
        }
        for (i, &bw) in [
            self.local_bandwidth_gbps,
            self.same_package_bandwidth_gbps,
            self.cross_package_bandwidth_gbps,
        ]
        .iter()
        .enumerate()
        {
            if bw <= 0.0 {
                return Err(TopologyError::NonPositiveBandwidth { src: i, dst: i });
            }
        }

        let num_nodes = self.packages * self.nodes_per_package;
        let mut nodes = Vec::with_capacity(num_nodes);
        let mut cores = Vec::new();
        for node_idx in 0..num_nodes {
            let package = PackageId::new((node_idx / self.nodes_per_package) as u16);
            let mut node_cores = Vec::with_capacity(self.cores_per_node);
            for _ in 0..self.cores_per_node {
                let core_id = CoreId::new(cores.len() as u16);
                cores.push(CoreSpec {
                    node: NodeId::new(node_idx as u16),
                    package,
                });
                node_cores.push(core_id);
            }
            nodes.push(NodeSpec {
                package,
                cores: node_cores,
                local_bandwidth_gbps: self.local_bandwidth_gbps,
                local_latency_ns: self.local_latency_ns,
                cache: self.cache,
            });
        }

        let mut bandwidth = vec![vec![0.0; num_nodes]; num_nodes];
        let mut latency = vec![vec![0.0; num_nodes]; num_nodes];
        for src in 0..num_nodes {
            for dst in 0..num_nodes {
                let (bw, lat) = if src == dst {
                    (self.local_bandwidth_gbps, self.local_latency_ns)
                } else if nodes[src].package == nodes[dst].package {
                    (
                        self.same_package_bandwidth_gbps,
                        self.same_package_latency_ns,
                    )
                } else {
                    (
                        self.cross_package_bandwidth_gbps,
                        self.cross_package_latency_ns,
                    )
                };
                bandwidth[src][dst] = bw;
                latency[src][dst] = lat;
            }
        }

        Ok(Topology {
            name: self.name,
            nodes,
            cores,
            num_packages: self.packages,
            bandwidth_gbps: bandwidth,
            latency_ns: latency,
            core_ghz: self.core_ghz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AccessClass;

    #[test]
    fn amd_preset_matches_table1() {
        let t = Topology::amd_magny_cours_48();
        assert_eq!(t.num_packages(), 4);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_cores(), 48);
        let (local, same, cross) = t.table1_bandwidths();
        assert!((local - 21.3).abs() < 1e-9);
        assert_eq!(same, Some(19.2));
        assert!((cross - 6.4).abs() < 1e-9);
    }

    #[test]
    fn intel_preset_matches_table1() {
        let t = Topology::intel_xeon_32();
        assert_eq!(t.num_packages(), 4);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_cores(), 32);
        let (local, same, cross) = t.table1_bandwidths();
        assert!((local - 17.1).abs() < 1e-9);
        assert_eq!(same, None);
        assert!((cross - 25.6).abs() < 1e-9);
    }

    #[test]
    fn node_and_package_lookup_consistent() {
        let t = Topology::amd_magny_cours_48();
        for (idx, core) in t.cores().iter().enumerate() {
            let cid = CoreId::new(idx as u16);
            assert_eq!(t.node_of_core(cid), core.node);
            assert!(t.cores_of_node(core.node).contains(&cid));
            assert_eq!(t.package_of_node(core.node), core.package);
        }
    }

    #[test]
    fn amd_nodes_pair_up_into_packages() {
        let t = Topology::amd_magny_cours_48();
        // Nodes 0,1 in package 0; 2,3 in package 1; etc.
        for n in 0..t.num_nodes() {
            assert_eq!(
                t.package_of_node(NodeId::new(n as u16)),
                PackageId::new((n / 2) as u16)
            );
        }
        assert_eq!(
            t.access_class(NodeId::new(0), NodeId::new(1)),
            AccessClass::SamePackage
        );
        assert_eq!(
            t.access_class(NodeId::new(0), NodeId::new(2)),
            AccessClass::CrossPackage
        );
        assert_eq!(
            t.access_class(NodeId::new(3), NodeId::new(3)),
            AccessClass::Local
        );
    }

    #[test]
    fn spread_cores_covers_nodes_before_doubling() {
        let t = Topology::amd_magny_cours_48();
        let cores = t.spread_cores(16);
        let mut per_node = vec![0usize; t.num_nodes()];
        for c in &cores {
            per_node[t.node_of_core(*c).index()] += 1;
        }
        // 16 vprocs on 8 nodes: exactly 2 per node.
        assert!(per_node.iter().all(|&n| n == 2));
        // All picked cores are distinct.
        let set: std::collections::HashSet<_> = cores.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn spread_cores_wraps_beyond_core_count() {
        let t = Topology::dual_node_test();
        let cores = t.spread_cores(10);
        assert_eq!(cores.len(), 10);
    }

    #[test]
    fn builder_rejects_degenerate_machines() {
        assert_eq!(
            TopologyBuilder::new("x").packages(0).build().unwrap_err(),
            TopologyError::Empty
        );
        assert!(matches!(
            TopologyBuilder::new("x").cores_per_node(0).build(),
            Err(TopologyError::EmptyNode { .. })
        ));
        assert!(matches!(
            TopologyBuilder::new("x").local_bandwidth_gbps(0.0).build(),
            Err(TopologyError::NonPositiveBandwidth { .. })
        ));
    }

    #[test]
    fn latency_is_monotone_in_distance() {
        let t = Topology::amd_magny_cours_48();
        let local = t.latency_ns(NodeId::new(0), NodeId::new(0));
        let same_pkg = t.latency_ns(NodeId::new(0), NodeId::new(1));
        let cross_pkg = t.latency_ns(NodeId::new(0), NodeId::new(2));
        assert!(local < same_pkg);
        assert!(same_pkg < cross_pkg);
    }

    #[test]
    fn host_topology_is_valid_and_deterministic() {
        let t = Topology::host();
        assert_eq!(t.name(), "host");
        assert!(t.num_nodes() >= 1);
        assert!(t.num_cores() >= t.num_nodes());
        // One node per package: package grouping is invisible to the probe.
        assert_eq!(t.num_packages(), t.num_nodes());
        // Same host, same answer.
        assert_eq!(t, Topology::host());
        // The usual derived machinery works on it.
        let cores = t.spread_cores(t.num_nodes());
        assert_eq!(cores.len(), t.num_nodes());
    }

    #[test]
    fn clone_and_equality() {
        let t = Topology::intel_xeon_32();
        let u = t.clone();
        assert_eq!(t, u);
        assert_ne!(t, Topology::amd_magny_cours_48());
    }
}
