//! The memory cost model: converts per-vproc work into elapsed virtual time.
//!
//! The simulation driver (in `mgc-runtime`) executes vprocs in *rounds*: in
//! each round every runnable vproc performs roughly one scheduling quantum of
//! work and reports what it did as a [`VprocRoundCost`] — CPU nanoseconds
//! plus a vector of bytes/accesses directed at each NUMA node. The
//! [`MemoryModel`] then computes how long the round took on the modelled
//! machine.
//!
//! The model is a *bottleneck* (roofline-style) model. The round cannot be
//! shorter than
//!
//! 1. the longest *serial* cost of any single vproc (its CPU time plus its
//!    memory time at uncontended bandwidth and latency), nor
//! 2. the time any *memory controller* needs to serve all bytes directed at
//!    its node, nor
//! 3. the time any *inter-node link* needs to carry all bytes crossing it.
//!
//! Constraint 1 gives linear scaling for compute-bound, well-partitioned
//! work (DMM, Raytracer). Constraint 2 produces the bus saturation the paper
//! observes when every vproc's data lives on node 0 (Figure 7) and the
//! saturation of the node holding the shared SMVM vector (§4.2). Constraint
//! 3 penalises policies that push most traffic across the narrow 6.4 GB/s
//! HyperTransport links (Figure 6 vs Figure 5).

use crate::ids::{CoreId, NodeId};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Memory-level parallelism factor: how many cache-miss latencies overlap.
///
/// Modern out-of-order cores sustain several outstanding misses, so the
/// effective latency cost of a stream of accesses is the raw latency divided
/// by this factor. The value is deliberately conservative.
pub const DEFAULT_MLP: f64 = 4.0;

/// Traffic from one vproc to one destination node during a round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// Bytes read or written.
    pub bytes: u64,
    /// Number of distinct accesses (cache-line granules), used for latency
    /// charging.
    pub accesses: u64,
}

impl Traffic {
    /// Creates a traffic record.
    pub fn new(bytes: u64, accesses: u64) -> Self {
        Traffic { bytes, accesses }
    }

    /// Merges another record into this one.
    pub fn add(&mut self, other: Traffic) {
        self.bytes += other.bytes;
        self.accesses += other.accesses;
    }

    /// True if no traffic was recorded.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0 && self.accesses == 0
    }
}

/// Everything one vproc did during a scheduling round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VprocRoundCost {
    /// The core the vproc is pinned to.
    pub core: CoreId,
    /// Pure compute time in nanoseconds.
    pub cpu_ns: f64,
    /// Traffic to each node, indexed by node id. May be shorter than the
    /// machine's node count; missing entries mean zero traffic.
    pub traffic_to: Vec<Traffic>,
}

impl VprocRoundCost {
    /// Creates an empty cost record for a vproc pinned to `core` on a machine
    /// with `num_nodes` nodes.
    pub fn new(core: CoreId, num_nodes: usize) -> Self {
        VprocRoundCost {
            core,
            cpu_ns: 0.0,
            traffic_to: vec![Traffic::default(); num_nodes],
        }
    }

    /// Adds compute time.
    pub fn add_cpu_ns(&mut self, ns: f64) {
        self.cpu_ns += ns;
    }

    /// Adds traffic directed at `node`.
    pub fn add_traffic(&mut self, node: NodeId, traffic: Traffic) {
        if self.traffic_to.len() <= node.index() {
            self.traffic_to.resize(node.index() + 1, Traffic::default());
        }
        self.traffic_to[node.index()].add(traffic);
    }

    /// Total bytes this vproc moved during the round.
    pub fn total_bytes(&self) -> u64 {
        self.traffic_to.iter().map(|t| t.bytes).sum()
    }

    /// True if the vproc did nothing this round.
    pub fn is_idle(&self) -> bool {
        self.cpu_ns == 0.0 && self.traffic_to.iter().all(Traffic::is_empty)
    }
}

/// What limited the duration of a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// No vproc did any work.
    Idle,
    /// The critical path was a single vproc's serial (CPU + uncontended
    /// memory) time.
    Compute {
        /// The core of the limiting vproc.
        core: CoreId,
    },
    /// A node's memory controller was saturated.
    MemoryController {
        /// The saturated node.
        node: NodeId,
    },
    /// An inter-node link was saturated.
    Link {
        /// Source node of the saturated link.
        src: NodeId,
        /// Destination node of the saturated link.
        dst: NodeId,
    },
}

/// Result of costing one scheduling round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundBreakdown {
    /// Elapsed virtual time of the round in nanoseconds.
    pub duration_ns: f64,
    /// Which resource set the duration.
    pub bottleneck: Bottleneck,
    /// The largest per-vproc serial cost in the round.
    pub max_serial_ns: f64,
    /// Time each memory controller would need to serve its demand, by node.
    pub controller_ns: Vec<f64>,
    /// Time the busiest link would need, and which link it is.
    pub max_link_ns: f64,
}

/// The cost model for a particular [`Topology`].
#[derive(Debug, Clone)]
pub struct MemoryModel {
    topology: Topology,
    mlp: f64,
}

impl MemoryModel {
    /// Creates a model for `topology` with the default memory-level
    /// parallelism factor.
    pub fn new(topology: Topology) -> Self {
        MemoryModel {
            topology,
            mlp: DEFAULT_MLP,
        }
    }

    /// Creates a model with an explicit memory-level parallelism factor.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is not strictly positive.
    pub fn with_mlp(topology: Topology, mlp: f64) -> Self {
        assert!(mlp > 0.0, "memory-level parallelism must be positive");
        MemoryModel { topology, mlp }
    }

    /// The topology the model is built over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Uncontended cost in nanoseconds of moving `traffic` from a core on
    /// `src` to memory on `dst`.
    pub fn access_cost_ns(&self, src: NodeId, dst: NodeId, traffic: Traffic) -> f64 {
        if traffic.is_empty() {
            return 0.0;
        }
        let bw = self.topology.bandwidth_gbps(src, dst); // GB/s == bytes/ns
        let lat = self.topology.latency_ns(src, dst);
        traffic.accesses as f64 * lat / self.mlp + traffic.bytes as f64 / bw
    }

    /// Serial (uncontended) cost of everything one vproc did in a round.
    pub fn serial_cost_ns(&self, cost: &VprocRoundCost) -> f64 {
        let src = self.topology.node_of_core(cost.core);
        let mem: f64 = cost
            .traffic_to
            .iter()
            .enumerate()
            .map(|(dst, t)| self.access_cost_ns(src, NodeId::new(dst as u16), *t))
            .sum();
        cost.cpu_ns + mem
    }

    /// Costs a full round: all vprocs in `costs` ran concurrently; the round
    /// length is the maximum over the serial critical path and every shared
    /// resource's service time.
    pub fn round_duration(&self, costs: &[VprocRoundCost]) -> RoundBreakdown {
        let num_nodes = self.topology.num_nodes();
        let mut max_serial_ns = 0.0f64;
        let mut max_serial_core = CoreId::new(0);
        let mut controller_bytes = vec![0u64; num_nodes];
        let mut link_bytes = vec![vec![0u64; num_nodes]; num_nodes];

        for cost in costs {
            let serial = self.serial_cost_ns(cost);
            if serial > max_serial_ns {
                max_serial_ns = serial;
                max_serial_core = cost.core;
            }
            let src = self.topology.node_of_core(cost.core);
            for (dst_idx, t) in cost.traffic_to.iter().enumerate() {
                if t.bytes == 0 {
                    continue;
                }
                controller_bytes[dst_idx] += t.bytes;
                if dst_idx != src.index() {
                    link_bytes[src.index()][dst_idx] += t.bytes;
                }
            }
        }

        let controller_ns: Vec<f64> = controller_bytes
            .iter()
            .enumerate()
            .map(|(node, &bytes)| {
                let bw = self
                    .topology
                    .bandwidth_gbps(NodeId::new(node as u16), NodeId::new(node as u16));
                bytes as f64 / bw
            })
            .collect();

        let mut max_controller_ns = 0.0f64;
        let mut max_controller_node = NodeId::new(0);
        for (node, &ns) in controller_ns.iter().enumerate() {
            if ns > max_controller_ns {
                max_controller_ns = ns;
                max_controller_node = NodeId::new(node as u16);
            }
        }

        let mut max_link_ns = 0.0f64;
        let mut max_link = (NodeId::new(0), NodeId::new(0));
        for (src, row) in link_bytes.iter().enumerate() {
            for (dst, &bytes) in row.iter().enumerate() {
                if bytes == 0 {
                    continue;
                }
                let bw = self
                    .topology
                    .bandwidth_gbps(NodeId::new(src as u16), NodeId::new(dst as u16));
                let ns = bytes as f64 / bw;
                if ns > max_link_ns {
                    max_link_ns = ns;
                    max_link = (NodeId::new(src as u16), NodeId::new(dst as u16));
                }
            }
        }

        let duration_ns = max_serial_ns.max(max_controller_ns).max(max_link_ns);
        let bottleneck = if duration_ns == 0.0 {
            Bottleneck::Idle
        } else if duration_ns <= max_serial_ns {
            Bottleneck::Compute {
                core: max_serial_core,
            }
        } else if max_controller_ns >= max_link_ns {
            Bottleneck::MemoryController {
                node: max_controller_node,
            }
        } else {
            Bottleneck::Link {
                src: max_link.0,
                dst: max_link.1,
            }
        };

        RoundBreakdown {
            duration_ns,
            bottleneck,
            max_serial_ns,
            controller_ns,
            max_link_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amd() -> MemoryModel {
        MemoryModel::new(Topology::amd_magny_cours_48())
    }

    fn local_cost(model: &MemoryModel, core: CoreId, bytes: u64, cpu_ns: f64) -> VprocRoundCost {
        let node = model.topology().node_of_core(core);
        let mut c = VprocRoundCost::new(core, model.topology().num_nodes());
        c.add_cpu_ns(cpu_ns);
        c.add_traffic(node, Traffic::new(bytes, bytes / 64));
        c
    }

    #[test]
    fn idle_round_has_zero_duration() {
        let m = amd();
        let costs = vec![VprocRoundCost::new(CoreId::new(0), 8)];
        let r = m.round_duration(&costs);
        assert_eq!(r.duration_ns, 0.0);
        assert_eq!(r.bottleneck, Bottleneck::Idle);
    }

    #[test]
    fn pure_compute_rounds_scale_perfectly() {
        // P vprocs each doing the same CPU-only work: round duration is
        // independent of P (ideal speedup).
        let m = amd();
        let cores = m.topology().spread_cores(48);
        for p in [1usize, 8, 48] {
            let costs: Vec<_> = cores[..p]
                .iter()
                .map(|&c| {
                    let mut cost = VprocRoundCost::new(c, 8);
                    cost.add_cpu_ns(10_000.0);
                    cost
                })
                .collect();
            let r = m.round_duration(&costs);
            assert!((r.duration_ns - 10_000.0).abs() < 1e-9, "p={p}");
            assert!(matches!(r.bottleneck, Bottleneck::Compute { .. }));
        }
    }

    #[test]
    fn local_traffic_spread_over_nodes_scales() {
        // Each vproc streams 1 MB from its own node: the round should cost
        // about the same whether 1 or 48 vprocs do it (every node has its own
        // controller), i.e. local allocation scales.
        let m = amd();
        let cores = m.topology().spread_cores(48);
        let one = m.round_duration(&[local_cost(&m, cores[0], 1 << 20, 0.0)]);
        let all: Vec<_> = cores
            .iter()
            .map(|&c| local_cost(&m, c, 1 << 20, 0.0))
            .collect();
        let forty_eight = m.round_duration(&all);
        // 6 vprocs share each node's controller, so some slowdown is allowed,
        // but it must be bounded by the per-node sharing factor (6), not by
        // the vproc count (48).
        assert!(forty_eight.duration_ns <= one.duration_ns * 6.5);
    }

    #[test]
    fn socket_zero_traffic_saturates_node_zero() {
        // Every vproc streams from node 0: the duration grows linearly with
        // the number of vprocs — no scaling (Figure 7 collapse).
        let m = amd();
        let cores = m.topology().spread_cores(48);
        let make = |core: CoreId| {
            let mut c = VprocRoundCost::new(core, 8);
            // Streaming traffic: latencies are fully overlapped.
            c.add_traffic(NodeId::new(0), Traffic::new(1 << 20, 0));
            c
        };
        let one = m.round_duration(&[make(cores[0])]);
        let all: Vec<_> = cores.iter().map(|&c| make(c)).collect();
        let forty_eight = m.round_duration(&all);
        assert!(forty_eight.duration_ns > one.duration_ns * 20.0);
        assert!(matches!(
            forty_eight.bottleneck,
            Bottleneck::MemoryController { node } if node == NodeId::new(0)
        ));
    }

    #[test]
    fn remote_traffic_is_slower_than_local_serially() {
        let m = amd();
        let t = Traffic::new(1 << 20, (1 << 20) / 64);
        let local = m.access_cost_ns(NodeId::new(0), NodeId::new(0), t);
        let same_pkg = m.access_cost_ns(NodeId::new(0), NodeId::new(1), t);
        let cross_pkg = m.access_cost_ns(NodeId::new(0), NodeId::new(2), t);
        assert!(local < same_pkg);
        assert!(same_pkg < cross_pkg);
    }

    #[test]
    fn link_bottleneck_detected() {
        // Two vprocs on node 0 both stream from node 2 (cross package):
        // the 6.4 GB/s link limits the round, not node 2's controller.
        let m = amd();
        let cores = m.topology().cores_of_node(NodeId::new(0)).to_vec();
        let make = |core: CoreId| {
            let mut c = VprocRoundCost::new(core, 8);
            c.add_traffic(NodeId::new(2), Traffic::new(8 << 20, 0));
            c
        };
        let costs: Vec<_> = cores.iter().take(6).map(|&c| make(c)).collect();
        let r = m.round_duration(&costs);
        assert!(matches!(r.bottleneck, Bottleneck::Link { .. }));
    }

    #[test]
    fn empty_traffic_costs_nothing() {
        let m = amd();
        assert_eq!(
            m.access_cost_ns(NodeId::new(0), NodeId::new(5), Traffic::default()),
            0.0
        );
    }

    #[test]
    fn serial_cost_includes_cpu_and_memory() {
        let m = amd();
        let mut c = VprocRoundCost::new(CoreId::new(0), 8);
        c.add_cpu_ns(500.0);
        c.add_traffic(NodeId::new(0), Traffic::new(2130, 0));
        // 2130 bytes at 21.3 GB/s = 100 ns.
        let cost = m.serial_cost_ns(&c);
        assert!((cost - 600.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mlp_rejected() {
        let _ = MemoryModel::with_mlp(Topology::dual_node_test(), 0.0);
    }

    #[test]
    fn traffic_vector_grows_on_demand() {
        let mut c = VprocRoundCost::new(CoreId::new(0), 2);
        c.add_traffic(NodeId::new(7), Traffic::new(64, 1));
        assert_eq!(c.traffic_to.len(), 8);
        assert_eq!(c.total_bytes(), 64);
        assert!(!c.is_idle());
    }
}
