//! Worker-thread ↔ NUMA-node binding.
//!
//! The paper pins each vproc's OS thread to one core so that its local heap
//! stays in that core's node-local DRAM and L3 (§2.2). This reproduction
//! runs in environments without a NUMA syscall surface (`sched_setaffinity`
//! / `mbind` need `libc` and `unsafe`, and this crate is `forbid(unsafe)`),
//! so binding comes in two strengths:
//!
//! * **Pinned** — the calling thread was actually restricted to the target
//!   node's cores by the operating system. Not currently implementable in
//!   this build; kept in the API so a platform backend can slot in without
//!   touching callers.
//! * **Tagged** — the binding is *deterministic bookkeeping*: the runtime
//!   records the vproc→node assignment (derived from
//!   [`Topology::spread_cores`](crate::Topology::spread_cores)) and every
//!   heap/chunk/steal decision honours it, but the OS scheduler remains free
//!   to migrate the thread. All locality accounting (local vs remote
//!   promoted bytes, same-node vs cross-node steals) is exact with respect
//!   to the tagged assignment.
//!
//! [`host_numa_nodes`] and [`host_node_memory_bytes`] probe what the *host*
//! actually exposes (via Linux sysfs). [`Topology::host`](crate::Topology::host)
//! turns those probes into a runnable topology, falling back to a
//! deterministic single-node machine when sysfs is absent (non-Linux,
//! sandboxed CI). Heap geometry can likewise derive its per-node
//! address-band span from the probed node memory instead of a hard-coded
//! constant.

use crate::ids::NodeId;

/// How strongly a worker thread is bound to its NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeBinding {
    /// The OS restricted the thread to the node's cores (real affinity).
    Pinned,
    /// The assignment is deterministic bookkeeping only; the OS may migrate
    /// the thread, but every runtime decision treats it as node-resident.
    Tagged,
}

/// Binds the calling thread to `node` as strongly as the platform allows and
/// reports which strength was achieved.
///
/// In this build the binding is always [`NodeBinding::Tagged`]: real
/// affinity needs a raw `sched_setaffinity` call, which the crate's
/// `forbid(unsafe_code)` policy (and the offline container) rules out. The
/// tag is still load-bearing — the threaded backend derives every placement
/// and steal-locality decision from it.
pub fn bind_current_thread(node: NodeId) -> NodeBinding {
    // Deterministic node tagging: record nothing process-global; the caller
    // owns the assignment. The `node` parameter is part of the stable API so
    // a future platform backend can pin for real.
    let _ = node;
    NodeBinding::Tagged
}

/// Number of NUMA nodes the host operating system exposes, if discoverable
/// (Linux sysfs). `None` on other platforms or sandboxed filesystems.
///
/// This is diagnostic only: the runtime binds against the *modelled*
/// [`Topology`](crate::Topology), not the host.
pub fn host_numa_nodes() -> Option<usize> {
    let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
    let count = entries
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node")
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
        .count();
    (count > 0).then_some(count)
}

/// Total DRAM attached to host NUMA node `node`, in bytes, if discoverable
/// (Linux sysfs `nodeN/meminfo`). `None` on other platforms, sandboxed
/// filesystems, or nodes the host does not expose.
///
/// Used by [`Topology::host`](crate::Topology::host) callers that want to
/// size heap address bands from real node memory rather than the modelled
/// default.
pub fn host_node_memory_bytes(node: usize) -> Option<u64> {
    let path = format!("/sys/devices/system/node/node{node}/meminfo");
    let text = std::fs::read_to_string(path).ok()?;
    parse_meminfo_total_kb(&text).map(|kb| kb * 1024)
}

/// The smallest per-node DRAM size across all host nodes, in bytes, if every
/// node's size is discoverable. This is the conservative bound for a uniform
/// per-node heap band.
pub fn host_min_node_memory_bytes() -> Option<u64> {
    let nodes = host_numa_nodes()?;
    (0..nodes)
        .map(host_node_memory_bytes)
        .try_fold(u64::MAX, |min, m| m.map(|b| min.min(b)))
}

/// Extracts the `MemTotal` figure (in kB) from a sysfs `nodeN/meminfo` blob.
///
/// Sysfs formats each line as `Node 0 MemTotal:    16309248 kB`.
fn parse_meminfo_total_kb(text: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.split("MemTotal:").nth(1) {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            if !digits.is_empty() {
                return digits.parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_is_deterministic_tagging_in_this_build() {
        assert_eq!(bind_current_thread(NodeId::new(0)), NodeBinding::Tagged);
        assert_eq!(bind_current_thread(NodeId::new(7)), NodeBinding::Tagged);
    }

    #[test]
    fn host_probe_never_panics() {
        // The result depends on the host; only the call's safety is asserted.
        let _ = host_numa_nodes();
        let _ = host_node_memory_bytes(0);
        let _ = host_min_node_memory_bytes();
    }

    #[test]
    fn meminfo_parsing_handles_sysfs_format() {
        let blob = "Node 0 MemTotal:       16309248 kB\nNode 0 MemFree:        1203944 kB\n";
        assert_eq!(parse_meminfo_total_kb(blob), Some(16309248));
        assert_eq!(parse_meminfo_total_kb("Node 0 MemFree: 12 kB\n"), None);
        assert_eq!(parse_meminfo_total_kb(""), None);
    }
}
