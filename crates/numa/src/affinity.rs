//! Worker-thread ↔ NUMA-node binding.
//!
//! The paper pins each vproc's OS thread to one core so that its local heap
//! stays in that core's node-local DRAM and L3 (§2.2). This reproduction
//! runs in environments without a NUMA syscall surface (`sched_setaffinity`
//! / `mbind` need `libc` and `unsafe`, and this crate is `forbid(unsafe)`),
//! so binding comes in two strengths:
//!
//! * **Pinned** — the calling thread was actually restricted to the target
//!   node's cores by the operating system. Not currently implementable in
//!   this build; kept in the API so a platform backend can slot in without
//!   touching callers.
//! * **Tagged** — the binding is *deterministic bookkeeping*: the runtime
//!   records the vproc→node assignment (derived from
//!   [`Topology::spread_cores`](crate::Topology::spread_cores)) and every
//!   heap/chunk/steal decision honours it, but the OS scheduler remains free
//!   to migrate the thread. All locality accounting (local vs remote
//!   promoted bytes, same-node vs cross-node steals) is exact with respect
//!   to the tagged assignment.
//!
//! [`host_numa_nodes`] reports how many NUMA nodes the *host* actually
//! exposes (via sysfs), purely for observability — the modelled topology is
//! what the runtime binds against.

use crate::ids::NodeId;

/// How strongly a worker thread is bound to its NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeBinding {
    /// The OS restricted the thread to the node's cores (real affinity).
    Pinned,
    /// The assignment is deterministic bookkeeping only; the OS may migrate
    /// the thread, but every runtime decision treats it as node-resident.
    Tagged,
}

/// Binds the calling thread to `node` as strongly as the platform allows and
/// reports which strength was achieved.
///
/// In this build the binding is always [`NodeBinding::Tagged`]: real
/// affinity needs a raw `sched_setaffinity` call, which the crate's
/// `forbid(unsafe_code)` policy (and the offline container) rules out. The
/// tag is still load-bearing — the threaded backend derives every placement
/// and steal-locality decision from it.
pub fn bind_current_thread(node: NodeId) -> NodeBinding {
    // Deterministic node tagging: record nothing process-global; the caller
    // owns the assignment. The `node` parameter is part of the stable API so
    // a future platform backend can pin for real.
    let _ = node;
    NodeBinding::Tagged
}

/// Number of NUMA nodes the host operating system exposes, if discoverable
/// (Linux sysfs). `None` on other platforms or sandboxed filesystems.
///
/// This is diagnostic only: the runtime binds against the *modelled*
/// [`Topology`](crate::Topology), not the host.
pub fn host_numa_nodes() -> Option<usize> {
    let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
    let count = entries
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node")
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
        .count();
    (count > 0).then_some(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_is_deterministic_tagging_in_this_build() {
        assert_eq!(bind_current_thread(NodeId::new(0)), NodeBinding::Tagged);
        assert_eq!(bind_current_thread(NodeId::new(7)), NodeBinding::Tagged);
    }

    #[test]
    fn host_probe_never_panics() {
        // The result depends on the host; only the call's safety is asserted.
        let _ = host_numa_nodes();
    }
}
