//! NUMA topology, placement policies, thread-node binding, and a memory
//! cost model.
//!
//! This crate is the hardware substrate for the reproduction of
//! *Garbage Collection for Multicore NUMA Machines* (Auhagen, Bergstrom,
//! Fluet, Reppy; 2011). The paper evaluates the Manticore garbage collector
//! on two machines — a 48-core AMD Opteron 6172 ("Magny Cours") and a
//! 32-core Intel Xeon X7560 — whose memory hierarchies are described in the
//! paper's Appendix A (Figures 8 and 9, Table 1). This crate models them,
//! and **both** execution backends consume the model:
//!
//! * the **simulated** backend uses the [`MemoryModel`] to turn traffic into
//!   virtual time, reproducing the paper's figures without the hardware;
//! * the **threaded** backend (real OS threads in `mgc-runtime`) derives its
//!   worker→node assignment from [`Topology::spread_cores`] +
//!   [`bind_current_thread`], partitions the shared global heap's chunk pool
//!   by [`NodeId`], leases promotion chunks per the [`PlacementPolicy`], and
//!   orders its steal-victim probing same-node-first. The topology is no
//!   longer consumed only by the simulation.
//!
//! The pieces:
//!
//! * [`Topology`] describes packages, nodes (dies with their own memory
//!   controller), cores, per-node DRAM bandwidth, and the inter-node link
//!   bandwidth/latency matrix. The two paper machines are available as
//!   [`Topology::amd_magny_cours_48`] and [`Topology::intel_xeon_32`]; other
//!   machines can be assembled with [`TopologyBuilder`].
//! * [`AllocPolicy`] and [`PagePlacer`] implement the three physical-page
//!   allocation strategies compared in §4.3 of the paper: *local*
//!   (Manticore's default), *interleaved* (GHC-style round robin), and
//!   *socket zero* (everything on node 0).
//! * [`PlacementPolicy`] is the promotion-chunk placement knob of the
//!   threaded backend: whether a steal victim promotes the stolen graph into
//!   a chunk on the thief's node (`NodeLocal`), its own node (`FirstTouch`),
//!   round-robin across all nodes (`Interleave`), or decided at runtime by
//!   the locality ledger (`Adaptive`). Runtime front doors expose it as
//!   `Experiment::placement(..)` and `MGC_PLACEMENT`.
//! * [`AdaptiveController`] is the per-worker hysteresis state machine
//!   behind `PlacementPolicy::Adaptive`: it samples the local/remote
//!   promoted-bytes split every N promotions and switches the effective
//!   behaviour between node-local and interleave, recording every switch as
//!   a [`PlacementDecision`] for the run record.
//! * [`Topology::host`] probes the machine the process is actually running
//!   on (sysfs node count, `available_parallelism` cores), falling back to
//!   a deterministic single-node model off-Linux; [`host_node_memory_bytes`]
//!   exposes per-node DRAM so heap bands can be sized to real memory.
//! * [`bind_current_thread`] binds a worker thread to its node —
//!   [`NodeBinding::Tagged`] (deterministic bookkeeping) in this build,
//!   [`NodeBinding::Pinned`] where a platform backend can do real affinity.
//!   The achieved strength is observable per vproc in the run record.
//! * [`PageMap`] tracks which node every page of the simulated address space
//!   lives on, so the heap can ask "where is this object physically?".
//! * [`MemoryModel`] converts the work a set of virtual processors performed
//!   during a scheduling round (CPU nanoseconds plus a per-destination-node
//!   traffic vector) into elapsed virtual time using a bottleneck ("roofline")
//!   contention model over memory controllers and inter-node links. This is
//!   what turns "everybody is reading node 0's DRAM" into the bus saturation
//!   the paper observes for the socket-zero policy.
//!
//! # Example
//!
//! ```
//! use mgc_numa::{Topology, AllocPolicy, PagePlacer, NodeId};
//!
//! let topo = Topology::amd_magny_cours_48();
//! assert_eq!(topo.num_cores(), 48);
//! assert_eq!(topo.num_nodes(), 8);
//!
//! // Local-allocation policy places pages on the requesting node.
//! let placer = PagePlacer::new(AllocPolicy::Local, topo.num_nodes());
//! assert_eq!(placer.place(NodeId::new(3)), NodeId::new(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod affinity;
mod error;
mod ids;
mod memory;
mod pagemap;
mod policy;
mod stats;
mod topology;

pub use adaptive::{
    AdaptiveController, DecisionReason, PlacementDecision, PlacementMode,
    DEFAULT_HI_REMOTE_PERMILLE, DEFAULT_LO_REMOTE_PERMILLE, DEFAULT_PATIENCE, DEFAULT_SAMPLE_EVERY,
};
pub use affinity::{
    bind_current_thread, host_min_node_memory_bytes, host_node_memory_bytes, host_numa_nodes,
    NodeBinding,
};
pub use error::TopologyError;
pub use ids::{CoreId, NodeId, PackageId};
pub use memory::{Bottleneck, MemoryModel, RoundBreakdown, Traffic, VprocRoundCost};
pub use pagemap::{PageMap, PAGE_SIZE};
pub use policy::{AllocPolicy, PagePlacer, PlacementPolicy};
pub use stats::{AccessClass, TrafficStats};
pub use topology::{CacheSpec, CoreSpec, NodeSpec, Topology, TopologyBuilder};
