//! The Manticore NUMA garbage collector: the paper's primary contribution.
//!
//! This crate implements the collection algorithms of *Garbage Collection
//! for Multicore NUMA Machines* (Auhagen, Bergstrom, Fluet, Reppy; 2011) on
//! top of the heap mechanism provided by `mgc-heap`:
//!
//! * **Minor collections** ([`Collector::minor`]) copy live nursery objects
//!   into the old-data area of the same local heap; they need no
//!   synchronisation because nothing outside the vproc can point into its
//!   nursery (§2.3, §3.3, Figure 2).
//! * **Major collections** ([`Collector::major`]) promote the live old data
//!   to the vproc's current global-heap chunk while exempting the young data
//!   that the preceding minor collection just copied (§3.3, Figure 3).
//! * **Promotion** ([`Collector::promote`]) copies a single object graph to
//!   the global heap so it can be shared with another vproc (work stealing
//!   and CML message passing both require this).
//! * **Global collections** ([`Collector::global`]) are stop-the-world,
//!   parallel, copying collections of the global heap organised around
//!   per-node from-space chunk lists and node-affine to-space allocation
//!   (§3.4).
//!
//! Every operation returns a [`GcCost`] describing the CPU time and
//! per-NUMA-node memory traffic it generated; the `mgc-runtime` crate feeds
//! those into the machine's memory model so collector work contends for the
//! same memory controllers and interconnect links as mutator work.
//!
//! # Example
//!
//! ```
//! use mgc_core::{Collector, GcConfig};
//! use mgc_heap::{Heap, HeapConfig};
//! use mgc_numa::NodeId;
//!
//! let mut heap = Heap::new(HeapConfig::small_for_tests(), &[NodeId::new(0)], 1);
//! let mut collector = Collector::new(GcConfig::small_for_tests(), 1, 1);
//!
//! // Allocate a little object graph, then collect with its root.
//! let leaf = heap.alloc_raw(0, &[42])?;
//! let root = heap.alloc_vector(0, &[leaf.raw()])?;
//! let mut roots = vec![root];
//! let outcome = collector.minor(&mut heap, 0, &mut roots);
//! assert!(outcome.copied_bytes > 0);
//! // The root was rewritten to the surviving copy.
//! assert_eq!(heap.payload(mgc_heap::Addr::new(heap.read_field(roots[0], 0))), vec![42]);
//! # Ok::<(), mgc_heap::HeapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collector;
mod config;
mod cost;
mod global;
pub mod histogram;
mod major;
mod stats;

pub use collector::{Collector, GcOutcome};
pub use config::GcConfig;
pub use cost::{
    GcCost, CHUNK_ACQUIRE_NS, COLLECTION_FIXED_NS, CPU_NS_PER_WORD_COPIED, CPU_NS_PER_WORD_SCANNED,
    GLOBAL_BARRIER_NS,
};
pub use global::{
    evacuate_roots, flip_to_from_space, forward_parallel, release_from_space, scan_pass,
    scan_pass_budgeted, scan_young_fields, GlobalOutcome, ParallelGcState, ScanPassOutcome,
};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use stats::{CollectionKind, GcStats, PauseStats, PAUSE_BUCKETS};
