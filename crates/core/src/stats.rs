//! Collector statistics.

use crate::histogram::{Histogram, HISTOGRAM_BUCKETS};
use serde::{Deserialize, Serialize};

/// The kind of a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectionKind {
    /// Minor collection: nursery survivors copied into the old-data area.
    Minor,
    /// Major collection: old data promoted to the global heap.
    Major,
    /// Promotion of a single object graph (sharing with another vproc).
    Promotion,
    /// Global stop-the-world parallel collection of the global heap.
    Global,
}

impl CollectionKind {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CollectionKind::Minor => "minor",
            CollectionKind::Major => "major",
            CollectionKind::Promotion => "promotion",
            CollectionKind::Global => "global",
        }
    }
}

impl std::fmt::Display for CollectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of log2 buckets in a [`PauseStats`] histogram (alias of
/// [`HISTOGRAM_BUCKETS`], kept for the established pause-telemetry API).
pub const PAUSE_BUCKETS: usize = HISTOGRAM_BUCKETS;

/// A fixed-footprint summary of a series of pause durations.
///
/// Every individual mutator-visible pause (minor, major, or one increment of
/// a global collection) is recorded as it happens; per-vproc records merge
/// losslessly into machine-wide aggregates. This is the shared log2-bucket
/// [`Histogram`] under a pause-flavoured name — see that type for the
/// recording, merge, and percentile semantics.
pub type PauseStats = Histogram;

/// Counters for one vproc's collector activity (or the whole machine's when
/// aggregated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GcStats {
    /// Number of minor collections.
    pub minor_collections: u64,
    /// Number of major collections.
    pub major_collections: u64,
    /// Number of object promotions.
    pub promotions: u64,
    /// Number of global collections this vproc participated in.
    pub global_collections: u64,
    /// Bytes copied within the local heap by minor collections.
    pub minor_copied_bytes: u64,
    /// Bytes promoted to the global heap by major collections.
    pub major_promoted_bytes: u64,
    /// Bytes promoted to the global heap by explicit promotions.
    pub promotion_bytes: u64,
    /// Bytes copied between global chunks by global collections.
    pub global_copied_bytes: u64,
    /// Pauses for local collections that stayed minor.
    pub minor_pauses: PauseStats,
    /// Pauses for local collections that ran a major (promotion) phase.
    pub major_pauses: PauseStats,
    /// Pauses for global-collection increments (one entry per increment; an
    /// unbudgeted collection is a single increment).
    pub global_pauses: PauseStats,
}

impl GcStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of collections of any kind.
    pub fn total_collections(&self) -> u64 {
        self.minor_collections + self.major_collections + self.global_collections
    }

    /// Total bytes moved by the collector.
    pub fn total_moved_bytes(&self) -> u64 {
        self.minor_copied_bytes
            + self.major_promoted_bytes
            + self.promotion_bytes
            + self.global_copied_bytes
    }

    /// Total time spent collecting, in nanoseconds (compatibility accessor
    /// over the structured [`PauseStats`] fields).
    pub fn total_pause_ns(&self) -> f64 {
        self.minor_pauses.sum_ns + self.major_pauses.sum_ns + self.global_pauses.sum_ns
    }

    /// All pauses of every kind merged into one record — the series a mutator
    /// on this vproc actually experienced.
    pub fn all_pauses(&self) -> PauseStats {
        let mut all = self.minor_pauses;
        all.merge(&self.major_pauses);
        all.merge(&self.global_pauses);
        all
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &GcStats) {
        self.minor_collections += other.minor_collections;
        self.major_collections += other.major_collections;
        self.promotions += other.promotions;
        self.global_collections += other.global_collections;
        self.minor_copied_bytes += other.minor_copied_bytes;
        self.major_promoted_bytes += other.major_promoted_bytes;
        self.promotion_bytes += other.promotion_bytes;
        self.global_copied_bytes += other.global_copied_bytes;
        self.minor_pauses.merge(&other.minor_pauses);
        self.major_pauses.merge(&other.major_pauses);
        self.global_pauses.merge(&other.global_pauses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = GcStats::new();
        a.minor_collections = 3;
        a.minor_copied_bytes = 100;
        a.minor_pauses.record(5.0);
        let mut b = GcStats::new();
        b.major_collections = 1;
        b.major_promoted_bytes = 50;
        b.global_pauses.record(7.0);
        a.merge(&b);
        assert_eq!(a.total_collections(), 4);
        assert_eq!(a.total_moved_bytes(), 150);
        assert!((a.total_pause_ns() - 12.0).abs() < 1e-12);
        let all = a.all_pauses();
        assert_eq!(all.count, 2);
        assert!((all.max_ns - 7.0).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(CollectionKind::Minor.to_string(), "minor");
        assert_eq!(CollectionKind::Global.label(), "global");
        assert_eq!(CollectionKind::Promotion.label(), "promotion");
        assert_eq!(CollectionKind::Major.label(), "major");
    }

    #[test]
    fn pause_stats_is_the_shared_histogram() {
        // The alias keeps the established API: construction, recording, and
        // percentiles all go through `mgc_core::histogram`.
        let mut p = PauseStats::new();
        p.record(100.0);
        let h: Histogram = p;
        assert_eq!(h.count, 1);
        assert_eq!(PAUSE_BUCKETS, HISTOGRAM_BUCKETS);
    }
}
