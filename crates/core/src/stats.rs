//! Collector statistics.

use serde::{Deserialize, Serialize};

/// The kind of a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectionKind {
    /// Minor collection: nursery survivors copied into the old-data area.
    Minor,
    /// Major collection: old data promoted to the global heap.
    Major,
    /// Promotion of a single object graph (sharing with another vproc).
    Promotion,
    /// Global stop-the-world parallel collection of the global heap.
    Global,
}

impl CollectionKind {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CollectionKind::Minor => "minor",
            CollectionKind::Major => "major",
            CollectionKind::Promotion => "promotion",
            CollectionKind::Global => "global",
        }
    }
}

impl std::fmt::Display for CollectionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of log2 buckets in a [`PauseStats`] histogram. Bucket `i` counts
/// pauses in `[2^i, 2^(i+1))` nanoseconds; `2^48` ns is ~3.3 days, far beyond
/// any pause this runtime can produce, so the last bucket never saturates in
/// practice (out-of-range values are clamped into it rather than dropped).
pub const PAUSE_BUCKETS: usize = 48;

/// A fixed-footprint summary of a series of pause durations: count, sum, max,
/// and a log2-bucket histogram that supports approximate percentiles.
///
/// Every individual mutator-visible pause (minor, major, or one increment of
/// a global collection) is [`record`](Self::record)ed as it happens; per-vproc
/// records [`merge`](Self::merge) losslessly into machine-wide aggregates
/// (counts, sums, and buckets add; max takes the max), so merge order never
/// changes the result.
///
/// Percentiles are bucket-resolution approximations: [`PauseStats::percentile`]
/// (Self::percentile) returns the upper bound of the bucket holding the
/// requested rank, capped at the observed maximum — an over-approximation by
/// at most 2x, which is plenty for p50/p99 pause reporting and for a CI gate
/// on the (exact) maximum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PauseStats {
    /// Number of pauses recorded.
    pub count: u64,
    /// Sum of all recorded pauses, in nanoseconds.
    pub sum_ns: f64,
    /// The largest single recorded pause, in nanoseconds (exact, not
    /// bucket-rounded).
    pub max_ns: f64,
    /// Log2 histogram: `buckets[i]` counts pauses in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; PAUSE_BUCKETS],
}

impl Default for PauseStats {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
            buckets: [0; PAUSE_BUCKETS],
        }
    }
}

impl PauseStats {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no pause has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Index of the log2 bucket covering a pause of `ns` nanoseconds.
    fn bucket_index(ns: f64) -> usize {
        if ns < 2.0 {
            return 0;
        }
        // floor(log2(ns)) via the integer part; ns >= 2 here so ilog2 >= 1.
        let whole = ns.min(u64::MAX as f64) as u64;
        (whole.ilog2() as usize).min(PAUSE_BUCKETS - 1)
    }

    /// Records one pause of `ns` nanoseconds. Non-finite or negative values
    /// are clamped to zero (still counted: a pause happened even if the clock
    /// could not size it).
    pub fn record(&mut self, ns: f64) {
        let ns = if ns.is_finite() { ns.max(0.0) } else { 0.0 };
        self.count += 1;
        self.sum_ns += ns;
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.buckets[Self::bucket_index(ns)] += 1;
    }

    /// Mean pause in nanoseconds (zero when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Approximate `p`-th percentile in nanoseconds, `p` in `[0, 100]`
    /// (values outside the range are clamped). Returns the upper bound of
    /// the histogram bucket containing the requested rank, capped at the
    /// exact observed maximum; zero when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = if p.is_finite() {
            p.clamp(0.0, 100.0)
        } else {
            100.0
        };
        // Rank of the requested observation, 1-based: p=0 -> 1, p=100 -> count.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = (1u64 << (i as u32 + 1).min(63)) as f64;
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another record into this one. Associative and commutative:
    /// counts, sums, and buckets add; max takes the max.
    pub fn merge(&mut self, other: &PauseStats) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// Counters for one vproc's collector activity (or the whole machine's when
/// aggregated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GcStats {
    /// Number of minor collections.
    pub minor_collections: u64,
    /// Number of major collections.
    pub major_collections: u64,
    /// Number of object promotions.
    pub promotions: u64,
    /// Number of global collections this vproc participated in.
    pub global_collections: u64,
    /// Bytes copied within the local heap by minor collections.
    pub minor_copied_bytes: u64,
    /// Bytes promoted to the global heap by major collections.
    pub major_promoted_bytes: u64,
    /// Bytes promoted to the global heap by explicit promotions.
    pub promotion_bytes: u64,
    /// Bytes copied between global chunks by global collections.
    pub global_copied_bytes: u64,
    /// Pauses for local collections that stayed minor.
    pub minor_pauses: PauseStats,
    /// Pauses for local collections that ran a major (promotion) phase.
    pub major_pauses: PauseStats,
    /// Pauses for global-collection increments (one entry per increment; an
    /// unbudgeted collection is a single increment).
    pub global_pauses: PauseStats,
}

impl GcStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of collections of any kind.
    pub fn total_collections(&self) -> u64 {
        self.minor_collections + self.major_collections + self.global_collections
    }

    /// Total bytes moved by the collector.
    pub fn total_moved_bytes(&self) -> u64 {
        self.minor_copied_bytes
            + self.major_promoted_bytes
            + self.promotion_bytes
            + self.global_copied_bytes
    }

    /// Total time spent collecting, in nanoseconds (compatibility accessor
    /// over the structured [`PauseStats`] fields).
    pub fn total_pause_ns(&self) -> f64 {
        self.minor_pauses.sum_ns + self.major_pauses.sum_ns + self.global_pauses.sum_ns
    }

    /// All pauses of every kind merged into one record — the series a mutator
    /// on this vproc actually experienced.
    pub fn all_pauses(&self) -> PauseStats {
        let mut all = self.minor_pauses;
        all.merge(&self.major_pauses);
        all.merge(&self.global_pauses);
        all
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &GcStats) {
        self.minor_collections += other.minor_collections;
        self.major_collections += other.major_collections;
        self.promotions += other.promotions;
        self.global_collections += other.global_collections;
        self.minor_copied_bytes += other.minor_copied_bytes;
        self.major_promoted_bytes += other.major_promoted_bytes;
        self.promotion_bytes += other.promotion_bytes;
        self.global_copied_bytes += other.global_copied_bytes;
        self.minor_pauses.merge(&other.minor_pauses);
        self.major_pauses.merge(&other.major_pauses);
        self.global_pauses.merge(&other.global_pauses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = GcStats::new();
        a.minor_collections = 3;
        a.minor_copied_bytes = 100;
        a.minor_pauses.record(5.0);
        let mut b = GcStats::new();
        b.major_collections = 1;
        b.major_promoted_bytes = 50;
        b.global_pauses.record(7.0);
        a.merge(&b);
        assert_eq!(a.total_collections(), 4);
        assert_eq!(a.total_moved_bytes(), 150);
        assert!((a.total_pause_ns() - 12.0).abs() < 1e-12);
        let all = a.all_pauses();
        assert_eq!(all.count, 2);
        assert!((all.max_ns - 7.0).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(CollectionKind::Minor.to_string(), "minor");
        assert_eq!(CollectionKind::Global.label(), "global");
        assert_eq!(CollectionKind::Promotion.label(), "promotion");
        assert_eq!(CollectionKind::Major.label(), "major");
    }

    #[test]
    fn bucket_indices_follow_log2() {
        assert_eq!(PauseStats::bucket_index(0.0), 0);
        assert_eq!(PauseStats::bucket_index(1.0), 0);
        assert_eq!(PauseStats::bucket_index(1.99), 0);
        assert_eq!(PauseStats::bucket_index(2.0), 1);
        assert_eq!(PauseStats::bucket_index(3.99), 1);
        assert_eq!(PauseStats::bucket_index(4.0), 2);
        assert_eq!(PauseStats::bucket_index(1024.0), 10);
        assert_eq!(PauseStats::bucket_index(1025.0), 10);
        // Out-of-range values clamp into the last bucket instead of panicking.
        assert_eq!(PauseStats::bucket_index(1e30), PAUSE_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut p = PauseStats::new();
        assert!(p.is_empty());
        p.record(100.0);
        p.record(300.0);
        p.record(200.0);
        assert_eq!(p.count, 3);
        assert!((p.sum_ns - 600.0).abs() < 1e-9);
        assert!((p.max_ns - 300.0).abs() < 1e-9);
        assert!((p.mean_ns() - 200.0).abs() < 1e-9);
        // Negative / non-finite clamp to zero but still count.
        p.record(-5.0);
        p.record(f64::NAN);
        assert_eq!(p.count, 5);
        assert!((p.sum_ns - 600.0).abs() < 1e-9);
        assert_eq!(p.buckets[0], 2);
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = PauseStats::new();
        assert_eq!(empty.percentile(50.0), 0.0);
        assert_eq!(empty.percentile(100.0), 0.0);

        let mut one = PauseStats::new();
        one.record(1000.0);
        // A single observation is every percentile, and the cap keeps the
        // bucket upper bound from over-reporting it.
        assert!((one.percentile(0.0) - 1000.0).abs() < 1e-9);
        assert!((one.percentile(50.0) - 1000.0).abs() < 1e-9);
        assert!((one.percentile(100.0) - 1000.0).abs() < 1e-9);
        // Out-of-range p clamps instead of panicking.
        assert!((one.percentile(-3.0) - 1000.0).abs() < 1e-9);
        assert!((one.percentile(250.0) - 1000.0).abs() < 1e-9);

        // 99 short pauses in [64, 128) and one huge outlier: p50 reads the
        // short bucket's upper bound, p100 the exact max, and p99 still the
        // short bucket (rank 99 of 100).
        let mut p = PauseStats::new();
        for _ in 0..99 {
            p.record(100.0);
        }
        p.record(1e9);
        assert!((p.percentile(50.0) - 128.0).abs() < 1e-9);
        assert!((p.percentile(99.0) - 128.0).abs() < 1e-9);
        assert!((p.percentile(100.0) - 1e9).abs() < 1e-3);
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut p = PauseStats::new();
        for i in 1..=17u32 {
            p.record(f64::from(i) * 37.0);
        }
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert!(p.percentile(q) <= p.max_ns);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = PauseStats::new();
        let mut b = PauseStats::new();
        let mut c = PauseStats::new();
        for (stats, base) in [(&mut a, 10.0), (&mut b, 1e4), (&mut c, 3e6)] {
            for i in 0..7u32 {
                stats.record(base * f64::from(i + 1));
            }
        }

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count, 21);
    }
}
