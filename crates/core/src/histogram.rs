//! A fixed-footprint log2-bucket duration histogram.
//!
//! One summary type serves every duration series the runtime reports:
//! collector pauses ([`PauseStats`](crate::PauseStats) is an alias of
//! [`Histogram`]) and request latencies (`LatencyStats` in `mgc-runtime`,
//! the same alias). Keeping them literally the same code means the
//! percentile and merge semantics are tested once and hold everywhere.

use serde::{Deserialize, Serialize};

/// Number of log2 buckets in a [`Histogram`]. Bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds; `2^48` ns is ~3.3 days, far beyond any pause
/// or request latency this runtime can produce, so the last bucket never
/// saturates in practice (out-of-range values are clamped into it rather than
/// dropped).
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed-footprint summary of a series of durations: count, sum, max, and
/// a log2-bucket histogram that supports approximate percentiles.
///
/// Every individual observation (a mutator-visible pause, an end-to-end
/// request latency) is [`record`](Self::record)ed as it happens; per-vproc
/// records [`merge`](Self::merge) losslessly into machine-wide aggregates
/// (counts, sums, and buckets add; max takes the max), so merge order never
/// changes the result.
///
/// Percentiles are bucket-resolution approximations:
/// [`percentile`](Self::percentile) returns the upper bound of the bucket
/// holding the requested rank, capped at the observed maximum — an
/// over-approximation by at most 2x, which is plenty for p50/p99/p999
/// reporting and for a CI gate on the (exact) maximum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of durations recorded.
    pub count: u64,
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_ns: f64,
    /// The largest single recorded duration, in nanoseconds (exact, not
    /// bucket-rounded).
    pub max_ns: f64,
    /// Log2 histogram: `buckets[i]` counts durations in `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Index of the log2 bucket covering a duration of `ns` nanoseconds.
    fn bucket_index(ns: f64) -> usize {
        if ns < 2.0 {
            return 0;
        }
        // floor(log2(ns)) via the integer part; ns >= 2 here so ilog2 >= 1.
        let whole = ns.min(u64::MAX as f64) as u64;
        (whole.ilog2() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one duration of `ns` nanoseconds. Non-finite or negative
    /// values are clamped to zero (still counted: an event happened even if
    /// the clock could not size it).
    pub fn record(&mut self, ns: f64) {
        let ns = if ns.is_finite() { ns.max(0.0) } else { 0.0 };
        self.count += 1;
        self.sum_ns += ns;
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.buckets[Self::bucket_index(ns)] += 1;
    }

    /// Mean duration in nanoseconds (zero when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Approximate `p`-th percentile in nanoseconds, `p` in `[0, 100]`
    /// (values outside the range are clamped). Returns the upper bound of
    /// the histogram bucket containing the requested rank, capped at the
    /// exact observed maximum; zero when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = if p.is_finite() {
            p.clamp(0.0, 100.0)
        } else {
            100.0
        };
        // Rank of the requested observation, 1-based: p=0 -> 1, p=100 -> count.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = (1u64 << (i as u32 + 1).min(63)) as f64;
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another record into this one. Associative and commutative:
    /// counts, sums, and buckets add; max takes the max.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_indices_follow_log2() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1.0), 0);
        assert_eq!(Histogram::bucket_index(1.99), 0);
        assert_eq!(Histogram::bucket_index(2.0), 1);
        assert_eq!(Histogram::bucket_index(3.99), 1);
        assert_eq!(Histogram::bucket_index(4.0), 2);
        assert_eq!(Histogram::bucket_index(1024.0), 10);
        assert_eq!(Histogram::bucket_index(1025.0), 10);
        // Out-of-range values clamp into the last bucket instead of panicking.
        assert_eq!(Histogram::bucket_index(1e30), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut p = Histogram::new();
        assert!(p.is_empty());
        p.record(100.0);
        p.record(300.0);
        p.record(200.0);
        assert_eq!(p.count, 3);
        assert!((p.sum_ns - 600.0).abs() < 1e-9);
        assert!((p.max_ns - 300.0).abs() < 1e-9);
        assert!((p.mean_ns() - 200.0).abs() < 1e-9);
        // Negative / non-finite clamp to zero but still count.
        p.record(-5.0);
        p.record(f64::NAN);
        assert_eq!(p.count, 5);
        assert!((p.sum_ns - 600.0).abs() < 1e-9);
        assert_eq!(p.buckets[0], 2);
    }

    #[test]
    fn percentile_edge_cases() {
        let empty = Histogram::new();
        assert_eq!(empty.percentile(50.0), 0.0);
        assert_eq!(empty.percentile(100.0), 0.0);

        let mut one = Histogram::new();
        one.record(1000.0);
        // A single observation is every percentile, and the cap keeps the
        // bucket upper bound from over-reporting it.
        assert!((one.percentile(0.0) - 1000.0).abs() < 1e-9);
        assert!((one.percentile(50.0) - 1000.0).abs() < 1e-9);
        assert!((one.percentile(100.0) - 1000.0).abs() < 1e-9);
        // Out-of-range p clamps instead of panicking.
        assert!((one.percentile(-3.0) - 1000.0).abs() < 1e-9);
        assert!((one.percentile(250.0) - 1000.0).abs() < 1e-9);

        // 99 short pauses in [64, 128) and one huge outlier: p50 reads the
        // short bucket's upper bound, p100 the exact max, and p99 still the
        // short bucket (rank 99 of 100).
        let mut p = Histogram::new();
        for _ in 0..99 {
            p.record(100.0);
        }
        p.record(1e9);
        assert!((p.percentile(50.0) - 128.0).abs() < 1e-9);
        assert!((p.percentile(99.0) - 128.0).abs() < 1e-9);
        assert!((p.percentile(100.0) - 1e9).abs() < 1e-3);
    }

    #[test]
    fn percentile_edges_on_empty_single_and_saturated() {
        // Empty: every percentile is zero, including the clamped edges.
        let empty = Histogram::new();
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(empty.percentile(p), 0.0);
        }

        // Single sample: p=0, p=50, and p=100 all resolve to rank 1.
        let mut single = Histogram::new();
        single.record(3.5);
        for p in [0.0, 50.0, 100.0] {
            assert!((single.percentile(p) - 3.5).abs() < 1e-9);
        }

        // Saturated last bucket: values beyond 2^48 ns clamp into bucket 47,
        // whose nominal upper bound (2^48) is far below the recorded values.
        // Every percentile then reads that bound — the documented
        // bucket-resolution behaviour; the exact series maximum stays
        // available in `max_ns`.
        let mut sat = Histogram::new();
        sat.record(1e30);
        sat.record(2e30);
        sat.record(3e30);
        assert_eq!(sat.buckets[HISTOGRAM_BUCKETS - 1], 3);
        let bound = (1u64 << HISTOGRAM_BUCKETS as u32) as f64;
        for p in [0.0, 50.0, 100.0] {
            assert!((sat.percentile(p) - bound).abs() < 1e-9);
        }
        assert!((sat.max_ns - 3e30).abs() < 1e18);
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut p = Histogram::new();
        for i in 1..=17u32 {
            p.record(f64::from(i) * 37.0);
        }
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert!(p.percentile(q) <= p.max_ns);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for (stats, base) in [(&mut a, 10.0), (&mut b, 1e4), (&mut c, 3e6)] {
            for i in 0..7u32 {
                stats.record(base * f64::from(i + 1));
            }
        }

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count, 21);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Splitting a sample series across per-vproc histograms and merging
        // must report the same percentiles as one histogram fed the
        // concatenation: identical, in fact, since the buckets add exactly
        // and max takes the max. (The satellite only asks for agreement
        // within one bucket; the merge being lossless gives equality.)
        #[test]
        fn merged_percentiles_match_concatenated(
            samples in proptest::collection::vec(1u64..1_000_000_000u64, 1..200),
            split in 0usize..200,
        ) {
            let split = split % samples.len();
            let mut whole = Histogram::new();
            let mut left = Histogram::new();
            let mut right = Histogram::new();
            for (i, &s) in samples.iter().enumerate() {
                let ns = s as f64;
                whole.record(ns);
                if i < split {
                    left.record(ns);
                } else {
                    right.record(ns);
                }
            }
            let mut merged = left;
            merged.merge(&right);
            prop_assert_eq!(merged, whole);
            for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
                let a = merged.percentile(p);
                let b = whole.percentile(p);
                // Within one log2 bucket: a factor of two.
                prop_assert!(a <= b * 2.0 + 1e-9 && b <= a * 2.0 + 1e-9);
            }
        }
    }
}
