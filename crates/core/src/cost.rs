//! Cost accounting for collector work.
//!
//! Every collection returns a [`GcCost`] describing the CPU work it did and
//! the bytes it moved to or from each NUMA node. The runtime feeds these
//! into the `mgc-numa` memory model so that collector work competes for the
//! same memory controllers and links as mutator work — this is how the
//! benefit of node-local collection (and the penalty of socket-zero
//! placement) shows up in the reproduced figures.

use mgc_numa::{NodeId, Traffic, VprocRoundCost};
use serde::{Deserialize, Serialize};

/// CPU nanoseconds charged per word the collector copies.
pub const CPU_NS_PER_WORD_COPIED: f64 = 1.0;
/// CPU nanoseconds charged per word the collector scans (reads and tests).
pub const CPU_NS_PER_WORD_SCANNED: f64 = 0.6;
/// Fixed CPU nanoseconds charged per collection for entering/leaving the
/// collector (saving registers, flipping spaces, and so on).
pub const COLLECTION_FIXED_NS: f64 = 2_000.0;
/// Cost of acquiring a fresh global-heap chunk: this is the node-local or
/// global synchronisation point described in §3.3.
pub const CHUNK_ACQUIRE_NS: f64 = 1_500.0;
/// Cost per vproc of the global-collection barrier (§3.4 steps 1–3).
pub const GLOBAL_BARRIER_NS: f64 = 25_000.0;

/// Accumulated cost of one or more collector operations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GcCost {
    /// Pure CPU time in nanoseconds.
    pub cpu_ns: f64,
    /// Bytes read from or written to each node (indexed by node id).
    pub bytes_to_node: Vec<u64>,
}

impl GcCost {
    /// Creates an empty cost record for a machine with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GcCost {
            cpu_ns: 0.0,
            bytes_to_node: vec![0; num_nodes],
        }
    }

    /// Charges fixed CPU time.
    pub fn charge_cpu(&mut self, ns: f64) {
        self.cpu_ns += ns;
    }

    /// Charges a copy of `bytes` bytes from memory on `src` to memory on
    /// `dst` (reads on the source node, writes on the destination node) plus
    /// the per-word CPU cost.
    pub fn charge_copy(&mut self, src: NodeId, dst: NodeId, bytes: usize) {
        self.touch(src, bytes as u64);
        self.touch(dst, bytes as u64);
        self.cpu_ns += (bytes as f64 / 8.0) * CPU_NS_PER_WORD_COPIED;
    }

    /// Charges a scan of `bytes` bytes resident on `node`.
    pub fn charge_scan(&mut self, node: NodeId, bytes: usize) {
        self.touch(node, bytes as u64);
        self.cpu_ns += (bytes as f64 / 8.0) * CPU_NS_PER_WORD_SCANNED;
    }

    /// Total bytes of memory traffic this cost represents.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_node.iter().sum()
    }

    /// Merges another cost into this one.
    pub fn merge(&mut self, other: &GcCost) {
        self.cpu_ns += other.cpu_ns;
        if self.bytes_to_node.len() < other.bytes_to_node.len() {
            self.bytes_to_node.resize(other.bytes_to_node.len(), 0);
        }
        for (i, b) in other.bytes_to_node.iter().enumerate() {
            self.bytes_to_node[i] += b;
        }
    }

    /// Adds this cost onto a vproc's round cost for the memory model.
    pub fn apply_to(&self, round: &mut VprocRoundCost) {
        round.add_cpu_ns(self.cpu_ns);
        for (node, &bytes) in self.bytes_to_node.iter().enumerate() {
            if bytes > 0 {
                round.add_traffic(NodeId::new(node as u16), Traffic::new(bytes, 0));
            }
        }
    }

    fn touch(&mut self, node: NodeId, bytes: u64) {
        if self.bytes_to_node.len() <= node.index() {
            self.bytes_to_node.resize(node.index() + 1, 0);
        }
        self.bytes_to_node[node.index()] += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_numa::CoreId;

    #[test]
    fn copy_charges_both_nodes_and_cpu() {
        let mut cost = GcCost::new(4);
        cost.charge_copy(NodeId::new(0), NodeId::new(2), 64);
        assert_eq!(cost.bytes_to_node, vec![64, 0, 64, 0]);
        assert!((cost.cpu_ns - 8.0 * CPU_NS_PER_WORD_COPIED).abs() < 1e-9);
        assert_eq!(cost.total_bytes(), 128);
    }

    #[test]
    fn scan_charges_one_node() {
        let mut cost = GcCost::new(2);
        cost.charge_scan(NodeId::new(1), 80);
        assert_eq!(cost.bytes_to_node, vec![0, 80]);
        assert!((cost.cpu_ns - 10.0 * CPU_NS_PER_WORD_SCANNED).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_and_grows() {
        let mut a = GcCost::new(1);
        a.charge_cpu(5.0);
        let mut b = GcCost::new(4);
        b.charge_scan(NodeId::new(3), 8);
        a.merge(&b);
        assert_eq!(a.bytes_to_node.len(), 4);
        assert_eq!(a.bytes_to_node[3], 8);
        assert!(a.cpu_ns > 5.0);
    }

    #[test]
    fn apply_to_round_cost() {
        let mut cost = GcCost::new(2);
        cost.charge_copy(NodeId::new(0), NodeId::new(1), 16);
        cost.charge_cpu(3.0);
        let mut round = VprocRoundCost::new(CoreId::new(0), 2);
        cost.apply_to(&mut round);
        assert_eq!(round.traffic_to[0].bytes, 16);
        assert_eq!(round.traffic_to[1].bytes, 16);
        assert!(round.cpu_ns > 0.0);
    }

    #[test]
    fn out_of_range_node_grows_vector() {
        let mut cost = GcCost::new(1);
        cost.charge_scan(NodeId::new(5), 8);
        assert_eq!(cost.bytes_to_node.len(), 6);
    }
}
