//! The collector: shared state, the minor collection, and the trigger logic.
//!
//! The collection algorithms follow §3.3–3.4 of the paper:
//!
//! * [`Collector::minor`] copies live nursery objects into the old-data area
//!   of the same local heap (Figure 2). Because no other heap can point into
//!   the nursery, minor collections need no synchronisation at all.
//! * [`Collector::collect_local`] is the entry point a vproc uses when its
//!   nursery fills: it runs a minor collection and, when the re-divided
//!   nursery falls below the threshold or a global collection is pending,
//!   follows it with a major collection (implemented in `major.rs`).
//! * [`Collector::global`] (in `global.rs`) is the stop-the-world parallel
//!   collection of the global heap.

use crate::config::GcConfig;
use crate::cost::{GcCost, CHUNK_ACQUIRE_NS, COLLECTION_FIXED_NS};
use crate::stats::{CollectionKind, GcStats};
use mgc_heap::{word_as_pointer, Addr, EvacTarget, GcHeap, Space};

/// Result of a single (per-vproc) collection.
#[derive(Debug, Clone, PartialEq)]
pub struct GcOutcome {
    /// Which collection ran.
    pub kind: CollectionKind,
    /// Cost to charge to the collecting vproc.
    pub cost: GcCost,
    /// Bytes copied within the local heap.
    pub copied_bytes: u64,
    /// Bytes promoted to the global heap.
    pub promoted_bytes: u64,
    /// Bytes promoted to the global heap, by the NUMA node the receiving
    /// chunk lives on (empty for collections that promote nothing, e.g.
    /// minors). The runtime splits this into local vs remote against the
    /// consumer's node.
    pub promoted_bytes_by_node: Vec<u64>,
    /// Whether a major collection was (or should be) triggered.
    pub triggered_major: bool,
    /// Whether the global-heap threshold has been exceeded and a global
    /// collection should be scheduled.
    pub needs_global: bool,
}

impl GcOutcome {
    /// Splits the promoted bytes into `(local, remote)` with respect to a
    /// consumer on `node`. A collection that recorded no per-node breakdown
    /// reports everything as local (nothing was promoted).
    pub fn promoted_split(&self, node: mgc_numa::NodeId) -> (u64, u64) {
        let local = self
            .promoted_bytes_by_node
            .get(node.index())
            .copied()
            .unwrap_or(0);
        (local, self.promoted_bytes.saturating_sub(local))
    }
}

/// Running per-node tally of one collection's promoted bytes.
#[derive(Debug, Clone, Default)]
pub(crate) struct PromotionTally {
    /// Total promoted bytes.
    pub total: u64,
    /// Promoted bytes per destination node.
    pub by_node: Vec<u64>,
}

impl PromotionTally {
    pub(crate) fn new(num_nodes: usize) -> Self {
        PromotionTally {
            total: 0,
            by_node: vec![0; num_nodes],
        }
    }

    pub(crate) fn add(&mut self, node: mgc_numa::NodeId, bytes: u64) {
        self.total += bytes;
        if let Some(slot) = self.by_node.get_mut(node.index()) {
            *slot += bytes;
        }
    }
}

/// The NUMA-aware generational collector.
///
/// One `Collector` serves the whole machine: it holds the configuration,
/// per-vproc statistics, and the pending-global-collection flag. The heap is
/// passed in on every call so the runtime keeps ownership of it.
#[derive(Debug, Clone)]
pub struct Collector {
    config: GcConfig,
    num_nodes: usize,
    per_vproc: Vec<GcStats>,
    global_pending: bool,
}

impl Collector {
    /// Creates a collector for `num_vprocs` vprocs on a machine with
    /// `num_nodes` NUMA nodes.
    pub fn new(config: GcConfig, num_vprocs: usize, num_nodes: usize) -> Self {
        Collector {
            config,
            num_nodes,
            per_vproc: vec![GcStats::new(); num_vprocs],
            global_pending: false,
        }
    }

    /// The collector configuration.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// Number of NUMA nodes the collector charges costs against.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Statistics for one vproc.
    pub fn vproc_stats(&self, vproc: usize) -> &GcStats {
        &self.per_vproc[vproc]
    }

    /// Mutable statistics for one vproc (the runtime adds pause times once it
    /// has costed the collection through the memory model).
    pub fn vproc_stats_mut(&mut self, vproc: usize) -> &mut GcStats {
        &mut self.per_vproc[vproc]
    }

    /// Machine-wide aggregated statistics.
    pub fn aggregate_stats(&self) -> GcStats {
        let mut total = GcStats::new();
        for s in &self.per_vproc {
            total.merge(s);
        }
        total
    }

    /// True if a global collection has been requested but not yet performed.
    pub fn global_pending(&self) -> bool {
        self.global_pending
    }

    /// Requests a global collection; vprocs entering the collector will first
    /// finish their local collections and then join the global one.
    pub fn request_global(&mut self) {
        self.global_pending = true;
    }

    /// Clears the pending-global-collection flag; [`Collector::global`] does
    /// this automatically when it completes.
    pub fn clear_global_pending(&mut self) {
        self.global_pending = false;
    }

    /// True if the global-heap occupancy exceeds the configured threshold
    /// (§3.4: number of vprocs × 32 MB at paper scale).
    pub fn needs_global<H: GcHeap>(&self, heap: &H) -> bool {
        let threshold = self.config.global_threshold_per_vproc_bytes * heap.num_vprocs();
        heap.global_bytes_in_use() > threshold
    }

    /// The full local-collection entry point used when a vproc's nursery is
    /// exhausted: a minor collection, followed by a major collection when the
    /// paper's triggers say so.
    pub fn collect_local<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        roots: &mut [Addr],
    ) -> GcOutcome {
        let mut outcome = self.minor(heap, vproc, roots);
        if outcome.triggered_major || self.global_pending {
            let major = self.major(heap, vproc, roots);
            outcome.cost.merge(&major.cost);
            outcome.promoted_bytes += major.promoted_bytes;
            if outcome.promoted_bytes_by_node.is_empty() {
                outcome.promoted_bytes_by_node = major.promoted_bytes_by_node;
            } else {
                for (slot, bytes) in outcome
                    .promoted_bytes_by_node
                    .iter_mut()
                    .zip(major.promoted_bytes_by_node)
                {
                    *slot += bytes;
                }
            }
            outcome.needs_global = major.needs_global;
            outcome.triggered_major = true;
        }
        outcome
    }

    /// Runs a minor collection for `vproc`: copies every nursery object
    /// reachable from `roots` into the old-data area, rewrites the roots,
    /// and re-divides the nursery (Figure 2).
    ///
    /// Minor collections require no synchronisation with other vprocs
    /// because nothing outside this vproc can point into its nursery (§2.3);
    /// on the real-threads backend's [`WorkerHeap`](mgc_heap::WorkerHeap)
    /// this path takes no locks at all.
    pub fn minor<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        roots: &mut [Addr],
    ) -> GcOutcome {
        let mut cost = GcCost::new(self.num_nodes);
        cost.charge_cpu(COLLECTION_FIXED_NS);
        let node = heap.local(vproc).node();
        let mut copied_bytes = 0u64;
        let mut worklist: Vec<Addr> = Vec::new();

        heap.local_mut(vproc).begin_minor();

        for root in roots.iter_mut() {
            if root.is_null() {
                continue;
            }
            *root = self.forward_minor(
                heap,
                vproc,
                *root,
                &mut worklist,
                &mut copied_bytes,
                &mut cost,
            );
        }

        while let Some(obj) = worklist.pop() {
            let header = heap.header_of(obj);
            cost.charge_scan(node, header.total_bytes());
            let fields = heap
                .pointer_field_indices(header)
                .expect("all mixed-object descriptors are registered before allocation");
            for index in fields {
                let value = heap.read_field(obj, index);
                let Some(ptr) = word_as_pointer(value) else {
                    continue;
                };
                let new = self.forward_minor(
                    heap,
                    vproc,
                    ptr,
                    &mut worklist,
                    &mut copied_bytes,
                    &mut cost,
                );
                if new != ptr {
                    heap.write_field(obj, index, new.raw());
                }
            }
        }

        heap.local_mut(vproc).finish_minor();

        let stats = &mut self.per_vproc[vproc];
        stats.minor_collections += 1;
        stats.minor_copied_bytes += copied_bytes;

        let local = heap.local(vproc);
        let nursery_fraction = local.nursery_size_words() as f64 / local.size_words() as f64;
        let triggered_major = nursery_fraction < self.config.nursery_threshold_fraction;
        let needs_global = self.needs_global(heap);

        let outcome = GcOutcome {
            kind: CollectionKind::Minor,
            cost,
            copied_bytes,
            promoted_bytes: 0,
            promoted_bytes_by_node: Vec::new(),
            triggered_major,
            needs_global,
        };
        self.maybe_verify(heap);
        outcome
    }

    /// Forwards one pointer for a minor collection: nursery objects are
    /// copied to the old area, everything else is left in place (following
    /// any forwarding pointer installed by an earlier promotion).
    fn forward_minor<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        ptr: Addr,
        worklist: &mut Vec<Addr>,
        copied_bytes: &mut u64,
        cost: &mut GcCost,
    ) -> Addr {
        match heap.space_of(ptr) {
            Space::LocalNursery { vproc: v } if v == vproc => {
                if let Some(forwarded) = heap.forwarded_to(ptr) {
                    return forwarded;
                }
                let node = heap.local(vproc).node();
                let (new, bytes) = heap
                    .evacuate(ptr, EvacTarget::OldArea { vproc })
                    .expect("the Appel reserve always has room for minor-collection survivors");
                *copied_bytes += bytes as u64;
                cost.charge_copy(node, node, bytes);
                worklist.push(new);
                new
            }
            Space::LocalYoung { vproc: v } | Space::LocalOld { vproc: v } if v == vproc => {
                // An object promoted earlier leaves a forwarding pointer
                // behind; redirect the reference so the stale copy dies.
                heap.forwarded_to(ptr).unwrap_or(ptr)
            }
            _ => ptr,
        }
    }

    /// Forwards one pointer towards the global heap, used by major
    /// collections and promotions. `include_young` selects whether young
    /// data is promoted too (the paper keeps it local; the ablation and the
    /// promotion path copy it).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_to_global<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        ptr: Addr,
        include_young: bool,
        worklist: &mut Vec<Addr>,
        tally: &mut PromotionTally,
        cost: &mut GcCost,
    ) -> Addr {
        let promote = match heap.space_of(ptr) {
            Space::LocalOld { vproc: v } | Space::LocalNursery { vproc: v } if v == vproc => true,
            Space::LocalYoung { vproc: v } if v == vproc => include_young,
            _ => false,
        };
        if !promote {
            if heap.is_local(ptr) {
                return heap.forwarded_to(ptr).unwrap_or(ptr);
            }
            return ptr;
        }
        if let Some(forwarded) = heap.forwarded_to(ptr) {
            return forwarded;
        }
        let src_node = heap.local(vproc).node();
        let acquisitions_before = heap.chunk_acquisitions();
        let (new, bytes) = heap
            .evacuate(ptr, EvacTarget::GlobalCurrent { vproc })
            .expect("global-heap allocation for promotion cannot fail");
        if heap.chunk_acquisitions() > acquisitions_before {
            // Acquiring a chunk is the synchronisation point of §3.3.
            cost.charge_cpu(CHUNK_ACQUIRE_NS);
        }
        let dst_node = heap.node_of(new);
        cost.charge_copy(src_node, dst_node, bytes);
        tally.add(dst_node, bytes as u64);
        worklist.push(new);
        new
    }

    pub(crate) fn maybe_verify<H: GcHeap>(&self, heap: &H) {
        if self.config.verify_after_gc {
            let violations = heap.verify_violations();
            assert!(
                violations.is_empty(),
                "heap invariant violated after collection: {}",
                violations.join("; ")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgc_heap::{Heap, HeapConfig, Space};
    use mgc_numa::NodeId;

    fn setup(vprocs: usize) -> (Heap, Collector) {
        let nodes: Vec<NodeId> = (0..vprocs).map(|v| NodeId::new((v % 2) as u16)).collect();
        let heap = Heap::new(HeapConfig::small_for_tests(), &nodes, 2);
        let collector = Collector::new(GcConfig::small_for_tests(), vprocs, 2);
        (heap, collector)
    }

    #[test]
    fn minor_copies_only_reachable_objects() {
        let (mut heap, mut collector) = setup(1);
        let live = heap.alloc_raw(0, &[1, 2]).unwrap();
        let _dead = heap.alloc_raw(0, &[3, 4]).unwrap();
        let holder = heap.alloc_vector(0, &[live.raw()]).unwrap();
        let mut roots = vec![holder];

        let before_used = heap.local(0).nursery_used_words();
        assert!(before_used > 0);
        let outcome = collector.minor(&mut heap, 0, &mut roots);

        assert_eq!(outcome.kind, CollectionKind::Minor);
        // Survivors: the holder (2 words) + the live object (3 words).
        assert_eq!(outcome.copied_bytes, (2 + 3) * 8);
        let new_holder = roots[0];
        assert_eq!(heap.space_of(new_holder), Space::LocalYoung { vproc: 0 });
        let new_live = Addr::new(heap.read_field(new_holder, 0));
        assert_eq!(heap.payload(new_live), vec![1, 2]);
        assert_eq!(heap.space_of(new_live), Space::LocalYoung { vproc: 0 });
        // Nursery is empty again.
        assert_eq!(heap.local(0).nursery_used_words(), 0);
        assert_eq!(collector.vproc_stats(0).minor_collections, 1);
    }

    #[test]
    fn minor_handles_shared_structure_once() {
        let (mut heap, mut collector) = setup(1);
        let shared = heap.alloc_raw(0, &[9]).unwrap();
        let a = heap.alloc_vector(0, &[shared.raw()]).unwrap();
        let b = heap.alloc_vector(0, &[shared.raw()]).unwrap();
        let mut roots = vec![a, b];
        let outcome = collector.minor(&mut heap, 0, &mut roots);
        // shared (2 words) + two vectors (2 words each) = 6 words.
        assert_eq!(outcome.copied_bytes, 6 * 8);
        let sa = Addr::new(heap.read_field(roots[0], 0));
        let sb = Addr::new(heap.read_field(roots[1], 0));
        assert_eq!(sa, sb, "sharing is preserved, not duplicated");
    }

    #[test]
    fn minor_preserves_cycles_free_deep_structure() {
        let (mut heap, mut collector) = setup(1);
        // A linked list of 50 cons cells in the nursery.
        let mut tail = Addr::NULL;
        for i in 0..50u64 {
            let payload_obj = heap.alloc_raw(0, &[i]).unwrap();
            tail = heap
                .alloc_vector(0, &[payload_obj.raw(), tail.raw()])
                .unwrap();
        }
        let mut roots = vec![tail];
        collector.minor(&mut heap, 0, &mut roots);
        // Walk the list back and check the values.
        let mut cursor = roots[0];
        let mut seen = Vec::new();
        while !cursor.is_null() {
            let value_obj = Addr::new(heap.read_field(cursor, 0));
            seen.push(heap.read_field(value_obj, 0));
            cursor = Addr::new(heap.read_field(cursor, 1));
        }
        assert_eq!(seen, (0..50u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn null_roots_are_ignored() {
        let (mut heap, mut collector) = setup(1);
        heap.alloc_raw(0, &[1]).unwrap();
        let mut roots = vec![Addr::NULL];
        let outcome = collector.minor(&mut heap, 0, &mut roots);
        assert_eq!(outcome.copied_bytes, 0);
        assert_eq!(roots[0], Addr::NULL);
    }

    #[test]
    fn repeated_minors_accumulate_old_data_and_trigger_major() {
        let (mut heap, mut collector) = setup(1);
        let mut roots: Vec<Addr> = Vec::new();
        let mut triggered = false;
        for _ in 0..200 {
            match heap.alloc_raw(0, &[0; 16]) {
                Ok(obj) => roots.push(obj),
                Err(_) => {
                    let outcome = collector.minor(&mut heap, 0, &mut roots);
                    if outcome.triggered_major {
                        triggered = true;
                        break;
                    }
                }
            }
        }
        assert!(
            triggered,
            "keeping everything alive must eventually shrink the nursery below the threshold"
        );
        assert!(collector.vproc_stats(0).minor_collections >= 1);
    }

    #[test]
    fn global_pending_flag() {
        let (_heap, mut collector) = setup(1);
        assert!(!collector.global_pending());
        collector.request_global();
        assert!(collector.global_pending());
    }

    #[test]
    fn aggregate_stats_sum_over_vprocs() {
        let (mut heap, mut collector) = setup(2);
        let a = heap.alloc_raw(0, &[1]).unwrap();
        let b = heap.alloc_raw(1, &[2]).unwrap();
        let mut roots0 = vec![a];
        let mut roots1 = vec![b];
        collector.minor(&mut heap, 0, &mut roots0);
        collector.minor(&mut heap, 1, &mut roots1);
        assert_eq!(collector.aggregate_stats().minor_collections, 2);
    }
}
