//! Collector configuration and tuning knobs.

use serde::{Deserialize, Serialize};

/// Configuration of the garbage collector's triggers and policies.
///
/// The defaults follow the paper, scaled down to the reproduction's smaller
/// workloads (the paper's global threshold is 32 MB per vproc on a machine
/// with 128 GB of RAM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcConfig {
    /// A minor collection triggers a major collection when the size of the
    /// freshly re-divided nursery falls below this fraction of the local
    /// heap (§3.3: "when the size of the new nursery area falls below a
    /// certain threshold").
    pub nursery_threshold_fraction: f64,
    /// A global collection is triggered when the bytes of global-heap chunks
    /// in use exceed `num_vprocs * global_threshold_per_vproc_bytes`
    /// (§3.4: "the number of vprocs times 32MB").
    pub global_threshold_per_vproc_bytes: usize,
    /// Ablation knob: when `true`, a major collection also promotes the
    /// young data instead of exempting it (disables the Appel optimisation
    /// the paper relies on to avoid premature promotion).
    pub promote_young_in_major: bool,
    /// Ablation knob: when `false`, freed global-heap chunks lose their node
    /// affinity and are handed to whichever vproc asks first.
    pub chunk_node_affinity: bool,
    /// Ablation knob (threaded backend): when `true`, every task pushed to a
    /// deque has its roots promoted eagerly at publication time — the
    /// pre-lazy-promotion behaviour. The default (`false`) promotes a task's
    /// roots only when the task is actually stolen (§3.1), so promotion
    /// volume is proportional to steals rather than spawns. The proptest
    /// suite uses the eager mode as the promotion-volume upper bound.
    pub eager_publication: bool,
    /// When `true`, the heap invariants (§2.3) are re-verified after every
    /// collection; expensive, intended for tests.
    pub verify_after_gc: bool,
    /// Soft per-increment pause budget for global collections, in
    /// microseconds. `None` (the default) preserves the classic behaviour:
    /// the whole collection is one stop-the-world increment. When set, the
    /// threaded backend splits the evacuation into budgeted increments and
    /// releases mutators between them, and the simulated backend models the
    /// same split by slicing each vproc's virtual collection cost into
    /// budget-sized pause increments. The budget bounds the Cheney-scan work
    /// per increment; the ramp-down local collection and root re-evacuation
    /// at the head of each increment add bounded slack on top.
    pub pause_budget_us: Option<u64>,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            nursery_threshold_fraction: 0.20,
            global_threshold_per_vproc_bytes: 2 * 1024 * 1024,
            promote_young_in_major: false,
            chunk_node_affinity: true,
            eager_publication: false,
            verify_after_gc: false,
            pause_budget_us: None,
        }
    }
}

impl GcConfig {
    /// A configuration suitable for unit tests: small thresholds so every
    /// collection kind triggers quickly, and invariant verification enabled.
    pub fn small_for_tests() -> Self {
        GcConfig {
            nursery_threshold_fraction: 0.25,
            global_threshold_per_vproc_bytes: 32 * 1024,
            promote_young_in_major: false,
            chunk_node_affinity: true,
            eager_publication: false,
            verify_after_gc: true,
            pause_budget_us: None,
        }
    }

    /// The paper's configuration: 32 MB of global-heap chunks per vproc
    /// before a global collection is triggered.
    pub fn paper_scale() -> Self {
        GcConfig {
            global_threshold_per_vproc_bytes: 32 * 1024 * 1024,
            ..GcConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_design() {
        let c = GcConfig::default();
        assert!(!c.promote_young_in_major);
        assert!(c.chunk_node_affinity);
        assert!(c.nursery_threshold_fraction > 0.0 && c.nursery_threshold_fraction < 1.0);
    }

    #[test]
    fn paper_scale_uses_32mb_per_vproc() {
        assert_eq!(
            GcConfig::paper_scale().global_threshold_per_vproc_bytes,
            32 * 1024 * 1024
        );
    }

    #[test]
    fn test_config_verifies() {
        assert!(GcConfig::small_for_tests().verify_after_gc);
    }

    #[test]
    fn pause_budget_defaults_to_unbounded() {
        assert_eq!(GcConfig::default().pause_budget_us, None);
        assert_eq!(GcConfig::paper_scale().pause_budget_us, None);
    }
}
