//! The global stop-the-world parallel collection (paper §3.4).
//!
//! A global collection is triggered when the amount of global-heap chunk
//! space in use exceeds the threshold (number of vprocs × 32 MB at paper
//! scale). The leader vproc signals every other vproc by zeroing its
//! allocation-limit pointer; each vproc reaches a safe point, performs its
//! own minor and major collections (so all of its live data except the young
//! data is in the global heap), and then joins the parallel copying phase:
//!
//! 1. every in-use global chunk becomes *from-space*, gathered per node;
//! 2. each vproc obtains a fresh chunk and scans its roots and local heap,
//!    evacuating from-space objects into its to-space chunk;
//! 3. vprocs claim unscanned to-space chunks — preferring chunks that live on
//!    their own node — and Cheney-scan them until none remain;
//! 4. from-space chunks return to the free pool (keeping node affinity).
//!
//! This module implements that algorithm sequentially but attributes every
//! byte of copying and scanning work to the vproc that would have performed
//! it, so the runtime's memory model can reconstruct the parallel pause time
//! and its bus traffic.

use crate::collector::Collector;
use crate::cost::{GcCost, GLOBAL_BARRIER_NS};
use mgc_heap::{word_as_pointer, Addr, ChunkId, ChunkState, EvacTarget, Heap};
use mgc_numa::NodeId;

/// Result of a global collection.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalOutcome {
    /// Per-vproc cost of the whole stop-the-world phase (including the
    /// preparatory minor and major collections).
    pub per_vproc_cost: Vec<GcCost>,
    /// Bytes copied from from-space to to-space chunks.
    pub copied_bytes: u64,
    /// Number of from-space chunks released back to the free pool.
    pub released_chunks: usize,
    /// Number of chunks that were in use when the collection started.
    pub from_space_chunks: usize,
    /// Number of to-space chunks in use when the collection finished.
    pub to_space_chunks: usize,
}

impl Collector {
    /// Runs a global collection over the whole machine.
    ///
    /// `roots_per_vproc[v]` is vproc `v`'s root set; every root is rewritten
    /// to point at the surviving copy of its object. The preparatory minor
    /// and major collections for every vproc are performed here as well, as
    /// in the paper (§3.4 step 3).
    pub fn global(&mut self, heap: &mut Heap, roots_per_vproc: &mut [Vec<Addr>]) -> GlobalOutcome {
        let num_vprocs = heap.num_vprocs();
        assert_eq!(
            roots_per_vproc.len(),
            num_vprocs,
            "one root set per vproc is required"
        );
        heap.global_mut()
            .set_node_affinity(self.config().chunk_node_affinity);

        let mut costs: Vec<GcCost> = (0..num_vprocs)
            .map(|_| GcCost::new(self.num_nodes()))
            .collect();

        // --- Step 1–3: barrier; every vproc finishes its local collections.
        for vproc in 0..num_vprocs {
            costs[vproc].charge_cpu(GLOBAL_BARRIER_NS);
            let minor = self.minor(heap, vproc, &mut roots_per_vproc[vproc]);
            costs[vproc].merge(&minor.cost);
            let major = self.major(heap, vproc, &mut roots_per_vproc[vproc]);
            costs[vproc].merge(&major.cost);
        }

        // --- Flip: all in-use chunks become from-space. --------------------
        for vproc in 0..num_vprocs {
            heap.retire_current_chunk(vproc);
        }
        let from_space: Vec<ChunkId> = heap
            .global()
            .iter()
            .filter(|c| c.state() == ChunkState::Filled)
            .map(|c| c.id())
            .collect();
        for &id in &from_space {
            heap.global_mut()
                .chunk_mut(id)
                .set_state(ChunkState::FromSpace);
        }
        let from_space_chunks = from_space.len();

        // --- Root scan: each vproc forwards its roots and its local heap. --
        let mut copied_bytes = 0u64;
        for vproc in 0..num_vprocs {
            let cost = &mut costs[vproc];
            let mut roots = std::mem::take(&mut roots_per_vproc[vproc]);
            for root in roots.iter_mut() {
                if root.is_null() {
                    continue;
                }
                *root = forward_global(heap, vproc, *root, &mut copied_bytes, cost);
            }
            roots_per_vproc[vproc] = roots;

            // The local heap (young data only, after the major collection)
            // may still reference from-space objects.
            let local_node = heap.local(vproc).node();
            let young: Vec<Addr> = heap.local(vproc).young_objects().map(|(a, _)| a).collect();
            for obj in young {
                let header = heap.header_of(obj);
                cost.charge_scan(local_node, header.total_bytes());
                let fields = heap
                    .pointer_field_indices(header)
                    .expect("all mixed-object descriptors are registered before allocation");
                for index in fields {
                    let value = heap.read_field(obj, index);
                    let Some(ptr) = word_as_pointer(value) else {
                        continue;
                    };
                    let new = forward_global(heap, vproc, ptr, &mut copied_bytes, cost);
                    if new != ptr {
                        heap.write_field(obj, index, new.raw());
                    }
                }
            }
        }

        // --- Parallel drain of unscanned to-space chunks, per node. --------
        // Chunks are claimed preferentially by vprocs on the chunk's node,
        // exactly as the per-node chunk lists of §3.4 arrange.
        let mut node_cursor = vec![0usize; self.num_nodes()];
        loop {
            let pending: Vec<(ChunkId, NodeId)> = heap
                .global()
                .iter()
                .filter(|c| {
                    matches!(c.state(), ChunkState::Current { .. } | ChunkState::Filled)
                        && !c.fully_scanned()
                })
                .map(|c| (c.id(), c.node()))
                .collect();
            if pending.is_empty() {
                break;
            }
            for (chunk, node) in pending {
                let scanner = pick_scanner(heap, node, &mut node_cursor);
                scan_to_space_chunk(heap, scanner, chunk, &mut copied_bytes, &mut costs[scanner]);
            }
        }

        // --- Reclaim from-space. -------------------------------------------
        let mut released_chunks = 0;
        for id in from_space {
            heap.global_mut().release_chunk(id);
            released_chunks += 1;
        }
        let to_space_chunks = heap.global().chunks_in_use();

        for vproc in 0..num_vprocs {
            let stats = self.vproc_stats_mut(vproc);
            stats.global_collections += 1;
        }
        // Attribute the copied bytes to the vprocs proportionally to the
        // traffic they generated; for the aggregate stats a single total is
        // enough.
        self.vproc_stats_mut(0).global_copied_bytes += copied_bytes;

        self.clear_global_pending();
        self.maybe_verify(heap);

        GlobalOutcome {
            per_vproc_cost: costs,
            copied_bytes,
            released_chunks,
            from_space_chunks,
            to_space_chunks,
        }
    }
}

/// Picks the vproc that claims a chunk on `node` for scanning: vprocs whose
/// local heap lives on that node take turns; if the node hosts no vproc, the
/// work round-robins over every vproc.
fn pick_scanner(heap: &Heap, node: NodeId, node_cursor: &mut [usize]) -> usize {
    let candidates: Vec<usize> = (0..heap.num_vprocs())
        .filter(|&v| heap.vproc_home_node(v) == node)
        .collect();
    let all: Vec<usize> = (0..heap.num_vprocs()).collect();
    let pool = if candidates.is_empty() {
        &all
    } else {
        &candidates
    };
    let cursor = &mut node_cursor[node.index()];
    let vproc = pool[*cursor % pool.len()];
    *cursor += 1;
    vproc
}

/// Forwards one pointer during the global collection: objects in from-space
/// chunks are copied into the scanning vproc's current to-space chunk;
/// everything else is left alone.
fn forward_global(
    heap: &mut Heap,
    vproc: usize,
    ptr: Addr,
    copied_bytes: &mut u64,
    cost: &mut GcCost,
) -> Addr {
    let Some(chunk) = global_chunk_of(heap, ptr) else {
        return ptr;
    };
    if heap.global().chunk(chunk).state() != ChunkState::FromSpace {
        return ptr;
    }
    if let Some(forwarded) = heap.forwarded_to(ptr) {
        return forwarded;
    }
    let src_node = heap.node_of(ptr);
    let (new, bytes) = heap
        .evacuate(ptr, EvacTarget::GlobalCurrent { vproc })
        .expect("to-space allocation cannot fail during a global collection");
    let dst_node = heap.node_of(new);
    cost.charge_copy(src_node, dst_node, bytes);
    *copied_bytes += bytes as u64;
    new
}

/// Cheney-scans one to-space chunk on behalf of `vproc`, forwarding every
/// from-space pointer it contains.
fn scan_to_space_chunk(
    heap: &mut Heap,
    vproc: usize,
    chunk: ChunkId,
    copied_bytes: &mut u64,
    cost: &mut GcCost,
) {
    loop {
        let (scan, top, base, node) = {
            let c = heap.global().chunk(chunk);
            (c.scan(), c.used_words(), c.base(), c.node())
        };
        if scan >= top {
            break;
        }
        let header_word = heap.global().chunk(chunk).read(scan);
        let header = mgc_heap::Header::decode(header_word)
            .expect("to-space chunks contain only live objects");
        let obj = base.add_words(scan + 1);
        cost.charge_scan(node, header.total_bytes());
        let fields = heap
            .pointer_field_indices(header)
            .expect("all mixed-object descriptors are registered before allocation");
        for index in fields {
            let value = heap.read_field(obj, index);
            let Some(ptr) = word_as_pointer(value) else {
                continue;
            };
            let new = forward_global(heap, vproc, ptr, copied_bytes, cost);
            if new != ptr {
                heap.write_field(obj, index, new.raw());
            }
        }
        heap.global_mut()
            .chunk_mut(chunk)
            .set_scan(scan + header.total_words());
    }
}

/// The chunk containing `ptr`, if `ptr` is a global-heap address.
fn global_chunk_of(heap: &Heap, ptr: Addr) -> Option<ChunkId> {
    match heap.space_of(ptr) {
        mgc_heap::Space::Global { chunk } => Some(chunk),
        _ => None,
    }
}

// ----------------------------------------------------------------------
// The parallel global collection of the real-threads backend.
// ----------------------------------------------------------------------
//
// The sequential `Collector::global` above *attributes* parallel work; the
// pieces below *perform* it. The runtime's ramp-down barrier stops every
// worker at a safe point (each has finished its local collections and
// retired its current chunk), then drives these phases:
//
// 1. the **leader** flips every filled chunk to from-space
//    ([`flip_to_from_space`]);
// 2. every worker evacuates the roots it owns ([`evacuate_roots`]) — copies
//    land in the worker's own fresh to-space chunk, and racing evacuations
//    of shared objects are resolved by a compare-and-swap on the from-space
//    header slot (exactly one winner; the loser's copy becomes garbage);
// 3. workers repeatedly claim to-space chunks off a shared [`AtomicUsize`]
//    work index and Cheney-scan them ([`scan_pass`]) until a whole pass
//    makes no progress;
// 4. the leader returns the from-space chunks to the mutex-guarded pool
//    ([`release_from_space`]).
//
// With a pause budget configured the runtime instead drives *budgeted*
// passes ([`scan_pass_budgeted`]): a pass stops claiming and scanning once
// its deadline expires (persisting partial chunk progress through the scan
// pointer), the runtime releases the mutators, and the next increment
// resumes where the pass left off. A timed-out pass reports
// [`ScanPassOutcome::out_of_time`] so termination is never concluded from a
// pass that merely ran out of budget.

use mgc_heap::{GcHeap, Header, SharedChunkState, SharedGlobalHeap, WorkerHeap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared coordination state of one parallel global collection: the work
/// index workers claim to-space chunks from, and the copied-byte total.
#[derive(Debug, Default)]
pub struct ParallelGcState {
    /// Next chunk-directory index to claim for scanning.
    pub work_index: AtomicUsize,
    /// Bytes copied from from-space into to-space chunks, machine-wide.
    pub copied_bytes: AtomicU64,
}

impl ParallelGcState {
    /// Creates the coordination state for one collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the work index for the next scan pass (leader-only, between
    /// barrier phases).
    pub fn reset_work_index(&self) {
        self.work_index.store(0, Ordering::Release);
    }
}

/// Leader-only flip: every [`SharedChunkState::Filled`] chunk becomes
/// from-space. Returns the from-space chunk directory indices.
///
/// # Panics
///
/// Panics if any worker failed to retire its current chunk before the
/// barrier.
pub fn flip_to_from_space(global: &SharedGlobalHeap) -> Vec<usize> {
    let mut from_space = Vec::new();
    for (index, chunk) in global.snapshot().iter().enumerate() {
        match chunk.state() {
            SharedChunkState::Filled => {
                chunk.set_state(SharedChunkState::FromSpace);
                chunk.set_scan(0);
                from_space.push(index);
            }
            SharedChunkState::Current => {
                panic!("all workers must retire their current chunks before the flip")
            }
            SharedChunkState::Free | SharedChunkState::FromSpace => {}
        }
    }
    from_space
}

/// Forwards one pointer during the parallel collection: from-space objects
/// are copied into `worker`'s current to-space chunk, with a CAS resolving
/// races against other workers evacuating the same object.
pub fn forward_parallel(worker: &mut WorkerHeap, ptr: Addr, state: &ParallelGcState) -> Addr {
    if ptr.is_null() || !worker.is_global(ptr) {
        // Local objects never live in from-space (only global chunks flip),
        // so a non-global pointer is left alone; under lazy promotion the
        // worker's surviving young data is instead scanned as an extra root
        // set by [`scan_young_fields`].
        return ptr;
    }
    let chunk = worker.chunk_of(ptr);
    if chunk.state() != SharedChunkState::FromSpace {
        return ptr;
    }
    match worker.header_slot(ptr) {
        mgc_heap::HeaderSlot::Forwarded(winner) => winner,
        mgc_heap::HeaderSlot::Header(header) => {
            let payload = worker.payload(ptr);
            let copy = worker
                .alloc_in_global(header.encode(), &payload)
                .expect("to-space allocation cannot fail during a global collection");
            match worker.cas_forward_global(ptr, header.encode(), copy) {
                Ok(()) => {
                    state
                        .copied_bytes
                        .fetch_add(header.total_bytes() as u64, Ordering::Relaxed);
                    copy
                }
                // Another worker won the race; our copy is unreachable
                // garbage in to-space and dies at the next collection.
                Err(winner) => winner,
            }
        }
    }
}

/// Evacuates a worker-owned root set (its deque tasks' roots, its slice of
/// the shared runtime tables) at the start of the parallel copying phase.
pub fn evacuate_roots(worker: &mut WorkerHeap, roots: &mut [Addr], state: &ParallelGcState) {
    for root in roots.iter_mut() {
        if !root.is_null() {
            *root = forward_parallel(worker, *root, state);
        }
    }
}

/// Scans the worker's surviving young local data as an additional root set,
/// forwarding any global from-space pointers its fields hold.
///
/// Under lazy promotion a worker reaches the stop-the-world barrier with
/// live *local* data (the unstolen private tasks' graphs, kept young by the
/// ramp-down's minor + major collections). Local objects never move during
/// a global collection, but their fields may reference promoted objects in
/// from-space — this is the threaded counterpart of the young-data scan the
/// sequential [`Collector::global`] performs.
pub fn scan_young_fields(worker: &mut WorkerHeap, state: &ParallelGcState) {
    let vproc = worker.vproc();
    let young: Vec<Addr> = worker
        .local(vproc)
        .young_objects()
        .map(|(a, _)| a)
        .collect();
    for obj in young {
        let header = worker.header_of(obj);
        let fields = worker
            .pointer_field_indices(header)
            .expect("all mixed-object descriptors are registered before allocation");
        for index in fields {
            let value = worker.read_field(obj, index);
            let Some(ptr) = word_as_pointer(value) else {
                continue;
            };
            let new = forward_parallel(worker, ptr, state);
            if new != ptr {
                worker.write_field(obj, index, new.raw());
            }
        }
    }
}

/// Outcome of one (possibly budgeted) scan pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPassOutcome {
    /// At least one object was scanned during this pass.
    pub progress: bool,
    /// The deadline expired while unscanned work may remain; the partially
    /// scanned chunk's progress is persisted through its scan pointer.
    pub out_of_time: bool,
}

impl ScanPassOutcome {
    /// Whether the collection may still have work after this pass. A pass
    /// that timed out must count as "more work" when deciding termination —
    /// concluding "done" from a pass that merely ran out of budget would
    /// release from-space with live objects still in it.
    pub fn may_have_more_work(&self) -> bool {
        self.progress || self.out_of_time
    }
}

/// How many objects a budgeted scan pass processes between deadline checks.
/// Amortises the clock read, and guarantees every pass with available work
/// scans at least this many objects before it can time out — a pathological
/// budget degrades to many small increments instead of livelocking.
const DEADLINE_STRIDE: u32 = 32;

/// One scan pass: claims chunk-directory indices off the shared work index
/// and Cheney-scans every claimed to-space chunk, forwarding the from-space
/// pointers it contains. Returns `true` if any object was scanned or copied
/// — the runtime repeats passes (with a barrier in between) until a full
/// pass reports no progress from any worker.
pub fn scan_pass(worker: &mut WorkerHeap, state: &ParallelGcState) -> bool {
    scan_pass_budgeted(worker, state, None).progress
}

/// [`scan_pass`] with an optional deadline: once the deadline passes (checked
/// every `DEADLINE_STRIDE` objects, and never before at least one stride of
/// work), the pass persists its position in the current chunk's scan pointer
/// and returns with [`ScanPassOutcome::out_of_time`] set, leaving the rest of
/// the work for the next increment.
pub fn scan_pass_budgeted(
    worker: &mut WorkerHeap,
    state: &ParallelGcState,
    deadline: Option<std::time::Instant>,
) -> ScanPassOutcome {
    let mut outcome = ScanPassOutcome {
        progress: false,
        out_of_time: false,
    };
    let global = worker.shared_global().clone();
    let mut until_check = DEADLINE_STRIDE;
    'pass: loop {
        let index = state.work_index.fetch_add(1, Ordering::AcqRel);
        if index >= global.num_chunks() {
            break;
        }
        let chunk = global.chunk_at(index);
        match chunk.state() {
            SharedChunkState::Free | SharedChunkState::FromSpace => continue,
            SharedChunkState::Current | SharedChunkState::Filled => {}
        }
        // Chase the bump pointer: scanning may append new copies to this
        // very chunk (when it is the worker's own current chunk).
        loop {
            let scan = chunk.scan();
            let top = chunk.used_words();
            if scan >= top {
                break;
            }
            outcome.progress = true;
            let mut offset = scan;
            while offset < top {
                let header = Header::decode(chunk.read(offset))
                    .expect("to-space chunks contain only objects, never forwards");
                let fields = worker
                    .pointer_field_indices(header)
                    .expect("all mixed-object descriptors are registered before allocation");
                for field in fields {
                    let value = chunk.read(offset + 1 + field);
                    let Some(ptr) = mgc_heap::word_as_pointer(value) else {
                        continue;
                    };
                    let new = forward_parallel(worker, ptr, state);
                    if new != ptr {
                        chunk.write(offset + 1 + field, new.raw());
                    }
                }
                offset += header.total_words();
                until_check -= 1;
                if until_check == 0 {
                    until_check = DEADLINE_STRIDE;
                    if let Some(d) = deadline {
                        if std::time::Instant::now() >= d {
                            chunk.set_scan(offset);
                            outcome.out_of_time = true;
                            break 'pass;
                        }
                    }
                }
            }
            chunk.set_scan(offset);
        }
    }
    outcome
}

/// Leader-only reclamation: returns every from-space chunk to the
/// mutex-guarded free pool (keeping node affinity). Returns the number of
/// chunks released.
pub fn release_from_space(global: &SharedGlobalHeap, from_space: &[usize]) -> usize {
    for &index in from_space {
        let chunk = global.chunk_at(index);
        global.release(&chunk);
    }
    from_space.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use mgc_heap::HeapConfig;
    use mgc_numa::NodeId;

    fn setup(vprocs: usize) -> (Heap, Collector) {
        let nodes: Vec<NodeId> = (0..vprocs).map(|v| NodeId::new((v % 2) as u16)).collect();
        let heap = Heap::new(HeapConfig::small_for_tests(), &nodes, 2);
        let collector = Collector::new(GcConfig::small_for_tests(), vprocs, 2);
        (heap, collector)
    }

    /// Fills the global heap with a mix of live and dead data from several
    /// vprocs. Returns the per-vproc roots of the live data.
    fn populate(heap: &mut Heap, collector: &mut Collector, vprocs: usize) -> Vec<Vec<Addr>> {
        let mut roots_per_vproc: Vec<Vec<Addr>> = vec![Vec::new(); vprocs];
        #[allow(clippy::needless_range_loop)]
        for vproc in 0..vprocs {
            // Live data: a small list promoted to the global heap.
            let mut list = Addr::NULL;
            for i in 0..10u64 {
                let val = heap.alloc_raw(vproc, &[i + 100 * vproc as u64]).unwrap();
                list = heap.alloc_vector(vproc, &[val.raw(), list.raw()]).unwrap();
            }
            let (promoted, _) = collector.promote(heap, vproc, list);
            roots_per_vproc[vproc].push(promoted);
            // Dead data: promoted but immediately dropped.
            for _ in 0..20 {
                let garbage = heap.alloc_raw(vproc, &[0xdead; 16]).unwrap();
                let _ = collector.promote(heap, vproc, garbage);
            }
        }
        roots_per_vproc
    }

    fn list_values(heap: &Heap, mut cursor: Addr) -> Vec<u64> {
        let mut values = Vec::new();
        while !cursor.is_null() {
            let val_obj = Addr::new(heap.read_field(cursor, 0));
            values.push(heap.read_field(val_obj, 0));
            cursor = Addr::new(heap.read_field(cursor, 1));
        }
        values
    }

    #[test]
    fn global_collection_reclaims_garbage_and_preserves_live_data() {
        let (mut heap, mut collector) = setup(2);
        let mut roots = populate(&mut heap, &mut collector, 2);
        let in_use_before = heap.global().bytes_in_use();
        let live_before: Vec<Vec<u64>> = roots.iter().map(|r| list_values(&heap, r[0])).collect();

        let outcome = collector.global(&mut heap, &mut roots);

        // The live lists survived with identical contents.
        for (vproc, expected) in live_before.iter().enumerate() {
            assert_eq!(&list_values(&heap, roots[vproc][0]), expected);
        }
        // Garbage was dropped: the copied bytes are far less than what was
        // promoted, and chunks were released.
        assert!(outcome.copied_bytes > 0);
        assert!(outcome.released_chunks > 0);
        assert!(outcome.from_space_chunks > 0);
        assert!(heap.global().bytes_in_use() <= in_use_before);
        assert_eq!(outcome.per_vproc_cost.len(), 2);
        assert!(outcome.per_vproc_cost.iter().all(|c| c.cpu_ns > 0.0));
        assert!(mgc_heap::verify_heap(&heap).is_empty());
        assert_eq!(collector.vproc_stats(0).global_collections, 1);
        assert_eq!(collector.vproc_stats(1).global_collections, 1);
    }

    #[test]
    fn global_collection_preserves_cross_vproc_sharing() {
        let (mut heap, mut collector) = setup(2);
        // VProc 0 promotes a message; vproc 1 holds a reference to it.
        let message = heap.alloc_raw(0, &[7, 8, 9]).unwrap();
        let (message, _) = collector.promote(&mut heap, 0, message);
        let holder = heap.alloc_vector(1, &[message.raw()]).unwrap();
        let mut roots = vec![vec![message], vec![holder]];

        collector.global(&mut heap, &mut roots);

        // Both vprocs still see the same object.
        let from_v0 = roots[0][0];
        let holder_v1 = roots[1][0];
        let from_v1 = Addr::new(heap.read_field(holder_v1, 0));
        assert_eq!(from_v0, from_v1);
        assert_eq!(heap.payload(from_v0), vec![7, 8, 9]);
        assert!(mgc_heap::verify_heap(&heap).is_empty());
    }

    #[test]
    fn freed_chunks_keep_node_affinity() {
        let (mut heap, mut collector) = setup(2);
        let mut roots = populate(&mut heap, &mut collector, 2);
        collector.global(&mut heap, &mut roots);
        // Every free chunk sits on the free list of the node it was
        // originally allocated on.
        for node in 0..heap.num_nodes() {
            let node = NodeId::new(node as u16);
            let _ = heap.global().free_chunks_on(node);
        }
        let total_free: usize = (0..heap.num_nodes())
            .map(|n| heap.global().free_chunks_on(NodeId::new(n as u16)))
            .sum();
        assert!(total_free > 0);
        // Acquiring a chunk for a vproc on node 0 must return a node-0 chunk.
        let freed_on_zero = heap.global().free_chunks_on(NodeId::new(0));
        if freed_on_zero > 0 {
            let chunk = heap.fresh_current_chunk(0);
            assert_eq!(heap.global().chunk(chunk).node(), NodeId::new(0));
        }
    }

    #[test]
    fn needs_global_trips_after_enough_promotion() {
        let (mut heap, mut collector) = setup(1);
        assert!(!collector.needs_global(&heap));
        // Promote until the (tiny, test-sized) threshold is crossed.
        let mut trips = false;
        for _ in 0..200 {
            let obj = match heap.alloc_raw(0, &[1; 32]) {
                Ok(obj) => obj,
                Err(_) => {
                    let mut roots: Vec<Addr> = Vec::new();
                    collector.collect_local(&mut heap, 0, &mut roots);
                    continue;
                }
            };
            let (_, outcome) = collector.promote(&mut heap, 0, obj);
            if outcome.needs_global {
                trips = true;
                break;
            }
        }
        assert!(
            trips,
            "sustained promotion must eventually request a global collection"
        );
    }

    #[test]
    fn global_collection_with_empty_heap_is_safe() {
        let (mut heap, mut collector) = setup(2);
        let mut roots = vec![Vec::new(), Vec::new()];
        let outcome = collector.global(&mut heap, &mut roots);
        assert_eq!(outcome.copied_bytes, 0);
        assert!(mgc_heap::verify_heap(&heap).is_empty());
    }

    #[test]
    fn parallel_pieces_collect_shared_data_single_threaded() {
        use mgc_heap::{DescriptorTable, HeapConfig, ThreadedLayout};
        use std::sync::Arc;

        let config = HeapConfig::small_for_tests();
        let layout = ThreadedLayout::new(&config, 2, 2);
        let global = Arc::new(SharedGlobalHeap::new(layout.chunk_words(), 2));
        let descriptors = Arc::new(DescriptorTable::new());
        let mut workers: Vec<WorkerHeap> = (0..2)
            .map(|v| {
                WorkerHeap::new(
                    v,
                    layout,
                    NodeId::new(v as u16),
                    global.clone(),
                    descriptors.clone(),
                )
            })
            .collect();
        let mut collectors: Vec<Collector> = (0..2)
            .map(|_| Collector::new(GcConfig::small_for_tests(), 2, 2))
            .collect();

        // Each worker promotes a live list and some garbage.
        let mut roots: Vec<Vec<Addr>> = vec![Vec::new(); 2];
        for v in 0..2 {
            let mut list = Addr::NULL;
            for i in 0..10u64 {
                let val = workers[v].alloc_raw(&[i + 100 * v as u64]).unwrap();
                list = workers[v].alloc_vector(&[val.raw(), list.raw()]).unwrap();
            }
            let (promoted, _) = collectors[v].promote(&mut workers[v], v, list);
            roots[v].push(promoted);
            for _ in 0..20 {
                let garbage = workers[v].alloc_raw(&[0xdead; 16]).unwrap();
                let _ = collectors[v].promote(&mut workers[v], v, garbage);
            }
            // Clear the (now empty of live data) local heap, as the
            // ramp-down does.
            let mut none: Vec<Addr> = Vec::new();
            collectors[v].minor(&mut workers[v], v, &mut none);
            collectors[v].major(&mut workers[v], v, &mut none);
        }
        let shared_values = |w: &WorkerHeap, mut cursor: Addr| -> Vec<u64> {
            let mut out = Vec::new();
            while !cursor.is_null() {
                let val = Addr::new(w.read_field(cursor, 0));
                out.push(w.read_field(val, 0));
                cursor = Addr::new(w.read_field(cursor, 1));
            }
            out
        };
        let before: Vec<Vec<u64>> = (0..2)
            .map(|v| shared_values(&workers[v], roots[v][0]))
            .collect();
        let in_use_before = global.bytes_in_use();

        // The parallel protocol, driven from one thread.
        for w in workers.iter_mut() {
            w.retire_current_chunk();
        }
        let from_space = flip_to_from_space(&global);
        assert!(!from_space.is_empty());
        let state = ParallelGcState::new();
        for v in 0..2 {
            let mut r = std::mem::take(&mut roots[v]);
            evacuate_roots(&mut workers[v], &mut r, &state);
            roots[v] = r;
        }
        loop {
            let mut progress = false;
            state.reset_work_index();
            for w in workers.iter_mut() {
                progress |= scan_pass(w, &state);
            }
            if !progress {
                break;
            }
        }
        let released = release_from_space(&global, &from_space);
        assert_eq!(released, from_space.len());

        // Live data survived with identical contents; garbage was dropped.
        for v in 0..2 {
            assert_eq!(shared_values(&workers[v], roots[v][0]), before[v]);
        }
        assert!(state.copied_bytes.load(Ordering::Relaxed) > 0);
        // Chunk accounting is whole-chunk granular; the live set must not
        // need more space than live + garbage did.
        assert!(global.bytes_in_use() <= in_use_before);
        // Far fewer bytes were copied than the garbage that was promoted.
        assert!(state.copied_bytes.load(Ordering::Relaxed) < (20 * 17 * 8) * 2);
    }

    #[test]
    fn budgeted_scan_passes_converge_and_preserve_data() {
        use mgc_heap::{DescriptorTable, HeapConfig, ThreadedLayout};
        use std::sync::Arc;

        let config = HeapConfig::small_for_tests();
        let layout = ThreadedLayout::new(&config, 2, 2);
        let global = Arc::new(SharedGlobalHeap::new(layout.chunk_words(), 2));
        let descriptors = Arc::new(DescriptorTable::new());
        let mut workers: Vec<WorkerHeap> = (0..2)
            .map(|v| {
                WorkerHeap::new(
                    v,
                    layout,
                    NodeId::new(v as u16),
                    global.clone(),
                    descriptors.clone(),
                )
            })
            .collect();
        let mut collectors: Vec<Collector> = (0..2)
            .map(|_| Collector::new(GcConfig::small_for_tests(), 2, 2))
            .collect();

        let mut roots: Vec<Vec<Addr>> = vec![Vec::new(); 2];
        for v in 0..2 {
            let mut list = Addr::NULL;
            for i in 0..40u64 {
                let val = workers[v].alloc_raw(&[i + 100 * v as u64]).unwrap();
                list = workers[v].alloc_vector(&[val.raw(), list.raw()]).unwrap();
            }
            let (promoted, _) = collectors[v].promote(&mut workers[v], v, list);
            roots[v].push(promoted);
            let mut none: Vec<Addr> = Vec::new();
            collectors[v].minor(&mut workers[v], v, &mut none);
            collectors[v].major(&mut workers[v], v, &mut none);
        }
        let shared_values = |w: &WorkerHeap, mut cursor: Addr| -> Vec<u64> {
            let mut out = Vec::new();
            while !cursor.is_null() {
                let val = Addr::new(w.read_field(cursor, 0));
                out.push(w.read_field(val, 0));
                cursor = Addr::new(w.read_field(cursor, 1));
            }
            out
        };
        let before: Vec<Vec<u64>> = (0..2)
            .map(|v| shared_values(&workers[v], roots[v][0]))
            .collect();

        for w in workers.iter_mut() {
            w.retire_current_chunk();
        }
        let from_space = flip_to_from_space(&global);
        assert!(!from_space.is_empty());
        let state = ParallelGcState::new();
        for v in 0..2 {
            let mut r = std::mem::take(&mut roots[v]);
            evacuate_roots(&mut workers[v], &mut r, &state);
            roots[v] = r;
        }
        // Drive the scan with an already-expired deadline: every pass with
        // available work must still scan at least one stride (no livelock)
        // and report out_of_time, so the loop below simulates many small
        // increments. It must converge, and "done" must only ever be
        // concluded from a pass that drained the work index in time.
        let expired = std::time::Instant::now() - std::time::Duration::from_secs(1);
        let mut increments = 0u32;
        loop {
            let mut more_work = false;
            state.reset_work_index();
            for w in workers.iter_mut() {
                more_work |= scan_pass_budgeted(w, &state, Some(expired)).may_have_more_work();
            }
            increments += 1;
            if !more_work {
                break;
            }
            assert!(increments < 10_000, "budgeted passes failed to converge");
        }
        // 80 list cells + 80 values per the two workers: far more than one
        // stride, so the expired deadline must have forced multiple passes.
        assert!(increments > 2, "expected many budgeted increments");
        let released = release_from_space(&global, &from_space);
        assert_eq!(released, from_space.len());
        for v in 0..2 {
            assert_eq!(shared_values(&workers[v], roots[v][0]), before[v]);
        }
        assert!(state.copied_bytes.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn repeated_global_collections_converge() {
        let (mut heap, mut collector) = setup(2);
        let mut roots = populate(&mut heap, &mut collector, 2);
        collector.global(&mut heap, &mut roots);
        let live_after_first = heap.global().live_bytes_upper_bound();
        let copied_first: Vec<Vec<u64>> = roots.iter().map(|r| list_values(&heap, r[0])).collect();
        collector.global(&mut heap, &mut roots);
        // A second collection with no new garbage copies the same live set.
        let live_after_second = heap.global().live_bytes_upper_bound();
        assert_eq!(live_after_first, live_after_second);
        for (vproc, expected) in copied_first.iter().enumerate() {
            assert_eq!(&list_values(&heap, roots[vproc][0]), expected);
        }
    }
}
