//! Major collections and object promotion (paper §3.3, Figure 3).
//!
//! A major collection copies the live objects of the *old* portion of a
//! vproc's local heap into the vproc's current global-heap chunk. The
//! *young* data — whatever the immediately preceding minor collection just
//! copied — is known to be live and is deliberately **not** promoted (this is
//! how the design avoids premature promotion); instead it is slid down to
//! the bottom of the local heap once the old data has been evacuated.
//!
//! Promotion is "a major collection where the root set is a pointer to the
//! promoted object": the object graph reachable from one object is copied to
//! the global heap so it can be shared with other vprocs (work stealing or
//! CML message passing requires this because of the no-cross-heap-pointer
//! invariants).

use crate::collector::{Collector, GcOutcome, PromotionTally};
use crate::cost::{GcCost, COLLECTION_FIXED_NS};
use crate::stats::CollectionKind;
use mgc_heap::{word_as_pointer, Addr, GcHeap, WORD_BYTES};

impl Collector {
    /// Runs a major collection for `vproc`.
    ///
    /// The nursery must be empty — in the paper a major collection is always
    /// triggered at the end of a minor collection, so this holds by
    /// construction; [`Collector::collect_local`] preserves it.
    ///
    /// # Panics
    ///
    /// Panics if the vproc's nursery still contains objects.
    pub fn major<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        roots: &mut [Addr],
    ) -> GcOutcome {
        assert_eq!(
            heap.local(vproc).nursery_used_words(),
            0,
            "a major collection must be preceded by a minor collection"
        );
        let mut cost = GcCost::new(self.num_nodes());
        cost.charge_cpu(COLLECTION_FIXED_NS);
        let local_node = heap.local(vproc).node();
        let include_young = self.config().promote_young_in_major;
        let mut tally = PromotionTally::new(self.num_nodes());
        let mut worklist: Vec<Addr> = Vec::new();

        // --- Phase 1: evacuate old data reachable from the roots. ---------
        for root in roots.iter_mut() {
            if root.is_null() {
                continue;
            }
            *root = self.forward_to_global(
                heap,
                vproc,
                *root,
                include_young,
                &mut worklist,
                &mut tally,
                &mut cost,
            );
        }

        // --- Phase 2: the young data acts as an additional root set. ------
        // Young objects may point to old objects; those old objects must be
        // promoted and the young fields redirected. (When the ablation
        // promotes young data too, phase 1 and the worklist drain already
        // cover it and this phase finds nothing young-resident.)
        if !include_young {
            let young: Vec<Addr> = heap.local(vproc).young_objects().map(|(a, _)| a).collect();
            for obj in young {
                let header = heap.header_of(obj);
                cost.charge_scan(local_node, header.total_bytes());
                let fields = heap
                    .pointer_field_indices(header)
                    .expect("all mixed-object descriptors are registered before allocation");
                for index in fields {
                    let value = heap.read_field(obj, index);
                    let Some(ptr) = word_as_pointer(value) else {
                        continue;
                    };
                    let new = self.forward_to_global(
                        heap,
                        vproc,
                        ptr,
                        include_young,
                        &mut worklist,
                        &mut tally,
                        &mut cost,
                    );
                    if new != ptr {
                        heap.write_field(obj, index, new.raw());
                    }
                }
            }
        }

        // --- Phase 3: Cheney drain of the freshly promoted objects. -------
        self.drain_to_global(
            heap,
            vproc,
            include_young,
            &mut worklist,
            &mut tally,
            &mut cost,
        );

        // --- Phase 4: slide the young data to the bottom (Figure 3). ------
        let young_bytes = self.slide_young(heap, vproc, roots, &mut cost);

        heap.local_mut(vproc).finish_major();

        let stats = self.vproc_stats_mut(vproc);
        stats.major_collections += 1;
        stats.major_promoted_bytes += tally.total;

        let needs_global = self.needs_global(heap);
        let outcome = GcOutcome {
            kind: CollectionKind::Major,
            cost,
            copied_bytes: young_bytes,
            promoted_bytes: tally.total,
            promoted_bytes_by_node: tally.by_node,
            triggered_major: false,
            needs_global,
        };
        self.maybe_verify(heap);
        outcome
    }

    /// Promotes the object graph rooted at `obj` to the global heap and
    /// returns the new (global) address of `obj`.
    ///
    /// Every local object reachable from `obj` — nursery, young, or old — is
    /// copied; forwarding pointers are left behind so later collections and
    /// other references converge on the global copy. Objects already in the
    /// global heap are left untouched.
    pub fn promote<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        obj: Addr,
    ) -> (Addr, GcOutcome) {
        let mut cost = GcCost::new(self.num_nodes());
        let mut tally = PromotionTally::new(self.num_nodes());
        let mut worklist: Vec<Addr> = Vec::new();

        let new = if obj.is_null() {
            obj
        } else {
            self.forward_to_global(heap, vproc, obj, true, &mut worklist, &mut tally, &mut cost)
        };
        self.drain_to_global(heap, vproc, true, &mut worklist, &mut tally, &mut cost);

        let stats = self.vproc_stats_mut(vproc);
        stats.promotions += 1;
        stats.promotion_bytes += tally.total;

        let outcome = GcOutcome {
            kind: CollectionKind::Promotion,
            cost,
            copied_bytes: 0,
            promoted_bytes: tally.total,
            promoted_bytes_by_node: tally.by_node,
            triggered_major: false,
            needs_global: self.needs_global(heap),
        };
        self.maybe_verify(heap);
        (new, outcome)
    }

    /// Cheney-scans freshly promoted global objects, promoting whatever
    /// local objects they still point to.
    fn drain_to_global<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        include_young: bool,
        worklist: &mut Vec<Addr>,
        tally: &mut PromotionTally,
        cost: &mut GcCost,
    ) {
        while let Some(obj) = worklist.pop() {
            let header = heap.header_of(obj);
            cost.charge_scan(heap.node_of(obj), header.total_bytes());
            let fields = heap
                .pointer_field_indices(header)
                .expect("all mixed-object descriptors are registered before allocation");
            for index in fields {
                let value = heap.read_field(obj, index);
                let Some(ptr) = word_as_pointer(value) else {
                    continue;
                };
                let new =
                    self.forward_to_global(heap, vproc, ptr, include_young, worklist, tally, cost);
                if new != ptr {
                    heap.write_field(obj, index, new.raw());
                }
            }
        }
    }

    /// Slides the young data to the bottom of the local heap and relocates
    /// every pointer into the moved range (roots and young-internal fields).
    /// Returns the number of young bytes moved.
    fn slide_young<H: GcHeap>(
        &mut self,
        heap: &mut H,
        vproc: usize,
        roots: &mut [Addr],
        cost: &mut GcCost,
    ) -> u64 {
        let local = heap.local(vproc);
        let local_node = local.node();
        let base = local.base();
        let young_lo = base.add_words(local.young_start());
        let young_hi = base.add_words(local.old_top());
        let young_bytes = ((local.old_top() - local.young_start()) * WORD_BYTES) as u64;

        let delta_words = heap.local_mut(vproc).slide_young_to_bottom();
        if delta_words == 0 {
            return young_bytes;
        }
        let delta_bytes = (delta_words * WORD_BYTES) as u64;
        let relocate = |addr: Addr| -> Addr {
            if addr >= young_lo && addr < young_hi {
                Addr::new(addr.raw() - delta_bytes)
            } else {
                addr
            }
        };

        for root in roots.iter_mut() {
            if !root.is_null() {
                *root = relocate(*root);
            }
        }

        let moved: Vec<(Addr, mgc_heap::Header)> = {
            let local = heap.local(vproc);
            local.objects_in(0, local.old_top()).collect()
        };
        for (obj, header) in moved {
            let fields = heap
                .pointer_field_indices(header)
                .expect("all mixed-object descriptors are registered before allocation");
            for index in fields {
                let value = heap.read_field(obj, index);
                let Some(ptr) = word_as_pointer(value) else {
                    continue;
                };
                let new = relocate(ptr);
                if new != ptr {
                    heap.write_field(obj, index, new.raw());
                }
            }
        }

        cost.charge_copy(local_node, local_node, young_bytes as usize);
        young_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use mgc_heap::{Heap, HeapConfig, Space};
    use mgc_numa::NodeId;

    fn setup() -> (Heap, Collector) {
        let heap = Heap::new(
            HeapConfig::small_for_tests(),
            &[NodeId::new(0), NodeId::new(1)],
            2,
        );
        let collector = Collector::new(GcConfig::small_for_tests(), 2, 2);
        (heap, collector)
    }

    /// Builds a two-generation local heap: `old_val` lives in the old area,
    /// `young_val` in the young area, with the young object pointing at the
    /// old one. Returns (young_root, old_payload_value).
    fn build_generations(heap: &mut Heap, collector: &mut Collector) -> Addr {
        // First minor: old_obj becomes young.
        let old_obj = heap.alloc_raw(0, &[111]).unwrap();
        let mut roots = vec![old_obj];
        collector.minor(heap, 0, &mut roots);
        let old_obj = roots[0];
        // Second minor: a vector referencing old_obj becomes young; old_obj
        // ages into the old area.
        let young_obj = heap.alloc_vector(0, &[old_obj.raw()]).unwrap();
        let mut roots = vec![young_obj];
        collector.minor(heap, 0, &mut roots);
        roots[0]
    }

    #[test]
    fn major_promotes_old_data_and_keeps_young_local() {
        let (mut heap, mut collector) = setup();
        let young_root = build_generations(&mut heap, &mut collector);
        assert_eq!(heap.space_of(young_root), Space::LocalYoung { vproc: 0 });

        let mut roots = vec![young_root];
        let outcome = collector.major(&mut heap, 0, &mut roots);
        assert_eq!(outcome.kind, CollectionKind::Major);
        // The old object (2 words) was promoted.
        assert_eq!(outcome.promoted_bytes, 2 * 8);

        // The young vector stayed in the local heap (slid to the bottom).
        let young_now = roots[0];
        assert!(heap.is_local(young_now));
        assert_eq!(heap.local(0).young_start(), 0);
        // Its field now points at the global copy of the old object.
        let promoted = Addr::new(heap.read_field(young_now, 0));
        assert!(heap.is_global(promoted));
        assert_eq!(heap.payload(promoted), vec![111]);
        assert_eq!(collector.vproc_stats(0).major_collections, 1);
    }

    #[test]
    fn major_with_promote_young_ablation_empties_local_heap() {
        let heap_cfg = HeapConfig::small_for_tests();
        let mut heap = Heap::new(heap_cfg, &[NodeId::new(0)], 2);
        let config = GcConfig {
            promote_young_in_major: true,
            ..GcConfig::small_for_tests()
        };
        let mut collector = Collector::new(config, 1, 2);
        let young_root = build_generations(&mut heap, &mut collector);

        let mut roots = vec![young_root];
        let outcome = collector.major(&mut heap, 0, &mut roots);
        // Both the old object and the young vector were promoted.
        assert!(outcome.promoted_bytes >= 4 * 8);
        assert!(heap.is_global(roots[0]));
    }

    #[test]
    fn major_drops_unreachable_old_data() {
        let (mut heap, mut collector) = setup();
        // Create garbage in the old area: allocate, keep across one minor,
        // then drop the root.
        let garbage = heap.alloc_raw(0, &[42; 8]).unwrap();
        let mut roots = vec![garbage];
        collector.minor(&mut heap, 0, &mut roots);
        collector.minor(&mut heap, 0, &mut roots); // ages to old
        let occupied_before = heap.local(0).occupied_words();
        assert!(occupied_before > 0);

        // Major with no roots: nothing is promoted, the local heap empties.
        let mut no_roots: Vec<Addr> = Vec::new();
        let outcome = collector.major(&mut heap, 0, &mut no_roots);
        assert_eq!(outcome.promoted_bytes, 0);
        assert_eq!(heap.local(0).occupied_words(), 0);
    }

    #[test]
    fn promotion_copies_graph_and_installs_forwards() {
        let (mut heap, mut collector) = setup();
        let leaf = heap.alloc_raw(0, &[7, 8]).unwrap();
        let root_obj = heap.alloc_vector(0, &[leaf.raw(), leaf.raw()]).unwrap();

        let (promoted, outcome) = collector.promote(&mut heap, 0, root_obj);
        assert_eq!(outcome.kind, CollectionKind::Promotion);
        assert!(heap.is_global(promoted));
        // Both objects were copied exactly once (sharing preserved).
        assert_eq!(outcome.promoted_bytes, (3 + 3) * 8);
        let f0 = Addr::new(heap.read_field(promoted, 0));
        let f1 = Addr::new(heap.read_field(promoted, 1));
        assert_eq!(f0, f1);
        assert!(heap.is_global(f0));
        assert_eq!(heap.payload(f0), vec![7, 8]);
        // The local originals forward to the copies.
        assert_eq!(heap.forwarded_to(root_obj), Some(promoted));
        assert_eq!(heap.forwarded_to(leaf), Some(f0));
        assert_eq!(collector.vproc_stats(0).promotions, 1);
    }

    #[test]
    fn promotion_of_global_object_is_a_noop() {
        let (mut heap, mut collector) = setup();
        let local_obj = heap.alloc_raw(0, &[1]).unwrap();
        let (global_obj, _) = collector.promote(&mut heap, 0, local_obj);
        let (again, outcome) = collector.promote(&mut heap, 0, global_obj);
        assert_eq!(again, global_obj);
        assert_eq!(outcome.promoted_bytes, 0);
    }

    #[test]
    fn promotion_of_null_is_a_noop() {
        let (mut heap, mut collector) = setup();
        let (res, outcome) = collector.promote(&mut heap, 0, Addr::NULL);
        assert!(res.is_null());
        assert_eq!(outcome.promoted_bytes, 0);
    }

    #[test]
    fn promoted_data_is_visible_to_other_vprocs_without_violations() {
        let (mut heap, mut collector) = setup();
        let message = heap.alloc_raw(0, &[99, 100]).unwrap();
        let (promoted, _) = collector.promote(&mut heap, 0, message);
        // VProc 1 stores the promoted pointer in its own heap — allowed,
        // because the target is global.
        heap.alloc_vector(1, &[promoted.raw()]).unwrap();
        assert!(mgc_heap::verify_heap(&heap).is_empty());
        assert_eq!(heap.payload(promoted), vec![99, 100]);
    }

    #[test]
    fn minor_after_promotion_redirects_stale_references() {
        let (mut heap, mut collector) = setup();
        let shared = heap.alloc_raw(0, &[5]).unwrap();
        let holder = heap.alloc_vector(0, &[shared.raw()]).unwrap();
        // Promote the shared object (e.g. it was sent over a channel).
        let (global_shared, _) = collector.promote(&mut heap, 0, shared);
        // A later minor collection must make the holder point at the global
        // copy rather than re-copying the stale nursery original.
        let mut roots = vec![holder];
        collector.minor(&mut heap, 0, &mut roots);
        let field = Addr::new(heap.read_field(roots[0], 0));
        assert_eq!(field, global_shared);
    }

    #[test]
    fn collect_local_runs_major_when_old_data_piles_up() {
        let (mut heap, mut collector) = setup();
        // `keepers` stay live for the whole run (they age into the old area
        // and get promoted); the rolling window models ephemeral data.
        let mut keepers: Vec<Addr> = Vec::new();
        let mut window: Vec<Addr> = Vec::new();
        let mut majors = 0;
        for i in 0..2000u64 {
            match heap.alloc_raw(0, &[i; 8]) {
                Ok(obj) => {
                    if i % 40 == 0 && keepers.len() < 16 {
                        keepers.push(obj);
                    } else {
                        window.push(obj);
                        if window.len() > 8 {
                            window.remove(0);
                        }
                    }
                }
                Err(_) => {
                    let mut roots: Vec<Addr> =
                        keepers.iter().chain(window.iter()).copied().collect();
                    let outcome = collector.collect_local(&mut heap, 0, &mut roots);
                    if outcome.triggered_major {
                        majors += 1;
                    }
                    let (new_keepers, new_window) = roots.split_at(keepers.len());
                    keepers = new_keepers.to_vec();
                    window = new_window.to_vec();
                }
            }
        }
        assert!(
            majors > 0,
            "sustained allocation must trigger major collections"
        );
        assert!(collector.vproc_stats(0).major_promoted_bytes > 0);
        assert!(mgc_heap::verify_heap(&heap).is_empty());
    }

    #[test]
    #[should_panic(expected = "preceded by a minor collection")]
    fn major_requires_empty_nursery() {
        let (mut heap, mut collector) = setup();
        heap.alloc_raw(0, &[1]).unwrap();
        let mut roots: Vec<Addr> = Vec::new();
        collector.major(&mut heap, 0, &mut roots);
    }
}
