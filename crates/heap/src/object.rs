//! Small helpers for encoding scalar values into heap words.
//!
//! Raw-data objects store uninterpreted 64-bit words; these helpers give the
//! workloads a consistent way to pack floats and signed integers into them.

use crate::addr::Word;

/// Encodes an `f64` into a heap word (bit pattern).
///
/// # Examples
///
/// ```
/// # use mgc_heap::{f64_to_word, word_to_f64};
/// let w = f64_to_word(3.25);
/// assert_eq!(word_to_f64(w), 3.25);
/// ```
pub fn f64_to_word(value: f64) -> Word {
    value.to_bits()
}

/// Decodes an `f64` from a heap word.
pub fn word_to_f64(word: Word) -> f64 {
    f64::from_bits(word)
}

/// Encodes an `i64` into a heap word (two's complement bit pattern).
///
/// # Examples
///
/// ```
/// # use mgc_heap::{i64_to_word, word_to_i64};
/// assert_eq!(word_to_i64(i64_to_word(-7)), -7);
/// ```
pub fn i64_to_word(value: i64) -> Word {
    value as Word
}

/// Decodes an `i64` from a heap word.
pub fn word_to_i64(word: Word) -> i64 {
    word as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NEG_INFINITY] {
            assert_eq!(word_to_f64(f64_to_word(v)), v);
        }
        assert!(word_to_f64(f64_to_word(f64::NAN)).is_nan());
    }

    #[test]
    fn i64_round_trip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(word_to_i64(i64_to_word(v)), v);
        }
    }

    #[test]
    fn negative_floats_do_not_look_like_null() {
        assert_ne!(f64_to_word(-0.0), 0); // -0.0 has the sign bit set
    }
}
