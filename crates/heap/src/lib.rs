//! Object model, Appel-style local heaps, and the chunked global heap for
//! the Manticore NUMA garbage collector reproduction.
//!
//! This crate provides the *mechanism* layer of the memory system described
//! in §3 of *Garbage Collection for Multicore NUMA Machines*:
//!
//! * the 64-bit object header word and the raw/vector/mixed object kinds
//!   ([`Header`], [`ObjectKind`], Figure 1 of the paper);
//! * the object-descriptor table standing in for the compiler-generated
//!   scanning functions ([`DescriptorTable`], §3.2);
//! * per-vproc [`LocalHeap`]s with the Appel semi-generational nursery /
//!   young / old geometry (Figures 2 and 3);
//! * the chunked [`GlobalHeap`] with per-node free lists and node-affine
//!   chunk reuse (§3.1, §3.4);
//! * the [`Heap`] facade tying them together over a simulated NUMA-aware
//!   address space, including the evacuation primitive every collection is
//!   built from; and
//! * invariant checkers for the two no-cross-heap-pointer rules (§2.3).
//!
//! The collection algorithms themselves (minor, major, promotion, global)
//! live in the `mgc-core` crate.
//!
//! # Example
//!
//! ```
//! use mgc_heap::{Heap, HeapConfig};
//! use mgc_numa::NodeId;
//!
//! // A heap for two vprocs pinned to two different NUMA nodes.
//! let mut heap = Heap::new(HeapConfig::small_for_tests(), &[NodeId::new(0), NodeId::new(1)], 2);
//! let point = heap.alloc_raw(0, &[1, 2, 3])?;
//! let wrapper = heap.alloc_vector(0, &[point.raw()])?;
//! assert_eq!(heap.payload(point), vec![1, 2, 3]);
//! assert_eq!(heap.read_field(wrapper, 0), point.raw());
//! # Ok::<(), mgc_heap::HeapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod chunk;
mod descriptor;
mod error;
mod gc_heap;
mod global;
mod header;
#[allow(clippy::module_inception)]
mod heap;
mod local;
mod object;
mod shared;
mod space;
mod verify;

pub use addr::{word_as_pointer, Addr, Word, WORD_BYTES};
pub use chunk::{Chunk, ChunkId, ChunkObjects, ChunkState};
pub use descriptor::{Descriptor, DescriptorId, DescriptorTable};
pub use error::HeapError;
pub use gc_heap::GcHeap;
pub use global::{GlobalHeap, GlobalHeapStats, SharedChunkPool};
pub use header::{
    Header, HeaderSlot, ObjectKind, FIRST_MIXED_ID, MAX_ID, MAX_LEN_WORDS, RAW_ID, VECTOR_ID,
};
pub use heap::{
    EvacTarget, GeometryViolation, Heap, HeapConfig, HeapGeometry, HeapStats, Space,
    MIN_CHUNK_BYTES, MIN_LOCAL_HEAP_BYTES,
};
pub use local::{LocalHeap, LocalHeapStats, LocalObjects, LocalRegion};
pub use object::{f64_to_word, i64_to_word, word_to_f64, word_to_i64};
pub use shared::{
    global_node_of, ChunkDirectory, DirSegment, DirectorySnapshot, SharedChunk, SharedChunkState,
    SharedGlobalHeap, ThreadedLayout, ThreadedOwner, WorkerHeap, DIR_SEG_CHUNKS, GLOBAL_BASE,
    LOCAL_BASE, MAX_NODE_SPAN_SHIFT, NODE_SPAN_BYTES, NODE_SPAN_SHIFT,
};
pub use space::{AddressSpace, RegionOwner};
pub use verify::{verify_global_heap, verify_heap, verify_local_heap, InvariantViolation};
