//! The 64-bit object header word (paper Figure 1).
//!
//! Every heap object is preceded by one header word laid out as:
//!
//! ```text
//!  63                16 15            1  0
//! +--------------------+---------------+---+
//! |  object length     |      ID       | 1 |
//! |    (48 bits)       |   (15 bits)   |   |
//! +--------------------+---------------+---+
//! ```
//!
//! The lowest bit is always `1`, which distinguishes a header from a
//! *forwarding pointer*: when the collector moves an object it overwrites the
//! header with the (word-aligned, hence even) address of the new copy.
//!
//! Two IDs are reserved for raw data and pointer vectors; all other IDs index
//! the [`crate::DescriptorTable`] of mixed-type objects, whose entries play
//! the role of the compiler-generated scanning functions described in §3.2.

use crate::addr::{Addr, Word};
use serde::{Deserialize, Serialize};

/// Reserved header ID for raw-data objects (no pointer fields).
pub const RAW_ID: u16 = 1;
/// Reserved header ID for vectors of pointers (every field is a pointer).
pub const VECTOR_ID: u16 = 2;
/// First ID available for mixed-type object descriptors.
pub const FIRST_MIXED_ID: u16 = 3;
/// Largest representable ID (15 bits).
pub const MAX_ID: u16 = 0x7FFF;
/// Largest representable object length in words (48 bits).
pub const MAX_LEN_WORDS: u64 = (1 << 48) - 1;

/// The kind of a heap object, as determined by its header ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// Raw data: no payload word is a pointer (e.g. strings, float arrays).
    Raw,
    /// A vector of pointers: every payload word is a pointer or null.
    Vector,
    /// A mixed-type object: the descriptor with this ID says which payload
    /// words are pointers.
    Mixed(u16),
}

impl ObjectKind {
    /// The header ID for this kind.
    pub fn id(self) -> u16 {
        match self {
            ObjectKind::Raw => RAW_ID,
            ObjectKind::Vector => VECTOR_ID,
            ObjectKind::Mixed(id) => id,
        }
    }

    /// Interprets a header ID as an object kind.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero (IDs start at 1) or exceeds [`MAX_ID`].
    pub fn from_id(id: u16) -> Self {
        assert!((1..=MAX_ID).contains(&id), "object ID {id} out of range");
        match id {
            RAW_ID => ObjectKind::Raw,
            VECTOR_ID => ObjectKind::Vector,
            other => ObjectKind::Mixed(other),
        }
    }
}

/// A decoded object header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Header {
    /// The object kind (decoded from the 15-bit ID field).
    pub kind: ObjectKind,
    /// Payload length in words (excluding the header word itself).
    pub len_words: u64,
}

impl Header {
    /// Creates a header.
    ///
    /// # Panics
    ///
    /// Panics if `len_words` exceeds [`MAX_LEN_WORDS`].
    pub fn new(kind: ObjectKind, len_words: u64) -> Self {
        assert!(
            len_words <= MAX_LEN_WORDS,
            "object length {len_words} exceeds the 48-bit header field"
        );
        Header { kind, len_words }
    }

    /// Encodes this header into its word representation (low bit set).
    pub fn encode(self) -> Word {
        1 | ((self.kind.id() as Word) << 1) | (self.len_words << 16)
    }

    /// Decodes a header word.
    ///
    /// Returns `None` if the word is a forwarding pointer (low bit clear)
    /// rather than a header.
    pub fn decode(word: Word) -> Option<Header> {
        if word & 1 == 0 {
            return None;
        }
        let id = ((word >> 1) & 0x7FFF) as u16;
        let len = word >> 16;
        Some(Header {
            kind: ObjectKind::from_id(id),
            len_words: len,
        })
    }

    /// Total footprint of the object in words, including the header word.
    pub fn total_words(self) -> usize {
        self.len_words as usize + 1
    }

    /// Total footprint in bytes, including the header word.
    pub fn total_bytes(self) -> usize {
        self.total_words() * crate::addr::WORD_BYTES
    }
}

/// Result of inspecting the header slot of an object: either a live header
/// or a forwarding pointer left behind by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderSlot {
    /// The object has not been moved; here is its header.
    Header(Header),
    /// The object was moved to this address.
    Forwarded(Addr),
}

impl HeaderSlot {
    /// Decodes the word found in an object's header slot.
    pub fn decode(word: Word) -> HeaderSlot {
        match Header::decode(word) {
            Some(h) => HeaderSlot::Header(h),
            None => HeaderSlot::Forwarded(Addr::new(word)),
        }
    }

    /// Returns the forwarding address, if this slot is a forward.
    pub fn forwarded_to(self) -> Option<Addr> {
        match self {
            HeaderSlot::Forwarded(a) => Some(a),
            HeaderSlot::Header(_) => None,
        }
    }

    /// Returns the header, panicking on a forwarding pointer.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds a forwarding pointer.
    pub fn expect_header(self) -> Header {
        match self {
            HeaderSlot::Header(h) => h,
            HeaderSlot::Forwarded(a) => panic!("expected a header, found forward to {a:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for (kind, len) in [
            (ObjectKind::Raw, 0u64),
            (ObjectKind::Raw, 17),
            (ObjectKind::Vector, 3),
            (ObjectKind::Mixed(7), 5),
            (ObjectKind::Mixed(MAX_ID), MAX_LEN_WORDS),
        ] {
            let h = Header::new(kind, len);
            let w = h.encode();
            assert_eq!(w & 1, 1, "header words have the low bit set");
            assert_eq!(Header::decode(w), Some(h));
        }
    }

    #[test]
    fn forward_pointers_are_not_headers() {
        // Any word-aligned address has the low bit clear.
        assert_eq!(Header::decode(0x1000), None);
        assert_eq!(
            HeaderSlot::decode(0x1000),
            HeaderSlot::Forwarded(Addr::new(0x1000))
        );
        assert_eq!(
            HeaderSlot::decode(0x1000).forwarded_to(),
            Some(Addr::new(0x1000))
        );
    }

    #[test]
    fn header_slot_decodes_headers() {
        let h = Header::new(ObjectKind::Vector, 4);
        let slot = HeaderSlot::decode(h.encode());
        assert_eq!(slot, HeaderSlot::Header(h));
        assert_eq!(slot.forwarded_to(), None);
        assert_eq!(slot.expect_header(), h);
    }

    #[test]
    #[should_panic(expected = "expected a header")]
    fn expect_header_panics_on_forward() {
        HeaderSlot::decode(0x2000).expect_header();
    }

    #[test]
    fn kind_ids_round_trip() {
        assert_eq!(ObjectKind::from_id(RAW_ID), ObjectKind::Raw);
        assert_eq!(ObjectKind::from_id(VECTOR_ID), ObjectKind::Vector);
        assert_eq!(ObjectKind::from_id(11), ObjectKind::Mixed(11));
        assert_eq!(ObjectKind::Mixed(11).id(), 11);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_id_rejected() {
        let _ = ObjectKind::from_id(0);
    }

    #[test]
    #[should_panic(expected = "48-bit")]
    fn oversized_length_rejected() {
        let _ = Header::new(ObjectKind::Raw, MAX_LEN_WORDS + 1);
    }

    #[test]
    fn footprints() {
        let h = Header::new(ObjectKind::Raw, 4);
        assert_eq!(h.total_words(), 5);
        assert_eq!(h.total_bytes(), 40);
    }

    #[test]
    fn id_field_is_fifteen_bits() {
        let h = Header::new(ObjectKind::Mixed(MAX_ID), 1);
        let decoded = Header::decode(h.encode()).unwrap();
        assert_eq!(decoded.kind, ObjectKind::Mixed(MAX_ID));
    }
}
